#include "sim/rollback_faults.h"

namespace monatt::sim
{

namespace
{

/** splitmix64 finalizer: cheap, well-mixed, dependency-free. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** FNV-1a over a string, folded through the running state. */
std::uint64_t
absorb(std::uint64_t state, const std::string &s)
{
    std::uint64_t h = state ^ 0xcbf29ce484222325ULL;
    for (unsigned char c : s)
        h = (h ^ c) * 0x100000001b3ULL;
    return mix64(h);
}

/** Map a draw to a [0, 1) probability comparison. */
bool
below(std::uint64_t v, double probability)
{
    if (probability <= 0)
        return false;
    if (probability >= 1)
        return true;
    const double unit =
        static_cast<double>(v >> 11) * (1.0 / 9007199254740992.0);
    return unit < probability;
}

// Salts keep the per-purpose draws independent of each other and of
// the network / storage fault-plane draws.
constexpr std::uint64_t kSaltRollback = 0xF1A40001;
constexpr std::uint64_t kSaltReplay = 0xF1A40002;

} // namespace

RollbackFaultModel::RollbackFaultModel(std::uint64_t seed,
                                       RollbackFaultConfig config)
    : cfg(config), seed(seed)
{
}

std::uint64_t
RollbackFaultModel::draw(const std::string &node,
                         std::uint64_t salt) const
{
    std::uint64_t h = mix64(seed ^ salt);
    return absorb(h, node);
}

bool
RollbackFaultModel::rollsBack(const std::string &node) const
{
    return below(draw(node, kSaltRollback), cfg.rollbackProbability);
}

bool
RollbackFaultModel::replaysStale(const std::string &node) const
{
    return below(draw(node, kSaltReplay), cfg.staleReplayProbability);
}

} // namespace monatt::sim
