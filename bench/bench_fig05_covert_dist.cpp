/**
 * @file
 * Figure 5: "Measurements of Covert-channel Vulnerabilities" — the
 * probability distribution of CPU usage intervals from the 30 Trust
 * Evidence Registers, for a covert-channel sender (two peaks) and a
 * benign VM (one peak at the 30 ms slice), plus the Property
 * Interpretation Module's verdicts.
 */

#include <cstdio>

#include "attestation/interpreters.h"
#include "bench_util.h"
#include "hypervisor/hypervisor.h"
#include "server/monitor_module.h"
#include "sim/event_queue.h"
#include "tpm/trust_module.h"
#include "workloads/attacks.h"
#include "workloads/programs.h"

using namespace monatt;
using namespace monatt::workloads;

namespace
{

struct World
{
    sim::EventQueue events;
    std::unique_ptr<hypervisor::Hypervisor> hv;
    std::unique_ptr<tpm::TrustModule> tm;
    std::unique_ptr<server::MonitorModule> monitor;

    World()
    {
        hypervisor::HypervisorConfig cfg;
        cfg.numPCpus = 1;
        cfg.hypervisorCode = toBytes("xen");
        cfg.hostOsCode = toBytes("dom0");
        hv = std::make_unique<hypervisor::Hypervisor>(events, cfg);
        Rng rng(5);
        tm = std::make_unique<tpm::TrustModule>(
            "bench-server", crypto::rsaGenerateKeyPair(512, rng),
            toBytes("seed"));
        monitor = std::make_unique<server::MonitorModule>(*hv, *tm);
        hv->boot(tm->tpmDevice());
    }
};

std::vector<std::uint64_t>
measureCovertSender(SimTime duration)
{
    World w;
    const auto receiver = w.hv->createDomain("receiver", 1, 0,
                                             toBytes("r"));
    const auto sender = w.hv->createDomain("sender", 2, 0, toBytes("s"),
                                           1024);
    w.hv->setBehavior(receiver, 0, std::make_unique<SpinnerProgram>());

    auto message = std::make_shared<CovertMessage>();
    Rng rng(0xfeed);
    for (int i = 0; i < 100000; ++i)
        message->bits.push_back(rng.nextBool());
    installCovertSender(*w.hv, sender, message,
                        CovertChannelParams::detectPreset());

    w.monitor->beginWindow(sender, w.events.now());
    w.events.run(duration);
    auto m = w.monitor->finishWindow(
        proto::MeasurementType::UsageIntervalHistogram, sender,
        w.events.now());
    return m.take().values;
}

std::vector<std::uint64_t>
measureBenignVm(SimTime duration)
{
    World w;
    const auto benign = w.hv->createDomain("benign", 1, 0, toBytes("b"));
    const auto rival = w.hv->createDomain("rival", 1, 0, toBytes("v"));
    w.hv->setBehavior(benign, 0, std::make_unique<SpinnerProgram>());
    w.hv->setBehavior(rival, 0, std::make_unique<SpinnerProgram>());

    w.monitor->beginWindow(benign, w.events.now());
    w.events.run(duration);
    auto m = w.monitor->finishWindow(
        proto::MeasurementType::UsageIntervalHistogram, benign,
        w.events.now());
    return m.take().values;
}

void
printDistribution(const char *title,
                  const std::vector<std::uint64_t> &counts)
{
    std::uint64_t total = 0;
    for (std::uint64_t c : counts)
        total += c;
    std::printf("\n%s (%llu samples across 30 TERs)\n", title,
                static_cast<unsigned long long>(total));
    std::printf("%-14s %-12s %s\n", "interval (ms)", "probability", "");
    for (std::size_t i = 0; i < counts.size(); ++i) {
        const double p =
            total ? static_cast<double>(counts[i]) /
                        static_cast<double>(total)
                  : 0.0;
        std::printf("(%2zu,%2zu]       %8.3f     |%s\n", i, i + 1, p,
                    std::string(static_cast<std::size_t>(p * 120), '#')
                        .c_str());
    }
}

} // namespace

int
main()
{
    bench::banner(
        "Figure 5",
        "Probability distribution of CPU usage intervals (30 Trust "
        "Evidence Registers):\ncovert-channel pattern (two peaks) vs "
        "benign pattern (one peak near 30 ms).");

    const auto covert = measureCovertSender(seconds(20));
    const auto benign = measureBenignVm(seconds(20));

    printDistribution("Covert-channel pattern", covert);
    printDistribution("Benign pattern", benign);

    attestation::CovertChannelInterpreter detector;
    std::string whyCovert, whyBenign;
    const bool covertFlag = detector.looksCovert(covert, &whyCovert);
    const bool benignFlag = detector.looksCovert(benign, &whyBenign);

    std::printf("\nProperty Interpretation Module verdicts:\n");
    std::printf("  covert sender : %s (%s)\n",
                covertFlag ? "COVERT CHANNEL DETECTED" : "healthy",
                whyCovert.c_str());
    std::printf("  benign VM     : %s (%s)\n",
                benignFlag ? "COVERT CHANNEL DETECTED" : "healthy",
                whyBenign.c_str());
    std::printf("\nexpected shape: detector flags the sender and clears "
                "the benign VM\n");
    const bool shapeOk = covertFlag && !benignFlag;
    std::printf("shape check: %s\n", shapeOk ? "PASS" : "FAIL");
    return shapeOk ? 0 : 1;
}
