/**
 * @file
 * Shared formatting helpers for the figure benches.
 */

#ifndef MONATT_BENCH_BENCH_UTIL_H
#define MONATT_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>
#include <vector>

namespace monatt::bench
{

/** Print a banner naming the reproduced artifact. */
inline void
banner(const std::string &figure, const std::string &caption)
{
    std::printf("\n");
    std::printf("==========================================================="
                "=====================\n");
    std::printf("CloudMonatt reproduction | %s\n", figure.c_str());
    std::printf("%s\n", caption.c_str());
    std::printf("==========================================================="
                "=====================\n");
}

/** Print a row of right-aligned cells after a left label. */
inline void
row(const std::string &label, const std::vector<std::string> &cells,
    int labelWidth = 18, int cellWidth = 10)
{
    std::printf("%-*s", labelWidth, label.c_str());
    for (const std::string &cell : cells)
        std::printf(" %*s", cellWidth, cell.c_str());
    std::printf("\n");
}

/** Format helpers. */
inline std::string
fmt(const char *format, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), format, value);
    return buf;
}

} // namespace monatt::bench

#endif // MONATT_BENCH_BENCH_UTIL_H
