/**
 * @file
 * Shared formatting helpers for the figure benches.
 */

#ifndef MONATT_BENCH_BENCH_UTIL_H
#define MONATT_BENCH_BENCH_UTIL_H

#include <chrono>
#include <cstdio>
#include <ctime>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "sim/worker_pool.h"

namespace monatt::bench
{

/** Wall-clock stopwatch for the before/after A/B legs. */
class WallTimer
{
  public:
    WallTimer() : start(std::chrono::steady_clock::now()) {}

    double
    elapsedSeconds() const
    {
        const auto d = std::chrono::steady_clock::now() - start;
        return std::chrono::duration<double>(d).count();
    }

  private:
    std::chrono::steady_clock::time_point start;
};

/**
 * One leg of an A/B comparison: a configuration label plus the host
 * wall-clock seconds it took to run the identical workload.
 */
struct AbLeg
{
    std::string engine; //!< "legacy" or "montgomery"
    bool caches = false;
    double wallSeconds = 0;
};

/** Peak resident set size of this process in KiB (0 if unavailable). */
inline long
peakRssKb()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage usage;
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
#if defined(__APPLE__)
    return usage.ru_maxrss / 1024; // bytes on Darwin
#else
    return usage.ru_maxrss; // KiB on Linux
#endif
#else
    return 0;
#endif
}

/** Compiler identification string for the bench binary. */
inline const char *
compilerId()
{
#if defined(__clang__)
    return "clang " __clang_version__;
#elif defined(__GNUC__)
    return "gcc " __VERSION__;
#else
    return "unknown";
#endif
}

/**
 * JSON object describing the run environment: compute-plane thread
 * count, host parallelism, compiler, UTC timestamp and peak RSS.
 * Appended to every bench JSON so archived numbers are comparable.
 */
inline std::string
metadataJson()
{
    char ts[32] = "unknown";
    const std::time_t now = std::time(nullptr);
    if (std::tm utc{}; gmtime_r(&now, &utc) != nullptr)
        std::strftime(ts, sizeof(ts), "%Y-%m-%dT%H:%M:%SZ", &utc);

    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "{\"compute_threads\": %zu, "
                  "\"hardware_concurrency\": %u, "
                  "\"compiler\": \"%s\", "
                  "\"wall_clock_utc\": \"%s\", "
                  "\"peak_rss_kb\": %ld}",
                  sim::WorkerPool::global().threadCount(),
                  std::thread::hardware_concurrency(), compilerId(), ts,
                  peakRssKb());
    return buf;
}

/**
 * Write the before/after record for a figure bench as JSON, so CI can
 * archive the speedup alongside the figure output. Schema:
 * {"benchmark", "workload", "before": {...}, "after": {...},
 *  "speedup", "metadata": {...}}.
 */
inline bool
writeAbJson(const std::string &path, const std::string &benchName,
            const std::string &workload, const AbLeg &before,
            const AbLeg &after)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const double speedup =
        after.wallSeconds > 0 ? before.wallSeconds / after.wallSeconds : 0;
    std::fprintf(f,
                 "{\n"
                 "  \"benchmark\": \"%s\",\n"
                 "  \"workload\": \"%s\",\n"
                 "  \"before\": {\"engine\": \"%s\", \"caches\": %s, "
                 "\"wall_seconds\": %.6f},\n"
                 "  \"after\": {\"engine\": \"%s\", \"caches\": %s, "
                 "\"wall_seconds\": %.6f},\n"
                 "  \"speedup\": %.3f,\n"
                 "  \"metadata\": %s\n"
                 "}\n",
                 benchName.c_str(), workload.c_str(),
                 before.engine.c_str(), before.caches ? "true" : "false",
                 before.wallSeconds, after.engine.c_str(),
                 after.caches ? "true" : "false", after.wallSeconds,
                 speedup, metadataJson().c_str());
    std::fclose(f);
    return true;
}

/** Print a banner naming the reproduced artifact. */
inline void
banner(const std::string &figure, const std::string &caption)
{
    std::printf("\n");
    std::printf("==========================================================="
                "=====================\n");
    std::printf("CloudMonatt reproduction | %s\n", figure.c_str());
    std::printf("%s\n", caption.c_str());
    std::printf("==========================================================="
                "=====================\n");
}

/** Print a row of right-aligned cells after a left label. */
inline void
row(const std::string &label, const std::vector<std::string> &cells,
    int labelWidth = 18, int cellWidth = 10)
{
    std::printf("%-*s", labelWidth, label.c_str());
    for (const std::string &cell : cells)
        std::printf(" %*s", cellWidth, cell.c_str());
    std::printf("\n");
}

/** Format helpers. */
inline std::string
fmt(const char *format, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), format, value);
    return buf;
}

} // namespace monatt::bench

#endif // MONATT_BENCH_BENCH_UTIL_H
