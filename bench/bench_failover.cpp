/**
 * @file
 * Replicated control plane: what leader failover costs and buys.
 *
 * Two experiments on the same workload (4 servers, 4 VMs, a 16-wide
 * runtime-attestation fan-out):
 *
 *  - Clean wire A/B: controllerReplicas 1 vs 3 with no faults. The
 *    replicated leg pays majority-commit gating (every externally
 *    visible send waits for one follower round-trip), so its simulated
 *    makespan quantifies the steady-state price of fault tolerance.
 *
 *  - Leader kill mid-fan-out: with one replica the shard is simply
 *    gone until the node restarts (journal replay on restart); with
 *    three replicas a follower is elected and answers while the old
 *    leader is still dark. Reports simulated makespan until every
 *    request is verified, plus who leads afterwards.
 *
 * Emits BENCH_failover.json with both experiments and the run
 * metadata block; simulated metrics are deterministic and gated by
 * scripts/check_bench_regression.py in CI.
 */

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/cloud.h"

using namespace monatt;
using namespace monatt::core;

namespace
{

struct Leg
{
    int replicas = 0;
    int attests = 0;
    int verified = 0;
    double simMakespanSec = 0;
    double attestationsPerSimSec = 0;
    double wallSeconds = 0;
    std::string leader;         //!< Shard leader when the leg ends.
    std::uint64_t round = 0;    //!< Its election round.
    bool recordsIntact = false; //!< Every VmRecord reachable at the end.
};

CloudConfig
baseConfig(int replicas)
{
    CloudConfig cfg;
    cfg.numServers = 4;
    cfg.numAttestationServers = 2;
    cfg.seed = 20260808;
    cfg.cryptoBatchWindow = usec(200);
    cfg.controllerShards = 1;
    cfg.controllerReplicas = replicas;
    return cfg;
}

/** Launch 4 VMs, warm one attest round, then run the 16-wide fan-out;
 * optionally crash the shard leader shortly into the fan-out. */
Leg
runLeg(int replicas, bool killLeader, SimTime deadFor)
{
    Cloud cloud(baseConfig(replicas));
    Customer &customer = cloud.addCustomer("bench-customer");

    std::vector<std::string> vids;
    for (int i = 0; i < 4; ++i) {
        auto vid = cloud.launchVm(customer, "vm-" + std::to_string(i),
                                  "cirros", "small",
                                  proto::allProperties());
        if (!vid.isOk())
            throw std::runtime_error(vid.errorMessage());
        vids.push_back(vid.take());
    }
    for (auto &r :
         cloud.attestMany(customer, vids, proto::allProperties())) {
        if (!r.isOk())
            throw std::runtime_error(r.errorMessage());
    }

    if (killLeader) {
        sim::FaultPlanConfig plan;
        plan.seed = 0xFA110;
        const SimTime crashAt = cloud.events().now() + msec(300);
        plan.crashes.push_back(sim::CrashEvent{
            "cloud-controller", crashAt, crashAt + deadFor});
        cloud.installFaultPlan(plan);
    }

    std::vector<std::string> many;
    for (int i = 0; i < 16; ++i)
        many.push_back(vids[static_cast<std::size_t>(i) % vids.size()]);

    bench::WallTimer timer;
    const SimTime t0 = cloud.events().now();
    Leg leg;
    leg.replicas = replicas;
    for (auto &r : cloud.attestMany(customer, many,
                                    proto::allProperties(),
                                    seconds(600))) {
        ++leg.attests;
        leg.verified += r.isOk();
    }
    leg.simMakespanSec =
        static_cast<double>(cloud.events().now() - t0) / 1e6;
    leg.attestationsPerSimSec =
        leg.simMakespanSec > 0 ? leg.attests / leg.simMakespanSec : 0;
    leg.wallSeconds = timer.elapsedSeconds();

    auto &fab = cloud.controllerFabric();
    leg.leader = fab.leaderOf(0).id();
    leg.round = fab.leaderOf(0).electionRound();
    leg.recordsIntact = true;
    for (const std::string &vid : vids)
        leg.recordsIntact &= fab.ownerOf(vid).database().vm(vid) != nullptr;
    return leg;
}

void
printLeg(const char *name, const Leg &leg)
{
    bench::row(name,
               {std::to_string(leg.replicas),
                std::to_string(leg.verified) + "/" +
                    std::to_string(leg.attests),
                bench::fmt("%.3f", leg.simMakespanSec),
                bench::fmt("%.1f", leg.attestationsPerSimSec),
                leg.leader + " r" + std::to_string(leg.round),
                leg.recordsIntact ? "yes" : "NO"},
               18, 14);
}

void
legJson(std::FILE *f, const char *key, const Leg &leg, bool last)
{
    std::fprintf(
        f,
        "    \"%s\": {\"replicas\": %d, \"attests\": %d, "
        "\"verified\": %d, \"sim_makespan_sec\": %.6f, "
        "\"attestations_per_sim_sec\": %.2f, \"wall_seconds\": %.6f, "
        "\"leader\": \"%s\", \"round\": %llu, \"records_intact\": "
        "%s}%s\n",
        key, leg.replicas, leg.attests, leg.verified, leg.simMakespanSec,
        leg.attestationsPerSimSec, leg.wallSeconds, leg.leader.c_str(),
        static_cast<unsigned long long>(leg.round),
        leg.recordsIntact ? "true" : "false", last ? "" : ",");
}

} // namespace

int
main()
{
    bench::banner(
        "Controller replication & failover",
        "Clean-wire cost of majority-commit replication (replicas 1 vs "
        "3) and the\nmakespan of a 16-wide attestation fan-out when the "
        "shard leader is killed\nmid-flight: journal-replay restart "
        "(replicas=1) vs leader election (replicas=3).");

    bench::row("leg", {"replicas", "verified", "sim makespan s",
                       "attests/sim s", "leader", "intact"},
               18, 14);

    // Clean wire: the price of replication when nothing fails.
    const Leg clean1 = runLeg(1, /*killLeader=*/false, 0);
    printLeg("clean", clean1);
    const Leg clean3 = runLeg(3, /*killLeader=*/false, 0);
    printLeg("clean", clean3);

    // Leader killed mid-fan-out, dark for 60 s either way. With one
    // replica the only path back is the node's own restart + journal
    // replay; with three, a follower takes over within the election
    // timeout and answers while the old leader is still dark.
    const Leg kill1 = runLeg(1, /*killLeader=*/true, seconds(60));
    printLeg("leader kill", kill1);
    const Leg kill3 = runLeg(3, /*killLeader=*/true, seconds(60));
    printLeg("leader kill", kill3);

    const double overhead =
        clean1.simMakespanSec > 0
            ? (clean3.simMakespanSec - clean1.simMakespanSec) /
                  clean1.simMakespanSec
            : 0;
    std::printf("\nclean-wire replication overhead: %.1f%% simulated "
                "makespan\n",
                100.0 * overhead);
    std::printf("leader kill (60 s outage): replicas=1 settles in %.3f "
                "s (restart + replay), replicas=3 in %.3f s "
                "(election)\n",
                kill1.simMakespanSec, kill3.simMakespanSec);

    bool shapeOk = true;
    for (const Leg *leg : {&clean1, &clean3, &kill1, &kill3}) {
        shapeOk &= leg->verified == leg->attests;
        shapeOk &= leg->recordsIntact;
    }
    // The replicated group must survive without the crashed node: its
    // leadership moved past the bootstrap round to a replica.
    shapeOk &= kill3.round >= 2;
    shapeOk &= kill3.leader != "cloud-controller";

    std::FILE *f = std::fopen("BENCH_failover.json", "w");
    if (f != nullptr) {
        std::fprintf(f, "{\n  \"benchmark\": \"bench_failover\",\n"
                        "  \"workload\": \"16-wide attestMany fan-out, "
                        "1 shard, 4 VMs\",\n  \"legs\": {\n");
        legJson(f, "clean_replicas1", clean1, false);
        legJson(f, "clean_replicas3", clean3, false);
        legJson(f, "kill_replicas1_restart", kill1, false);
        legJson(f, "kill_replicas3_election", kill3, true);
        std::fprintf(f,
                     "  },\n  \"clean_sim_overhead\": %.4f,\n"
                     "  \"metadata\": %s\n}\n",
                     overhead, bench::metadataJson().c_str());
        std::fclose(f);
        std::printf("\nwrote BENCH_failover.json\n");
    } else {
        std::printf("\n(could not write BENCH_failover.json)\n");
    }

    std::printf("shape check: %s\n", shapeOk ? "PASS" : "FAIL");
    return shapeOk ? 0 : 1;
}
