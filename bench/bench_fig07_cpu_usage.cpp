/**
 * @file
 * Figure 7: "Measurements of CPU Availability Vulnerability" —
 * relative CPU usage of attacker and victim under each co-runner
 * scenario, as the VMM Profile Tool measures it and the Availability
 * Property Interpretation (§4.5.3) appraises it.
 */

#include <cstdio>

#include "attestation/interpreters.h"
#include "bench_util.h"
#include "hypervisor/hypervisor.h"
#include "server/monitor_module.h"
#include "sim/event_queue.h"
#include "tpm/trust_module.h"
#include "workloads/attacks.h"
#include "workloads/programs.h"
#include "workloads/services.h"

using namespace monatt;
using namespace monatt::workloads;

namespace
{

struct UsageResult
{
    double attackerShare = 0;
    double victimShare = 0;
    proto::HealthStatus verdict = proto::HealthStatus::Unknown;
};

UsageResult
runScenario(const std::string &scenario)
{
    sim::EventQueue events;
    hypervisor::HypervisorConfig cfg;
    cfg.numPCpus = 1;
    cfg.hypervisorCode = toBytes("xen");
    cfg.hostOsCode = toBytes("dom0");
    hypervisor::Hypervisor hv(events, cfg);
    Rng keyRng(7);
    tpm::TpmEmulator tpmDev(crypto::rsaGenerateKeyPair(256, keyRng));
    hv.boot(tpmDev);
    tpm::TrustModule tm("bench-server",
                        crypto::rsaGenerateKeyPair(512, keyRng),
                        toBytes("seed"));
    server::MonitorModule monitor(hv, tm);

    const auto victim = hv.createDomain("victim", 1, 0, toBytes("v"));
    hv.setBehavior(victim, 0, std::make_unique<SpinnerProgram>());

    hypervisor::DomainId attacker = -1;
    if (scenario == "idle") {
        attacker = hv.createDomain("idle", 1, 0, toBytes("i"));
        hv.setBehavior(attacker, 0, std::make_unique<IdleProgram>());
    } else if (scenario == "cpu_avail") {
        attacker = hv.createDomain("attacker", 2, 0, toBytes("a"));
        installAvailabilityAttack(hv, attacker);
    } else {
        attacker = hv.createDomain(scenario, 1, 0, toBytes("s"));
        hv.setBehavior(attacker, 0, makeService(scenario));
    }

    // Warm up into steady state, then measure a 10 s window of both
    // domains (the availability testing period of §4.5.2).
    events.run(seconds(2));
    const SimTime windowStart = events.now();
    hv.profiler().startWindow(victim, windowStart);
    monitor.beginWindow(attacker, windowStart);
    events.run(windowStart + seconds(10));

    UsageResult out;
    const SimTime window = events.now() - windowStart;
    hv.profiler().stopWindow(victim, events.now());
    const SimTime victimRun = hv.profiler().windowRuntime(victim);
    out.victimShare =
        static_cast<double>(victimRun) / static_cast<double>(window);

    auto m = monitor.finishWindow(proto::MeasurementType::CpuMeasure,
                                  attacker, events.now());
    out.attackerShare = static_cast<double>(m.value().values[0]) /
                        static_cast<double>(window);

    // Interpret the victim's availability the way the Attestation
    // Server would.
    proto::Measurement victimMeasure;
    victimMeasure.type = proto::MeasurementType::CpuMeasure;
    victimMeasure.values = {static_cast<std::uint64_t>(victimRun)};
    victimMeasure.windowLength = window;
    proto::MeasurementSet set;
    set.items.push_back(victimMeasure);

    attestation::CpuAvailabilityInterpreter interp;
    attestation::InterpretationContext ctx;
    attestation::VmReference ref;
    ref.slaMinCpuShare = 0.30;
    ctx.vmRef = &ref;
    out.verdict = interp.interpret(set, ctx).status;
    return out;
}

} // namespace

int
main()
{
    bench::banner(
        "Figure 7",
        "Relative CPU usage of attacker and victim per scenario "
        "(victim demands 100% CPU),\nwith the availability "
        "interpreter's verdict on the victim.");

    const std::vector<std::string> scenarios = {
        "idle", "database", "file", "web",
        "app",  "stream",   "mail", "cpu_avail",
    };

    std::printf("\n%-12s %12s %12s   %s\n", "neighbor", "attacker CPU",
                "victim CPU", "victim availability verdict");
    bool shapeOk = true;
    for (const auto &scenario : scenarios) {
        const UsageResult r = runScenario(scenario);
        std::printf("%-12s %11.1f%% %11.1f%%   %s\n", scenario.c_str(),
                    100.0 * r.attackerShare, 100.0 * r.victimShare,
                    proto::healthStatusName(r.verdict).c_str());
        if (scenario == "cpu_avail") {
            shapeOk &= r.attackerShare > 0.85 && r.victimShare < 0.10;
            shapeOk &= r.verdict == proto::HealthStatus::Compromised;
        } else if (scenario == "idle") {
            shapeOk &= r.victimShare > 0.95;
        } else {
            shapeOk &= r.verdict == proto::HealthStatus::Healthy;
        }
    }

    std::printf("\nexpected shape: attack starves the victim below 10%% "
                "CPU and is flagged; every\nlegitimate neighbor leaves "
                "the victim at or above its fair share\n");
    std::printf("shape check: %s\n", shapeOk ? "PASS" : "FAIL");
    return shapeOk ? 0 : 1;
}
