/**
 * @file
 * Figure 10: "Performance Effect of Runtime Attestation" — relative
 * performance of six cloud benchmarks running in a VM while the
 * customer requests periodic runtime attestation at no attestation /
 * 1 min / 10 s / 5 s.
 *
 * Paper: "there is no performance degradation due to the execution of
 * runtime attestation... the measurements are taken during the VM
 * switch — the VMM Profile Tool does not intercept the VM's
 * execution."
 */

#include <cstdio>

#include "bench_util.h"
#include "core/cloud.h"
#include "workloads/services.h"

using namespace monatt;
using namespace monatt::core;

namespace
{

double
runBenchmark(const std::string &service, SimTime attestPeriod)
{
    Cloud cloud;
    Customer &customer = cloud.addCustomer("bench-customer");
    auto vid = cloud.launchVm(customer, "bench-vm", "ubuntu", "large",
                              proto::allProperties());
    if (!vid.isOk())
        throw std::runtime_error(vid.errorMessage());

    server::CloudServer *host = cloud.serverHosting(vid.value());
    auto workload = workloads::makeService(service);
    workloads::ServiceWorkload *probe = workload.get();
    host->hypervisor().setBehavior(host->domainOf(vid.value()), 0,
                                   std::move(workload));

    if (attestPeriod > 0) {
        customer.runtimeAttestPeriodic(
            vid.value(), {proto::SecurityProperty::CpuAvailability},
            attestPeriod);
    }

    const SimTime start = cloud.events().now();
    cloud.runFor(seconds(60));
    (void)start;
    return toSeconds(probe->workDone());
}

} // namespace

int
main()
{
    bench::banner(
        "Figure 10",
        "Relative performance of cloud benchmarks under periodic "
        "runtime attestation\n(no attestation / 1 min / 10 s / 5 s), 60 "
        "s of benchmark execution each.");

    const std::vector<std::string> services = {
        "database", "file", "web", "app", "stream", "mail",
    };
    const std::vector<std::pair<std::string, SimTime>> freqs = {
        {"no attest", 0},
        {"1min", minutes(1)},
        {"10s", seconds(10)},
        {"5s", seconds(5)},
    };

    std::vector<std::string> header;
    for (const auto &[label, period] : freqs)
        header.push_back(label);
    bench::row("benchmark", header, 12, 10);

    bool shapeOk = true;
    for (const auto &service : services) {
        const double baseline = runBenchmark(service, 0);
        std::vector<std::string> cells;
        for (const auto &[label, period] : freqs) {
            const double done =
                period == 0 ? baseline : runBenchmark(service, period);
            const double rel = baseline > 0 ? done / baseline : 0;
            cells.push_back(bench::fmt("%.1f%%", 100.0 * rel));
            shapeOk &= rel > 0.97;
        }
        bench::row(service, cells, 12, 10);
    }

    std::printf("\nexpected shape: ~100%% at every attestation frequency "
                "(non-intrusive collection\nat VM switch); see "
                "bench_ablation_intrusive for the intercepting-monitor "
                "contrast\n");
    std::printf("shape check: %s\n", shapeOk ? "PASS" : "FAIL");
    return shapeOk ? 0 : 1;
}
