/**
 * @file
 * Figure 10: "Performance Effect of Runtime Attestation" — relative
 * performance of six cloud benchmarks running in a VM while the
 * customer requests periodic runtime attestation at no attestation /
 * 1 min / 10 s / 5 s.
 *
 * Paper: "there is no performance degradation due to the execution of
 * runtime attestation... the measurements are taken during the VM
 * switch — the VMM Profile Tool does not intercept the VM's
 * execution."
 */

#include <cstdio>

#include "bench_util.h"
#include "core/cloud.h"
#include "crypto/bignum.h"
#include "workloads/services.h"

using namespace monatt;
using namespace monatt::core;

namespace
{

double
runBenchmark(const std::string &service, SimTime attestPeriod,
             const CloudConfig &config = {})
{
    Cloud cloud(config);
    Customer &customer = cloud.addCustomer("bench-customer");
    auto vid = cloud.launchVm(customer, "bench-vm", "ubuntu", "large",
                              proto::allProperties());
    if (!vid.isOk())
        throw std::runtime_error(vid.errorMessage());

    server::CloudServer *host = cloud.serverHosting(vid.value());
    auto workload = workloads::makeService(service);
    workloads::ServiceWorkload *probe = workload.get();
    host->hypervisor().setBehavior(host->domainOf(vid.value()), 0,
                                   std::move(workload));

    if (attestPeriod > 0) {
        customer.runtimeAttestPeriodic(
            vid.value(), {proto::SecurityProperty::CpuAvailability},
            attestPeriod);
    }

    const SimTime start = cloud.events().now();
    cloud.runFor(seconds(60));
    (void)start;
    return toSeconds(probe->workDone());
}

} // namespace

int
main()
{
    bench::banner(
        "Figure 10",
        "Relative performance of cloud benchmarks under periodic "
        "runtime attestation\n(no attestation / 1 min / 10 s / 5 s), 60 "
        "s of benchmark execution each.");

    const std::vector<std::string> services = {
        "database", "file", "web", "app", "stream", "mail",
    };
    const std::vector<std::pair<std::string, SimTime>> freqs = {
        {"no attest", 0},
        {"1min", minutes(1)},
        {"10s", seconds(10)},
        {"5s", seconds(5)},
    };

    std::vector<std::string> header;
    for (const auto &[label, period] : freqs)
        header.push_back(label);
    bench::row("benchmark", header, 12, 10);

    bool shapeOk = true;
    for (const auto &service : services) {
        const double baseline = runBenchmark(service, 0);
        std::vector<std::string> cells;
        for (const auto &[label, period] : freqs) {
            const double done =
                period == 0 ? baseline : runBenchmark(service, period);
            const double rel = baseline > 0 ? done / baseline : 0;
            cells.push_back(bench::fmt("%.1f%%", 100.0 * rel));
            shapeOk &= rel > 0.97;
        }
        bench::row(service, cells, 12, 10);
    }

    std::printf("\nexpected shape: ~100%% at every attestation frequency "
                "(non-intrusive collection\nat VM switch); see "
                "bench_ablation_intrusive for the intercepting-monitor "
                "contrast\n");
    std::printf("shape check: %s\n", shapeOk ? "PASS" : "FAIL");

    // Before/after host wall time of one periodic-attestation run (web
    // service, 5 s period — 12 full attestation rounds in 60 simulated
    // seconds): the before leg pins the legacy division ladder and the
    // paper's fresh-AIK-per-round flow; the after leg is the default
    // Montgomery engine with AVK session reuse and the certificate
    // verification cache.
    std::printf("\nA/B host wall time, web service @ 5 s period:\n");
    CloudConfig beforeCfg;
    beforeCfg.enableAttestationCaches = false;
    crypto::setModExpEngine(crypto::ModExpEngine::Legacy);
    bench::WallTimer beforeTimer;
    runBenchmark("web", seconds(5), beforeCfg);
    bench::AbLeg before{"legacy", false, beforeTimer.elapsedSeconds()};

    crypto::setModExpEngine(crypto::ModExpEngine::Montgomery);
    bench::WallTimer afterTimer;
    runBenchmark("web", seconds(5));
    bench::AbLeg after{"montgomery", true, afterTimer.elapsedSeconds()};

    std::printf("  before (legacy ladder, fresh AIK per round): %.3f s\n",
                before.wallSeconds);
    std::printf("  after  (Montgomery, AVK reuse + cert cache): %.3f s\n",
                after.wallSeconds);
    std::printf("  speedup: %.2fx\n",
                after.wallSeconds > 0
                    ? before.wallSeconds / after.wallSeconds
                    : 0.0);
    if (!bench::writeAbJson("BENCH_fig10_runtime_attest.json",
                            "fig10_runtime_attest",
                            "web service, 5s periodic attestation",
                            before, after))
        std::printf("  (could not write BENCH_fig10_runtime_attest.json)\n");
    else
        std::printf("  wrote BENCH_fig10_runtime_attest.json\n");

    return shapeOk ? 0 : 1;
}
