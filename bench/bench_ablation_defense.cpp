/**
 * @file
 * Ablation: scheduler defenses against the CPU availability attack.
 *
 * The §4.5.1 attack exploits two mechanisms at once: BOOST-on-wake
 * preemption and the sampled (tick-based) credit debiting that lets a
 * tick-dodging attacker keep its credits while the victim absorbs
 * every debit. This bench quantifies each defense:
 *
 *   - boost off only:   attacker still dodges ticks, stays UNDER
 *                       while the victim sinks OVER — still starves.
 *   - exact accounting: credits are charged for actual consumption —
 *                       the attack collapses to fair sharing, with or
 *                       without BOOST.
 *
 * CloudMonatt's position is detection + response rather than
 * scheduler hardening; this ablation shows why detection matters: the
 * obvious point fix (disable BOOST) does not work.
 */

#include <cstdio>

#include "bench_util.h"
#include "hypervisor/hypervisor.h"
#include "sim/event_queue.h"
#include "workloads/attacks.h"
#include "workloads/programs.h"

using namespace monatt;
using namespace monatt::workloads;

namespace
{

double
attackSlowdown(hypervisor::CreditScheduler::Params sched)
{
    sim::EventQueue events;
    hypervisor::HypervisorConfig cfg;
    cfg.numPCpus = 1;
    cfg.sched = sched;
    cfg.hypervisorCode = toBytes("xen");
    cfg.hostOsCode = toBytes("dom0");
    hypervisor::Hypervisor hv(events, cfg);
    Rng rng(55);
    tpm::TpmEmulator tpm(crypto::rsaGenerateKeyPair(256, rng));
    hv.boot(tpm);

    const auto victim = hv.createDomain("victim", 1, 0, toBytes("v"));
    const auto attacker = hv.createDomain("attacker", 2, 0,
                                          toBytes("a"));
    SimTime completedAt = -1;
    const SimTime work = seconds(1);
    hv.setBehavior(victim, 0,
                   std::make_unique<CpuBoundProgram>(
                       work, [&](SimTime t) { completedAt = t; }));
    installAvailabilityAttack(hv, attacker);
    events.run(seconds(60));
    return completedAt < 0 ? -1.0
                           : toSeconds(completedAt) / toSeconds(work);
}

} // namespace

int
main()
{
    bench::banner(
        "Ablation: scheduler defenses",
        "Victim slowdown under the CPU availability attack, per "
        "scheduler configuration.");

    struct Config
    {
        const char *name;
        bool boost;
        bool exact;
    };
    const Config configs[] = {
        {"xen default (vulnerable)", true, false},
        {"boost disabled", false, false},
        {"exact accounting", true, true},
        {"both defenses", false, true},
    };

    std::printf("\n%-28s %14s\n", "scheduler", "slowdown");
    double results[4];
    int i = 0;
    for (const Config &c : configs) {
        hypervisor::CreditScheduler::Params params;
        params.boostEnabled = c.boost;
        params.exactAccounting = c.exact;
        const double slowdown = attackSlowdown(params);
        results[i++] = slowdown;
        std::printf("%-28s %13.2fx\n", c.name, slowdown);
    }

    const bool shapeOk = results[0] > 10.0 && results[1] > 5.0 &&
                         results[2] < 3.0 && results[3] < 3.0;
    std::printf("\nexpected shape: default >10x; boost-off alone still "
                ">5x (tick dodging keeps the\nattacker UNDER); exact "
                "accounting collapses the attack to fair sharing\n");
    std::printf("shape check: %s\n", shapeOk ? "PASS" : "FAIL");
    return shapeOk ? 0 : 1;
}
