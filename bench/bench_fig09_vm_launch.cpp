/**
 * @file
 * Figure 9: "Performance for VM launching" — per-stage launch time
 * (scheduling, networking, block_device_mapping, spawning,
 * attestation) for three images (cirros, fedora, ubuntu) x three
 * flavors (small, medium, large). The paper: "the overhead of the
 * Attestation stage is about 20%, which is acceptable".
 */

#include <cstdio>

#include "bench_util.h"
#include "core/cloud.h"
#include "crypto/bignum.h"
#include "server/catalog.h"

using namespace monatt;
using namespace monatt::core;

namespace
{

struct LaunchBreakdown
{
    double scheduling = 0;
    double networking = 0;
    double mapping = 0;
    double spawning = 0;
    double attestation = 0;

    double
    total() const
    {
        return scheduling + networking + mapping + spawning + attestation;
    }
};

LaunchBreakdown
launchOnce(const std::string &image, const std::string &flavor,
           const CloudConfig &config = {})
{
    Cloud cloud(config);
    Customer &customer = cloud.addCustomer("bench-customer");
    auto vid = cloud.launchVm(customer, image + "-" + flavor, image,
                              flavor, proto::allProperties());
    if (!vid.isOk())
        throw std::runtime_error("launch failed: " + vid.errorMessage());

    const auto *rec = cloud.controller().database().vm(vid.value());
    LaunchBreakdown out;
    out.scheduling = toSeconds(rec->launchTimer.durationOf("scheduling"));
    out.networking = toSeconds(rec->launchTimer.durationOf("networking"));
    out.mapping = toSeconds(rec->launchTimer.durationOf("mapping"));
    out.spawning = toSeconds(rec->launchTimer.durationOf("spawning"));
    out.attestation =
        toSeconds(rec->launchTimer.durationOf("attestation"));
    return out;
}

} // namespace

int
main()
{
    bench::banner(
        "Figure 9",
        "VM launch time breakdown (seconds) per stage, for 3 images x "
        "3 flavors.\nNew CloudMonatt stage: attestation (after "
        "spawning).");

    std::printf("\n%-16s %10s %10s %10s %10s %11s %8s %7s\n",
                "image-flavor", "schedule", "network", "mapping",
                "spawning", "attestation", "total", "att%");

    bool shapeOk = true;
    double worstOverhead = 0;
    for (const char *image : {"cirros", "fedora", "ubuntu"}) {
        for (const char *flavor : {"small", "medium", "large"}) {
            const LaunchBreakdown b = launchOnce(image, flavor);
            const double overhead = 100.0 * b.attestation / b.total();
            worstOverhead = std::max(worstOverhead, overhead);
            std::printf("%-16s %10.2f %10.2f %10.2f %10.2f %11.2f %8.2f "
                        "%6.1f%%\n",
                        (std::string(image) + "-" + flavor).c_str(),
                        b.scheduling, b.networking, b.mapping,
                        b.spawning, b.attestation, b.total(), overhead);
            shapeOk &= overhead > 5.0 && overhead < 35.0;
            shapeOk &= b.total() > 1.5 && b.total() < 8.0;
        }
    }

    std::printf("\nexpected shape: total 2-6 s growing with image/flavor; "
                "attestation overhead ~20%%\n");
    std::printf("worst attestation overhead: %.1f%%\n", worstOverhead);
    std::printf("shape check: %s\n", shapeOk ? "PASS" : "FAIL");

    // Before/after host wall time of one representative launch: the
    // before leg pins the legacy division ladder and disables the
    // attestation caches; the after leg is the default configuration.
    std::printf("\nA/B host wall time, ubuntu-medium launch:\n");
    CloudConfig beforeCfg;
    beforeCfg.enableAttestationCaches = false;
    crypto::setModExpEngine(crypto::ModExpEngine::Legacy);
    bench::WallTimer beforeTimer;
    launchOnce("ubuntu", "medium", beforeCfg);
    bench::AbLeg before{"legacy", false, beforeTimer.elapsedSeconds()};

    crypto::setModExpEngine(crypto::ModExpEngine::Montgomery);
    bench::WallTimer afterTimer;
    launchOnce("ubuntu", "medium");
    bench::AbLeg after{"montgomery", true, afterTimer.elapsedSeconds()};

    std::printf("  before (legacy ladder, caches off): %.3f s\n",
                before.wallSeconds);
    std::printf("  after  (Montgomery, caches on):     %.3f s\n",
                after.wallSeconds);
    std::printf("  speedup: %.2fx\n",
                after.wallSeconds > 0
                    ? before.wallSeconds / after.wallSeconds
                    : 0.0);
    if (!bench::writeAbJson("BENCH_fig09_vm_launch.json",
                            "fig09_vm_launch", "ubuntu-medium launch",
                            before, after))
        std::printf("  (could not write BENCH_fig09_vm_launch.json)\n");
    else
        std::printf("  wrote BENCH_fig09_vm_launch.json\n");

    return shapeOk ? 0 : 1;
}
