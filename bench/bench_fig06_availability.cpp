/**
 * @file
 * Figure 6: "Performance for CPU Availability Attacks" — relative
 * execution time of the victim's programs (bzip2, hmmer, astar)
 * against co-runner scenarios: Idle, the six cloud services, and the
 * CPU availability attack (CPU_avail).
 *
 * Expected shape (paper): I/O-bound neighbors ~1x, CPU-bound
 * neighbors ~2x (fair share), CPU_avail attack >10x.
 */

#include <cstdio>

#include "bench_util.h"
#include "hypervisor/hypervisor.h"
#include "sim/event_queue.h"
#include "workloads/attacks.h"
#include "workloads/programs.h"
#include "workloads/services.h"

using namespace monatt;
using namespace monatt::workloads;

namespace
{

double
runScenario(const std::string &scenario, SimTime victimWork)
{
    sim::EventQueue events;
    hypervisor::HypervisorConfig cfg;
    cfg.numPCpus = 1; // Attacker and victim share one CPU.
    cfg.hypervisorCode = toBytes("xen");
    cfg.hostOsCode = toBytes("dom0");
    hypervisor::Hypervisor hv(events, cfg);
    Rng keyRng(6);
    tpm::TpmEmulator tpm(crypto::rsaGenerateKeyPair(256, keyRng));
    hv.boot(tpm);

    const auto victim = hv.createDomain("victim", 1, 0, toBytes("v"));
    SimTime completedAt = -1;
    hv.setBehavior(victim, 0,
                   std::make_unique<CpuBoundProgram>(
                       victimWork,
                       [&](SimTime t) { completedAt = t; }));

    if (scenario == "idle") {
        const auto dom = hv.createDomain("idle", 1, 0, toBytes("i"));
        hv.setBehavior(dom, 0, std::make_unique<IdleProgram>());
    } else if (scenario == "cpu_avail") {
        const auto dom = hv.createDomain("attacker", 2, 0, toBytes("a"));
        installAvailabilityAttack(hv, dom);
    } else {
        const auto dom = hv.createDomain(scenario, 1, 0, toBytes("s"));
        hv.setBehavior(dom, 0, makeService(scenario));
    }

    events.run(seconds(180));
    if (completedAt < 0)
        return -1.0;
    return toSeconds(completedAt) / toSeconds(victimWork);
}

} // namespace

int
main()
{
    bench::banner(
        "Figure 6",
        "Relative execution time of victim programs vs co-runner "
        "scenario.\nBaseline = solo runtime on the shared CPU.");

    const std::vector<std::string> scenarios = {
        "idle", "database", "file", "web",
        "app",  "stream",   "mail", "cpu_avail",
    };

    std::vector<std::string> header;
    for (const auto &s : scenarios)
        header.push_back(s);
    bench::row("victim \\ neighbor", header, 18, 9);

    bool shapeOk = true;
    for (const auto &victim : victimPrograms()) {
        std::vector<std::string> cells;
        for (const auto &scenario : scenarios) {
            const double rel = runScenario(scenario, victim.cpuDemand);
            cells.push_back(rel < 0 ? "timeout"
                                    : bench::fmt("%.2fx", rel));
            if (scenario == "idle")
                shapeOk &= rel < 1.1;
            if (scenario == "file" || scenario == "stream" ||
                scenario == "mail") {
                shapeOk &= rel < 1.3;
            }
            if (scenario == "database" || scenario == "web" ||
                scenario == "app") {
                shapeOk &= rel > 1.5 && rel < 2.8;
            }
            if (scenario == "cpu_avail")
                shapeOk &= rel > 10.0;
        }
        bench::row(victim.name, cells, 18, 9);
    }

    std::printf("\nexpected shape: idle/IO-bound ~1x, CPU-bound ~2x "
                "(fair share), CPU_avail >10x\n");
    std::printf("shape check: %s\n", shapeOk ? "PASS" : "FAIL");
    return shapeOk ? 0 : 1;
}
