/**
 * @file
 * Figure 11: "Attestation reaction times during VM runtime" — for
 * each response strategy (Termination, Suspension, Migration) and
 * each flavor (small, medium, large): the attestation time (request
 * to negative report) stacked with the response time (report to
 * completed remediation).
 *
 * Paper: "Termination is the fastest while Migration is the slowest."
 */

#include <cstdio>

#include "bench_util.h"
#include "core/cloud.h"

using namespace monatt;
using namespace monatt::core;

namespace
{

struct ResponseTiming
{
    double attestation = 0;
    double response = 0;
};

ResponseTiming
runResponse(controller::ResponsePolicy policy, const std::string &flavor)
{
    Cloud cloud;
    Customer &customer = cloud.addCustomer("bench-customer");
    auto vid = cloud.launchVm(customer, "victim-vm", "fedora", flavor,
                              proto::allProperties());
    if (!vid.isOk())
        throw std::runtime_error(vid.errorMessage());

    cloud.controller().setResponsePolicy(vid.value(), policy);
    cloud.serverHosting(vid.value())
        ->guestOs(vid.value())
        .injectHiddenMalware("rootkit");

    customer.runtimeAttestCurrent(
        vid.value(), {proto::SecurityProperty::RuntimeIntegrity});
    const bool done = cloud.runUntil(
        [&] {
            const auto &log = cloud.controller().responseLog();
            return !log.empty() && log.front().completed;
        },
        seconds(300));
    if (!done)
        throw std::runtime_error("response did not complete");

    const auto &rec = cloud.controller().responseLog().front();
    ResponseTiming out;
    out.attestation = toSeconds(rec.reportAt - rec.attestStart);
    out.response = toSeconds(rec.completedAt - rec.reportAt);
    return out;
}

} // namespace

int
main()
{
    bench::banner(
        "Figure 11",
        "Attestation + response reaction time (seconds) per response "
        "strategy and flavor.");

    std::printf("\n%-14s %-8s %13s %11s %9s\n", "response", "flavor",
                "attestation", "response", "total");

    double totals[3] = {0, 0, 0};
    int idx = 0;
    for (controller::ResponsePolicy policy :
         {controller::ResponsePolicy::Terminate,
          controller::ResponsePolicy::Suspend,
          controller::ResponsePolicy::Migrate}) {
        double strategyTotal = 0;
        for (const char *flavor : {"small", "medium", "large"}) {
            const ResponseTiming t = runResponse(policy, flavor);
            std::printf("%-14s %-8s %12.2fs %10.2fs %8.2fs\n",
                        controller::responsePolicyName(policy).c_str(),
                        flavor, t.attestation, t.response,
                        t.attestation + t.response);
            strategyTotal += t.attestation + t.response;
        }
        totals[idx++] = strategyTotal;
    }

    const bool shapeOk = totals[0] < totals[1] && totals[1] < totals[2];
    std::printf("\nexpected shape: Termination fastest, Migration "
                "slowest; Suspension and Migration\nscale with flavor "
                "RAM (state save / RAM copy over the 1 Gbps fabric)\n");
    std::printf("shape check: %s\n", shapeOk ? "PASS" : "FAIL");
    return shapeOk ? 0 : 1;
}
