/**
 * @file
 * Codec A/B micro-bench: legacy fixed-width encoding vs the tagged
 * schema-driven encoding (DESIGN.md §17), in one binary over one
 * shared corpus of representative protocol messages. Reports, per
 * message type and in total:
 *
 *   - bytes on the simulated wire (framed size, both formats) — these
 *     feed Network::transferTime, so they are behavioral metrics and
 *     are hard-gated against bench/baselines/codec/;
 *   - host-side encode/decode ns per op (wall_* metrics, warn-only in
 *     the perf gate: runner-dependent).
 *
 * The bench fails if the tagged corpus is larger on the wire than the
 * legacy one beyond a small tolerance: the tagged codec exists to be
 * evolvable *without* paying transfer time for it.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "proto/messages.h"

using namespace monatt;
using namespace monatt::bench;

namespace
{

const proto::WireContext kTagged{proto::WireFormat::Tagged,
                                 proto::kWireVersionLatest};

/** One corpus entry: a message with both codecs pre-applied. */
struct Sample
{
    std::string name;
    Bytes legacyFrame;  //!< packMessage(kind, encode())
    Bytes taggedFrame;  //!< packMessageTagged(kind, encodeTagged())
    Bytes legacyBody;
    Bytes taggedBody;
    double wallLegacyEncodeNs = 0;
    double wallTaggedEncodeNs = 0;
    double wallLegacyDecodeNs = 0;
    double wallTaggedDecodeNs = 0;
};

/** ns/op of `fn` over enough iterations to be stable for a smoke run. */
template <typename Fn>
double
nsPerOp(Fn &&fn)
{
    constexpr int kIters = 20000;
    // Warm-up round keeps first-touch allocation out of the measurement.
    for (int i = 0; i < 64; ++i)
        fn();
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kIters; ++i)
        fn();
    const auto d = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double, std::nano>(d).count() / kIters;
}

template <typename M>
Sample
makeSample(const std::string &name, proto::MessageKind kind, const M &m)
{
    Sample s;
    s.name = name;
    s.legacyBody = m.encode();
    s.taggedBody = m.encodeTagged(kTagged);
    s.legacyFrame = proto::packMessage(kind, s.legacyBody);
    s.taggedFrame = proto::packMessageTagged(kind, s.taggedBody);

    s.wallLegacyEncodeNs = nsPerOp([&] {
        Bytes b = m.encode();
        (void)b;
    });
    s.wallTaggedEncodeNs = nsPerOp([&] {
        Bytes b = m.encodeTagged(kTagged);
        (void)b;
    });
    s.wallLegacyDecodeNs = nsPerOp([&] {
        auto r = M::decode(s.legacyBody);
        (void)r;
    });
    s.wallTaggedDecodeNs = nsPerOp([&] {
        auto r = M::decodeTagged(s.taggedBody);
        (void)r;
    });
    return s;
}

proto::MeasurementSet
sampleMeasurements()
{
    proto::MeasurementSet set;
    proto::Measurement tasks;
    tasks.type = proto::MeasurementType::TaskListVmi;
    tasks.strings = {"init", "sshd", "crond", "qemu-ga"};
    set.items.push_back(tasks);
    proto::Measurement hist;
    hist.type = proto::MeasurementType::UsageIntervalHistogram;
    hist.values.assign(30, 7);
    hist.windowLength = seconds(2);
    set.items.push_back(hist);
    proto::Measurement pcrs;
    pcrs.type = proto::MeasurementType::PlatformPcrs;
    pcrs.digest = Bytes(24 * 20, 0x5a);
    set.items.push_back(pcrs);
    return set;
}

proto::AttestationReport
sampleReport()
{
    proto::AttestationReport r;
    r.vid = "vm-17";
    for (proto::SecurityProperty p : proto::allProperties()) {
        proto::PropertyResult pr;
        pr.property = p;
        pr.status = proto::HealthStatus::Healthy;
        r.results.push_back(pr);
    }
    r.issuedAt = seconds(42);
    return r;
}

/**
 * Representative protocol mix: the full attestation chain C→D→A→M and
 * back, one launch command, one migration, one replication batch.
 */
std::vector<Sample>
buildCorpus()
{
    std::vector<Sample> corpus;

    proto::AttestRequest areq;
    areq.requestId = 17;
    areq.vid = "vm-17";
    areq.properties = proto::allProperties();
    areq.nonce1 = Bytes(16, 0x11);
    corpus.push_back(makeSample("AttestRequest",
                                proto::MessageKind::AttestRequest, areq));

    proto::AttestForward fwd;
    fwd.requestId = 17;
    fwd.vid = "vm-17";
    fwd.serverId = "server-3";
    fwd.properties = proto::allProperties();
    fwd.nonce2 = Bytes(16, 0x22);
    corpus.push_back(makeSample("AttestForward",
                                proto::MessageKind::AttestForward, fwd));

    proto::MeasureRequest mreq;
    mreq.requestId = 17;
    mreq.vid = "vm-17";
    mreq.rm = {proto::MeasurementType::PlatformPcrs,
               proto::MeasurementType::TaskListVmi,
               proto::MeasurementType::UsageIntervalHistogram};
    mreq.nonce3 = Bytes(16, 0x33);
    mreq.window = seconds(2);
    corpus.push_back(makeSample("MeasureRequest",
                                proto::MessageKind::MeasureRequest, mreq));

    proto::MeasureResponse mresp;
    mresp.requestId = 17;
    mresp.vid = "vm-17";
    mresp.rm = mreq.rm;
    mresp.m = sampleMeasurements();
    mresp.nonce3 = mreq.nonce3;
    mresp.quote3 = proto::MeasureResponse::quoteInput(
        mresp.vid, mresp.rm, mresp.m, mresp.nonce3);
    mresp.signature = Bytes(64, 0x44);
    mresp.certificate = Bytes(180, 0x55);
    corpus.push_back(makeSample(
        "MeasureResponse", proto::MessageKind::MeasureResponse, mresp));

    proto::ReportToController rtc;
    rtc.requestId = 17;
    rtc.vid = "vm-17";
    rtc.serverId = "server-3";
    rtc.properties = proto::allProperties();
    rtc.report = sampleReport();
    rtc.nonce2 = fwd.nonce2;
    rtc.quote2 = proto::ReportToController::quoteInput(
        rtc.vid, rtc.serverId, rtc.properties, rtc.report, rtc.nonce2);
    rtc.signature = Bytes(64, 0x66);
    corpus.push_back(makeSample("ReportToController",
                                proto::MessageKind::ReportToController,
                                rtc));

    proto::ReportToCustomer rtcu;
    rtcu.requestId = 17;
    rtcu.vid = "vm-17";
    rtcu.properties = proto::allProperties();
    rtcu.report = rtc.report;
    rtcu.nonce1 = areq.nonce1;
    rtcu.quote1 = proto::ReportToCustomer::quoteInput(
        rtcu.vid, rtcu.properties, rtcu.report, rtcu.nonce1);
    rtcu.signature = Bytes(64, 0x77);
    corpus.push_back(makeSample("ReportToCustomer",
                                proto::MessageKind::ReportToCustomer,
                                rtcu));

    proto::LaunchVm launch;
    launch.vid = "vm-17";
    launch.name = "web-frontend";
    launch.numVcpus = 2;
    launch.ramMb = 2048;
    launch.diskGb = 20;
    launch.imageSizeMb = 230;
    launch.image = Bytes(256, 0x88);
    corpus.push_back(makeSample("LaunchVm", proto::MessageKind::LaunchVm,
                                launch));

    proto::MigrateIn mig;
    mig.vid = "vm-17";
    mig.name = "web-frontend";
    mig.numVcpus = 2;
    mig.ramMb = 2048;
    mig.diskGb = 20;
    mig.imageSizeMb = 230;
    mig.image = Bytes(256, 0x88);
    mig.guestTasks = {"init", "sshd", "crond", "qemu-ga"};
    corpus.push_back(makeSample("MigrateIn",
                                proto::MessageKind::MigrateIn, mig));

    proto::ReplicateEntries rep;
    rep.round = 3;
    rep.leaderId = "cloud-controller";
    rep.prevLsn = 100;
    rep.commitLsn = 104;
    for (int i = 0; i < 5; ++i) {
        proto::ReplicatedRecord rec;
        rec.lsn = 101 + static_cast<std::uint64_t>(i);
        rec.type = 2;
        rec.payload = Bytes(48, static_cast<std::uint8_t>(i));
        rep.records.push_back(rec);
    }
    corpus.push_back(makeSample("ReplicateEntries",
                                proto::MessageKind::ReplicateEntries,
                                rep));

    return corpus;
}

} // namespace

int
main()
{
    banner("Codec A/B",
           "Legacy fixed-width vs tagged schema-driven wire codec: "
           "framed bytes on the simulated wire and host encode/decode "
           "cost per message type.");

    const std::vector<Sample> corpus = buildCorpus();

    row("message", {"legacy B", "tagged B", "ratio", "enc l/t ns",
                    "dec l/t ns"},
        20, 11);
    std::size_t legacyTotal = 0;
    std::size_t taggedTotal = 0;
    for (const Sample &s : corpus) {
        legacyTotal += s.legacyFrame.size();
        taggedTotal += s.taggedFrame.size();
        const double ratio =
            static_cast<double>(s.taggedFrame.size()) /
            static_cast<double>(s.legacyFrame.size());
        row(s.name,
            {std::to_string(s.legacyFrame.size()),
             std::to_string(s.taggedFrame.size()), fmt("%.3f", ratio),
             fmt("%.0f", s.wallLegacyEncodeNs) + "/" +
                 fmt("%.0f", s.wallTaggedEncodeNs),
             fmt("%.0f", s.wallLegacyDecodeNs) + "/" +
                 fmt("%.0f", s.wallTaggedDecodeNs)},
            20, 11);
    }
    const double totalRatio = static_cast<double>(taggedTotal) /
                              static_cast<double>(legacyTotal);
    row("TOTAL",
        {std::to_string(legacyTotal), std::to_string(taggedTotal),
         fmt("%.3f", totalRatio), "", ""},
        20, 11);

    std::FILE *f = std::fopen("BENCH_codec.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_codec.json\n");
        return 1;
    }
    std::fprintf(f, "{\n  \"benchmark\": \"codec\",\n  \"messages\": [\n");
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        const Sample &s = corpus[i];
        std::fprintf(
            f,
            "    {\"message\": \"%s\", \"legacy_frame_bytes\": %zu, "
            "\"tagged_frame_bytes\": %zu, "
            "\"wall_legacy_encode_ns\": %.1f, "
            "\"wall_tagged_encode_ns\": %.1f, "
            "\"wall_legacy_decode_ns\": %.1f, "
            "\"wall_tagged_decode_ns\": %.1f}%s\n",
            s.name.c_str(), s.legacyFrame.size(), s.taggedFrame.size(),
            s.wallLegacyEncodeNs, s.wallTaggedEncodeNs,
            s.wallLegacyDecodeNs, s.wallTaggedDecodeNs,
            i + 1 < corpus.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"totals\": {\"legacy_frame_bytes\": %zu, "
                 "\"tagged_frame_bytes\": %zu, "
                 "\"tagged_over_legacy_ratio\": %.4f},\n"
                 "  \"metadata\": %s\n"
                 "}\n",
                 legacyTotal, taggedTotal, totalRatio,
                 metadataJson().c_str());
    std::fclose(f);
    std::printf("\nwrote BENCH_codec.json\n");

    // The tagged codec buys schema evolution; it must not pay for it
    // in transfer time. Allow 2% slack for pathological corpora.
    if (totalRatio > 1.02) {
        std::fprintf(stderr,
                     "FAIL: tagged corpus is %.1f%% larger on the wire "
                     "than legacy\n",
                     100.0 * (totalRatio - 1.0));
        return 1;
    }
    std::printf("tagged/legacy bytes-on-wire ratio %.3f (<= 1.02 ok)\n",
                totalRatio);
    return 0;
}
