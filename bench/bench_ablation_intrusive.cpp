/**
 * @file
 * Ablation: non-intrusive vs intercepting measurement collection.
 *
 * §7.1.2: "Whether runtime attestation causes performance degradation
 * to the VM execution time depends on the measurement collection
 * mechanism." The paper's VMM Profile Tool reads state at VM switch
 * (no degradation, Figure 10). This bench contrasts an intercepting
 * monitor that pauses the VM for each collection, at increasing
 * attestation frequency.
 */

#include <cstdio>

#include "bench_util.h"
#include "core/cloud.h"
#include "workloads/services.h"

using namespace monatt;
using namespace monatt::core;

namespace
{

double
runWorkload(SimTime attestPeriod, SimTime intrusivePause)
{
    CloudConfig cfg;
    cfg.serverIntrusivePause = intrusivePause;
    Cloud cloud(cfg);
    Customer &customer = cloud.addCustomer("bench-customer");
    auto vid = cloud.launchVm(customer, "vm", "ubuntu", "large",
                              proto::allProperties());
    if (!vid.isOk())
        throw std::runtime_error(vid.errorMessage());

    server::CloudServer *host = cloud.serverHosting(vid.value());
    auto workload = workloads::makeService("database");
    workloads::ServiceWorkload *probe = workload.get();
    host->hypervisor().setBehavior(host->domainOf(vid.value()), 0,
                                   std::move(workload));

    if (attestPeriod > 0) {
        customer.runtimeAttestPeriodic(
            vid.value(), {proto::SecurityProperty::CpuAvailability},
            attestPeriod);
    }
    cloud.runFor(seconds(60));
    return toSeconds(probe->workDone());
}

} // namespace

int
main()
{
    bench::banner(
        "Ablation: measurement collection mechanism",
        "Relative benchmark performance under periodic attestation, "
        "non-intrusive\ncollection (at VM switch) vs an intercepting "
        "monitor pausing the VM 250 ms per\ncollection.");

    const double baseline = runWorkload(0, 0);

    std::printf("\n%-12s %18s %18s\n", "period", "non-intrusive",
                "intercepting");
    bool shapeOk = true;
    for (const auto &[label, period] :
         std::vector<std::pair<std::string, SimTime>>{
             {"1min", minutes(1)}, {"10s", seconds(10)},
             {"5s", seconds(5)},   {"2s", seconds(2)}}) {
        const double clean = runWorkload(period, 0) / baseline;
        const double intrusive =
            runWorkload(period, msec(250)) / baseline;
        std::printf("%-12s %17.1f%% %17.1f%%\n", label.c_str(),
                    100.0 * clean, 100.0 * intrusive);
        shapeOk &= clean > 0.97;
        if (period <= seconds(5))
            shapeOk &= intrusive < clean;
    }

    std::printf("\nexpected shape: non-intrusive stays ~100%% at every "
                "frequency; the intercepting\nmonitor visibly degrades "
                "the VM as the attestation period shrinks\n");
    std::printf("shape check: %s\n", shapeOk ? "PASS" : "FAIL");
    return shapeOk ? 0 : 1;
}
