/**
 * @file
 * Figure 4: "Cross-VM Covert Information Leakage" — the sender VM's
 * CPU usage as observed by the receiver VM, over time, while the
 * covert channel transmits; plus the achieved bandwidth (the paper
 * reports "a high bandwidth of 200 bps").
 */

#include <cstdio>

#include "bench_util.h"
#include "hypervisor/hypervisor.h"
#include "sim/event_queue.h"
#include "workloads/attacks.h"
#include "workloads/programs.h"

using namespace monatt;
using namespace monatt::workloads;

namespace
{

struct TraceResult
{
    std::vector<std::pair<double, double>> trace; //!< (t ms, interval ms)
    std::size_t bitsSent = 0;
    std::size_t bitsCorrect = 0;
    double seconds = 0;
};

TraceResult
runTrace(const CovertChannelParams &params, std::size_t numBits)
{
    sim::EventQueue events;
    hypervisor::HypervisorConfig cfg;
    cfg.numPCpus = 1;
    cfg.hypervisorCode = toBytes("xen");
    cfg.hostOsCode = toBytes("dom0");
    hypervisor::Hypervisor hv(events, cfg);
    Rng keyRng(42);
    tpm::TpmEmulator tpm(crypto::rsaGenerateKeyPair(256, keyRng));
    hv.boot(tpm);

    const auto receiver = hv.createDomain("receiver", 1, 0,
                                          toBytes("img-r"));
    const auto sender = hv.createDomain("sender", 2, 0, toBytes("img-s"),
                                        1024);
    hv.setBehavior(receiver, 0, std::make_unique<SpinnerProgram>());

    auto message = std::make_shared<CovertMessage>();
    Rng rng(0x1eaf);
    for (std::size_t i = 0; i < numBits; ++i)
        message->bits.push_back(rng.nextBool());

    // Receiver-side observation: gaps in its own execution == the
    // sender's CPU occupancy intervals. Recorded with timestamps via
    // the profiler's raw interval stream for the sender domain.
    std::vector<std::pair<SimTime, SimTime>> senderRuns;
    SimTime lastEnd = -1;
    hv.scheduler().setRunHook(
        [&](hypervisor::VCpuId, hypervisor::DomainId dom, SimTime start,
            SimTime end) {
            hv.profiler().recordRun(0, dom, start, end);
            if (dom != sender)
                return;
            if (!senderRuns.empty() && senderRuns.back().second == start)
                senderRuns.back().second = end; // Merge contiguous.
            else
                senderRuns.emplace_back(start, end);
            lastEnd = end;
        });

    installCovertSender(hv, sender, message, params);
    const SimTime duration =
        params.framePeriod * static_cast<SimTime>(numBits + 4) + msec(40);
    events.run(duration);

    TraceResult out;
    out.seconds = toSeconds(duration);
    std::vector<double> gaps;
    for (const auto &[start, end] : senderRuns) {
        out.trace.emplace_back(toMillis(start), toMillis(end - start));
        gaps.push_back(toMillis(end - start));
    }
    const std::vector<bool> decoded = decodeFromGaps(gaps, params);
    out.bitsSent = message->nextBit;
    for (std::size_t i = 0;
         i < std::min(decoded.size(), message->bits.size()); ++i) {
        out.bitsCorrect += decoded[i] == message->bits[i];
    }
    return out;
}

} // namespace

int
main()
{
    bench::banner(
        "Figure 4",
        "Cross-VM covert information leakage: sender CPU usage interval "
        "observed by the\nreceiver over time (fast preset), and channel "
        "bandwidth.");

    const CovertChannelParams params = CovertChannelParams::fastPreset();
    const TraceResult res = runTrace(params, 120);

    std::printf("\n%-12s %-18s\n", "time (ms)", "interval (ms)");
    // Print the first 60 observed intervals (one per frame), the
    // series Figure 4 plots.
    const std::size_t n = std::min<std::size_t>(res.trace.size(), 60);
    for (std::size_t i = 0; i < n; ++i) {
        std::printf("%-12.1f %-6.2f  |%s\n", res.trace[i].first,
                    res.trace[i].second,
                    std::string(static_cast<std::size_t>(
                                    res.trace[i].second * 12),
                                '#')
                        .c_str());
    }

    const double grossBps = params.bandwidthBps();
    std::printf("\nframe period            : %.1f ms\n",
                toMillis(params.framePeriod));
    std::printf("bit encoding            : short %.1f ms = 0, long %.1f "
                "ms = 1\n",
                toMillis(params.shortBit), toMillis(params.longBit));
    std::printf("channel bandwidth       : %.0f bps (paper: ~200 bps)\n",
                grossBps);
    std::printf("bits transmitted        : %zu\n", res.bitsSent);
    std::printf("receiver decode accuracy: %.1f %%\n",
                100.0 * static_cast<double>(res.bitsCorrect) /
                    static_cast<double>(res.bitsSent));
    return 0;
}
