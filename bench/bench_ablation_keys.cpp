/**
 * @file
 * Ablation: per-session attestation keys vs reusing the identity key.
 *
 * §3.4.2: "A new session-specific key-pair {AVKs, ASKs} is created by
 * the Trust Module whenever an attestation report is needed, so as
 * not to reveal the location of a VM." The anonymity costs a key
 * generation plus a pCA certification round trip per attestation.
 * This bench quantifies that cost by comparing one-shot attestation
 * latency with the session-key machinery at its calibrated cost
 * against a configuration where key generation and certification are
 * free (equivalent to signing with the long-lived identity key).
 */

#include <cstdio>

#include "bench_util.h"
#include "core/cloud.h"

using namespace monatt;
using namespace monatt::core;

namespace
{

double
attestLatency(const proto::TimingModel &timing,
              proto::SecurityProperty property)
{
    CloudConfig cfg;
    cfg.timing = timing;
    Cloud cloud(cfg);
    Customer &customer = cloud.addCustomer("bench-customer");
    auto vid = cloud.launchVm(customer, "vm", "cirros", "small",
                              proto::allProperties());
    if (!vid.isOk())
        throw std::runtime_error(vid.errorMessage());

    const SimTime start = cloud.events().now();
    auto report = cloud.attestOnce(customer, vid.value(), {property});
    if (!report.isOk())
        throw std::runtime_error(report.errorMessage());
    return toSeconds(report.value().receivedAt - start);
}

} // namespace

int
main()
{
    bench::banner(
        "Ablation: session attestation keys",
        "One-shot attestation latency with per-session {AVKs, ASKs} + "
        "pCA certification\n(anonymous attester, the paper's design) vs "
        "reusing the identity key directly.");

    proto::TimingModel withAik;          // Paper design.
    proto::TimingModel withoutAik;       // Identity-key signing.
    withoutAik.aikGeneration = 0;
    withoutAik.pcaProcessing = 0;

    std::printf("\n%-26s %16s %16s %10s\n", "property",
                "session key (s)", "identity key (s)", "delta");
    for (proto::SecurityProperty p : proto::allProperties()) {
        const double with = attestLatency(withAik, p);
        const double without = attestLatency(withoutAik, p);
        std::printf("%-26s %16.3f %16.3f %9.3fs\n",
                    proto::propertyName(p).c_str(), with, without,
                    with - without);
    }

    std::printf("\nexpected shape: the anonymity feature costs a fixed "
                "few hundred ms per\nattestation (AIK generation + pCA "
                "round trip), independent of the property;\nruntime "
                "properties are dominated by the measurement window "
                "instead\n");
    return 0;
}
