/**
 * @file
 * Micro benchmarks of the full Figure-3 protocol: real (wall-clock)
 * cost of one end-to-end attestation through all four entities —
 * every RSA signature, certificate, HMAC'd record and quote is
 * actually computed — plus the secure-channel record path in
 * isolation.
 */

#include <benchmark/benchmark.h>

#include "core/cloud.h"
#include "crypto/drbg.h"
#include "net/secure_channel.h"

using namespace monatt;
using namespace monatt::core;

namespace
{

struct ProtocolFixture
{
    Cloud cloud;
    Customer &customer;
    std::string vid;

    ProtocolFixture() : customer(cloud.addCustomer("bench-customer"))
    {
        auto launched = cloud.launchVm(customer, "vm", "cirros", "small",
                                       proto::allProperties());
        if (!launched.isOk())
            throw std::runtime_error(launched.errorMessage());
        vid = launched.take();
    }

    static ProtocolFixture &
    instance()
    {
        static ProtocolFixture fixture;
        return fixture;
    }
};

void
BM_FullAttestationRoundTrip(benchmark::State &state)
{
    ProtocolFixture &f = ProtocolFixture::instance();
    const auto property = static_cast<proto::SecurityProperty>(
        state.range(0));
    for (auto _ : state) {
        auto report = f.cloud.attestOnce(f.customer, f.vid, {property});
        if (!report.isOk())
            state.SkipWithError(report.errorMessage().c_str());
        benchmark::DoNotOptimize(report);
    }
    state.SetLabel(proto::propertyName(property));
}
BENCHMARK(BM_FullAttestationRoundTrip)
    ->Arg(static_cast<int>(proto::SecurityProperty::StartupIntegrity))
    ->Arg(static_cast<int>(proto::SecurityProperty::RuntimeIntegrity))
    ->Arg(static_cast<int>(proto::SecurityProperty::CpuAvailability))
    ->Unit(benchmark::kMillisecond);

void
BM_SecureChannelHandshake(benchmark::State &state)
{
    Rng rng(11);
    const auto clientKeys = crypto::rsaGenerateKeyPair(512, rng);
    const auto serverKeys = crypto::rsaGenerateKeyPair(512, rng);
    crypto::HmacDrbg clientDrbg(toBytes("client"));
    crypto::HmacDrbg serverDrbg(toBytes("server"));

    for (auto _ : state) {
        net::ClientHandshake client("c", "s", clientKeys, serverKeys.pub,
                                    clientDrbg);
        net::ServerHandshake server("s", serverKeys, serverDrbg);
        auto accepted = server.accept(client.helloMessage(),
                                      clientKeys.pub);
        auto channel = client.finish(accepted.value().reply);
        benchmark::DoNotOptimize(channel);
    }
}
BENCHMARK(BM_SecureChannelHandshake)->Unit(benchmark::kMillisecond);

void
BM_SecureChannelRecord(benchmark::State &state)
{
    Rng rng(12);
    const auto clientKeys = crypto::rsaGenerateKeyPair(512, rng);
    const auto serverKeys = crypto::rsaGenerateKeyPair(512, rng);
    crypto::HmacDrbg clientDrbg(toBytes("client"));
    crypto::HmacDrbg serverDrbg(toBytes("server"));
    net::ClientHandshake client("c", "s", clientKeys, serverKeys.pub,
                                clientDrbg);
    net::ServerHandshake server("s", serverKeys, serverDrbg);
    auto accepted = server.accept(client.helloMessage(), clientKeys.pub);
    auto clientChannel = client.finish(accepted.value().reply).take();
    auto &serverChannel = accepted.value().channel;

    const Bytes payload = rng.nextBytes(static_cast<std::size_t>(
        state.range(0)));
    for (auto _ : state) {
        const Bytes record = clientChannel.seal(payload);
        auto opened = serverChannel.open(record);
        if (!opened)
            state.SkipWithError("record rejected");
        benchmark::DoNotOptimize(opened);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_SecureChannelRecord)->Arg(256)->Arg(4096);

} // namespace

BENCHMARK_MAIN();
