/**
 * @file
 * Micro benchmarks of the simulation substrate: event queue
 * throughput and credit-scheduler simulation speed (simulated seconds
 * per wall second), establishing that the figure benches' multi-
 * minute simulated workloads are cheap to regenerate.
 */

#include <benchmark/benchmark.h>

#include "hypervisor/hypervisor.h"
#include "sim/event_queue.h"
#include "workloads/attacks.h"
#include "workloads/programs.h"
#include "workloads/services.h"

using namespace monatt;
using namespace monatt::hypervisor;

namespace
{

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue events;
        int counter = 0;
        for (int i = 0; i < 1000; ++i) {
            events.scheduleAfter(usec(i), [&counter] { ++counter; });
        }
        events.runAll();
        benchmark::DoNotOptimize(counter);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_SchedulerSimulatedSecond(benchmark::State &state)
{
    // Two contending spinners plus an I/O service: one simulated
    // second per iteration.
    for (auto _ : state) {
        state.PauseTiming();
        sim::EventQueue events;
        CreditScheduler sched(events, CreditScheduler::Params{});
        sched.addPCpu();
        const VCpuId a = sched.addVCpu(1, 0);
        const VCpuId b = sched.addVCpu(2, 0);
        const VCpuId c = sched.addVCpu(3, 0);
        sched.setBehavior(a,
                          std::make_unique<workloads::SpinnerProgram>());
        sched.setBehavior(b,
                          std::make_unique<workloads::SpinnerProgram>());
        sched.setBehavior(c, workloads::makeService("file"));
        sched.start();
        state.ResumeTiming();

        events.run(seconds(1));
        benchmark::DoNotOptimize(sched.stats(a).runtime);
    }
}
BENCHMARK(BM_SchedulerSimulatedSecond)->Unit(benchmark::kMillisecond);

void
BM_AvailabilityAttackSimulatedSecond(benchmark::State &state)
{
    // The boost-preemption attack is the scheduler's worst case
    // (hundreds of context switches per simulated second).
    for (auto _ : state) {
        state.PauseTiming();
        sim::EventQueue events;
        HypervisorConfig cfg;
        cfg.numPCpus = 1;
        cfg.hypervisorCode = toBytes("xen");
        cfg.hostOsCode = toBytes("dom0");
        Hypervisor hv(events, cfg);
        Rng rng(9);
        tpm::TpmEmulator tpm(crypto::rsaGenerateKeyPair(256, rng));
        hv.boot(tpm);
        const DomainId victim = hv.createDomain("victim", 1, 0,
                                                toBytes("v"));
        const DomainId attacker = hv.createDomain("attacker", 2, 0,
                                                  toBytes("a"));
        hv.setBehavior(victim, 0,
                       std::make_unique<workloads::SpinnerProgram>());
        workloads::installAvailabilityAttack(hv, attacker);
        state.ResumeTiming();

        events.run(seconds(1));
        benchmark::DoNotOptimize(hv.scheduler().stats(0).runtime);
    }
}
BENCHMARK(BM_AvailabilityAttackSimulatedSecond)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
