/**
 * @file
 * Million-VM soak: event-kernel and allocation hot-path throughput.
 *
 * Two legs, one binary:
 *
 *  1. Kernel A/B. The identical timer workload — periodic attestation
 *     timers with a retransmission timer armed at every firing and
 *     cancelled at the next, plus a defensive self-cancel of the id
 *     that just fired — runs through the pre-overhaul kernel
 *     (bench/legacy_event_queue.h: std::priority_queue of fat events,
 *     heap-allocating std::function callbacks, tombstone-set cancel)
 *     and through the production sim::EventQueue (flat 4-ary indexed
 *     heap, inline callbacks, generation ids). Captures are padded
 *     past std::function's small-buffer limit, as the codebase's real
 *     timers are. Both legs fold an execution-trace digest; the legs
 *     must match bit-for-bit, and the acceptance floor is
 *     MONATT_SOAK_MIN_SPEEDUP (default 2x) on wall-clock events/sec.
 *
 *  2. Fleet soak. MONATT_SOAK_VMS virtual machines (default 1,000,000)
 *     launch in batch-journaled waves into the real CloudDatabase,
 *     then run MONATT_SOAK_ROUNDS periodic attestation rounds over the
 *     real Network fabric (request -> measurement -> response, with a
 *     retransmission timer cancelled by each response) against the
 *     real StableStore write-ahead journal (appendMany group commits,
 *     checkpoint per round). Reports wall-clock events/sec, peak RSS
 *     and the simulated makespan.
 *
 * Emits BENCH_soak.json. Simulated metrics are deterministic for a
 * fixed VM count and are gated against bench/baselines/soak/; wall_*
 * metrics are runner-dependent and warn-only in the regression gate.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "bench_util.h"
#include "controller/database.h"
#include "legacy_event_queue.h"
#include "net/network.h"
#include "sim/event_queue.h"
#include "sim/stable_store.h"

using namespace monatt;

namespace
{

// --- Small helpers -----------------------------------------------------

std::int64_t
envInt64(const char *name, std::int64_t fallback)
{
    const char *v = std::getenv(name);
    return v != nullptr && *v != '\0' ? std::atoll(v) : fallback;
}

double
envDouble(const char *name, double fallback)
{
    const char *v = std::getenv(name);
    return v != nullptr && *v != '\0' ? std::atof(v) : fallback;
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/** FNV-1a fold of one 64-bit value into a running trace digest. */
void
fold(std::uint64_t &digest, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i) {
        digest ^= (value >> (8 * i)) & 0xff;
        digest *= kFnvPrime;
    }
}

void
putU64(Bytes &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t
getU64(const Bytes &in, std::size_t at)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(in[at + i]) << (8 * i);
    return v;
}

/** Deterministic per-VM jitter (Knuth multiplicative hash). */
SimTime
jitterOf(std::uint64_t vm, SimTime window)
{
    return static_cast<SimTime>((vm * 2654435761ull) %
                                static_cast<std::uint64_t>(window));
}

// --- Leg 1: kernel A/B -------------------------------------------------

constexpr SimTime kKernelPeriod = seconds(30);
constexpr SimTime kKernelRetransmit = seconds(45);
constexpr SimTime kKernelJitter = seconds(10);

/**
 * The timer workload, templated over the queue under test. Each timer
 * fires `rounds` times; every firing folds (now, timer, round) into
 * the trace digest, defensively cancels its own just-fired id (the
 * legacy kernel leaks a tombstone per such cancel), cancels the
 * previous round's still-pending retransmission timer, arms the next
 * one, and schedules the next round. The final round's retransmission
 * timers are left to fire so both kernels drain identically.
 */
template <typename Queue>
struct KernelLeg
{
    Queue queue;
    std::vector<std::uint64_t> attestId;
    std::vector<std::uint64_t> retransmitId;
    std::uint64_t digest = kFnvOffset;
    int rounds = 0;

    void
    fire(std::uint64_t timer, std::uint32_t round, std::uint64_t salt)
    {
        // One fold per firing: (time, timer, round, salt) mixed into a
        // single word so the digest work stays small next to the
        // kernel work being measured.
        fold(digest, static_cast<std::uint64_t>(queue.now()) ^
                         (timer * kFnvPrime) ^ round ^ salt);
        queue.cancel(attestId[timer]); // Already fired: must be a no-op.
        if (retransmitId[timer] != 0)
            queue.cancel(retransmitId[timer]);
        KernelLeg *self = this;
        retransmitId[timer] = queue.scheduleAfter(
            kKernelRetransmit,
            [self, timer, round, salt] {
                fold(self->digest,
                     static_cast<std::uint64_t>(self->queue.now()) ^
                         (timer * kFnvPrime) ^ (0xdead0000ull + round) ^
                         salt);
            },
            "soak.kernel.retx");
        if (static_cast<int>(round) + 1 < rounds) {
            attestId[timer] = queue.scheduleAfter(
                kKernelPeriod,
                [self, timer, round, salt] {
                    self->fire(timer, round + 1, salt);
                },
                "soak.kernel.attest");
        }
    }
};

struct KernelLegResult
{
    double wallSeconds = 0;
    double eventsPerSec = 0;
    std::uint64_t executed = 0;
    std::uint64_t digest = 0;
    std::uint64_t tombstones = 0;
};

template <typename Queue>
KernelLegResult
runKernelLeg(std::uint64_t timers, int rounds)
{
    auto leg = std::make_unique<KernelLeg<Queue>>();
    leg->rounds = rounds;
    leg->attestId.assign(timers, 0);
    leg->retransmitId.assign(timers, 0);

    bench::WallTimer timer;
    KernelLeg<Queue> *self = leg.get();
    for (std::uint64_t i = 0; i < timers; ++i) {
        // The capture (pointer + three 64-bit values) is 32 bytes —
        // over std::function's inline limit, the shape of every real
        // timer in the codebase, and within InlineFunction<48>.
        const std::uint64_t salt = i * 0x9e3779b97f4a7c15ull;
        leg->attestId[i] = leg->queue.schedule(
            kKernelPeriod + jitterOf(i, kKernelJitter),
            [self, i, salt, rounds] {
                (void)rounds;
                self->fire(i, 0, salt);
            },
            "soak.kernel.attest");
    }
    leg->queue.runAll();

    KernelLegResult r;
    r.wallSeconds = timer.elapsedSeconds();
    r.executed = leg->queue.executed();
    r.eventsPerSec =
        r.wallSeconds > 0 ? static_cast<double>(r.executed) / r.wallSeconds
                          : 0;
    r.digest = leg->digest;
    if constexpr (std::is_same_v<Queue, bench::LegacyEventQueue>)
        r.tombstones = leg->queue.tombstones();
    return r;
}

// --- Leg 2: fleet soak -------------------------------------------------

constexpr SimTime kAttestPeriod = seconds(30);
constexpr SimTime kAttestJitter = seconds(10);
constexpr SimTime kRetransmitTimeout = msec(250);
constexpr SimTime kMeasureDelay = msec(5);
constexpr SimTime kWaveGap = msec(2);
constexpr std::uint64_t kWaveSize = 4096;
constexpr std::size_t kCompletionFlush = 2048;

constexpr std::uint16_t kJournalVmLaunched = 1;
constexpr std::uint16_t kJournalAttestDone = 2;

struct SoakResult
{
    std::uint64_t vms = 0;
    int rounds = 0;
    std::uint64_t servers = 0;
    std::uint64_t eventsExecuted = 0;
    std::uint64_t attests = 0;
    std::uint64_t retransmits = 0;
    double simMakespanSec = 0;
    double attestationsPerSimSec = 0;
    double wallSeconds = 0;
    double wallEventsPerSec = 0;
    std::uint64_t journalAppends = 0;
    std::uint64_t journalBatches = 0;
    std::uint64_t envelopeAllocs = 0;
    std::uint64_t envelopeReuses = 0;
    std::uint64_t bufferReuses = 0;
    std::uint64_t peakPending = 0;
    bool drained = false;
};

/**
 * The fleet under soak: one controller node and vms/128 server nodes
 * on the real fabric, the real cloud database, the real write-ahead
 * journal. The protocol bodies (RSA attestation, sealed channels) are
 * elided — this bench exists to saturate the event kernel and the
 * send-deliver/journal allocation paths, and at a million VMs the
 * crypto would dominate the clock without adding kernel load.
 */
class SoakFleet
{
  public:
    SoakFleet(std::uint64_t vmCount, int roundCount, int perServer)
        : fabric(events), store("soak-controller"), vms(vmCount),
          rounds(roundCount), vmsPerServer(perServer)
    {
        retransmitIds.assign(vms, 0);
        serverCount = (vms + vmsPerServer - 1) / vmsPerServer;
        fabric.registerNode(kController, [this](const net::Envelope &e) {
            onControllerDatagram(e);
        });
        for (std::uint64_t s = 0; s < serverCount; ++s) {
            controller::ServerRecord rec;
            rec.id = serverId(s);
            rec.totalRamMb = static_cast<std::uint64_t>(vmsPerServer) * 512;
            rec.totalDiskGb = static_cast<std::uint64_t>(vmsPerServer) * 2;
            db.addServer(std::move(rec));
            fabric.registerNode(serverId(s),
                                [this](const net::Envelope &e) {
                                    onServerDatagram(e);
                                });
        }
    }

    SoakResult
    run()
    {
        bench::WallTimer timer;
        events.schedule(0, [this] { launchWave(0); }, "soak.wave");
        events.runAll();

        SoakResult r;
        r.vms = vms;
        r.rounds = rounds;
        r.servers = serverCount;
        r.eventsExecuted = events.executed();
        r.attests = completions;
        r.retransmits = retransmitsFired;
        r.simMakespanSec = toSeconds(events.now());
        r.attestationsPerSimSec =
            r.simMakespanSec > 0 ? static_cast<double>(completions) /
                                       r.simMakespanSec
                                 : 0;
        r.wallSeconds = timer.elapsedSeconds();
        r.wallEventsPerSec =
            r.wallSeconds > 0
                ? static_cast<double>(r.eventsExecuted) / r.wallSeconds
                : 0;
        r.journalAppends = store.stats().appends;
        r.journalBatches = store.stats().appendBatches;
        r.envelopeAllocs = fabric.stats().envelopeAllocs;
        r.envelopeReuses = fabric.stats().envelopeReuses;
        r.bufferReuses = fabric.stats().bufferReuses;
        r.peakPending = events.slotCapacity();
        r.drained = events.pending() == 0 &&
                    completions ==
                        vms * static_cast<std::uint64_t>(rounds) &&
                    retransmitsFired == 0;
        return r;
    }

  private:
    static constexpr const char *kController = "soak-ctl";

    std::string serverId(std::uint64_t s) const
    {
        return "s" + std::to_string(s);
    }

    std::uint64_t serverOf(std::uint64_t vm) const
    {
        return vm / static_cast<std::uint64_t>(vmsPerServer);
    }

    void
    launchWave(std::uint64_t wave)
    {
        const std::uint64_t first = wave * kWaveSize;
        const std::uint64_t last = std::min(first + kWaveSize, vms);
        std::vector<Bytes> payloads;
        payloads.reserve(last - first);
        for (std::uint64_t vm = first; vm < last; ++vm) {
            controller::VmRecord rec;
            rec.vid = "v" + std::to_string(vm);
            rec.name = rec.vid;
            rec.customer = "soak-customer";
            rec.imageName = "cirros";
            rec.flavorName = "small";
            rec.imageSizeMb = 16;
            rec.vcpus = 1;
            rec.ramMb = 512;
            rec.diskGb = 2;
            rec.serverId = serverId(serverOf(vm));
            rec.status = controller::VmStatus::Running;
            rec.launchedAt = events.now();
            payloads.push_back(controller::encodeVmRecord(rec));
            db.allocate(rec.serverId, rec.ramMb, rec.diskGb);
            db.addVm(std::move(rec));
            events.schedule(
                events.now() + kAttestPeriod +
                    jitterOf(vm, kAttestJitter),
                [this, vm] { onAttestTimer(vm, 0); }, "soak.attest");
        }
        // One WAL batch and one group-commit fsync per launch wave.
        store.appendMany(kJournalVmLaunched, std::move(payloads));
        store.sync();
        if (last < vms) {
            events.scheduleAfter(kWaveGap,
                                 [this, wave] { launchWave(wave + 1); },
                                 "soak.wave");
        } else {
            // Boot storm over: checkpoint supersedes the launch journal.
            store.checkpoint(fleetSnapshot());
        }
    }

    void
    onAttestTimer(std::uint64_t vm, std::uint32_t round)
    {
        net::Envelope env;
        env.src = kController;
        env.dst = serverId(serverOf(vm));
        env.channel = "soak.attreq";
        env.seq = ++seq;
        env.payload = fabric.takeBuffer(16);
        putU64(env.payload, vm);
        putU64(env.payload, round);
        fabric.send(std::move(env));
        retransmitIds[vm] = events.scheduleAfter(
            kRetransmitTimeout,
            [this, vm, round] {
                (void)round;
                ++retransmitsFired;
                retransmitIds[vm] = 0;
            },
            "soak.retx");
    }

    void
    onServerDatagram(const net::Envelope &env)
    {
        const std::uint64_t vm = getU64(env.payload, 0);
        const std::uint64_t round = getU64(env.payload, 8);
        // Measurement latency on the attested server, then the report.
        events.scheduleAfter(
            kMeasureDelay,
            [this, vm, round] {
                net::Envelope resp;
                resp.src = serverId(serverOf(vm));
                resp.dst = kController;
                resp.channel = "soak.attrep";
                resp.seq = ++seq;
                resp.payload = fabric.takeBuffer(24);
                putU64(resp.payload, vm);
                putU64(resp.payload, round);
                putU64(resp.payload, 0x7); // Healthy measurement word.
                fabric.send(std::move(resp));
            },
            "soak.measure");
    }

    void
    onControllerDatagram(const net::Envelope &env)
    {
        const std::uint64_t vm = getU64(env.payload, 0);
        const auto round = static_cast<std::uint32_t>(
            getU64(env.payload, 8));
        events.cancel(retransmitIds[vm]);
        retransmitIds[vm] = 0;

        controller::VmRecord *rec = db.vm("v" + std::to_string(vm));
        if (rec != nullptr)
            rec->status = controller::VmStatus::Running;

        Bytes entry;
        entry.reserve(24);
        putU64(entry, vm);
        putU64(entry, round);
        putU64(entry, static_cast<std::uint64_t>(events.now()));
        completionJournal.push_back(std::move(entry));
        if (completionJournal.size() >= kCompletionFlush)
            flushCompletions();

        ++completions;
        if (completions % vms == 0) {
            // A full attestation round landed: flush and checkpoint so
            // the journal stays bounded across the soak.
            flushCompletions();
            store.checkpoint(fleetSnapshot());
        }
        if (static_cast<int>(round) + 1 < rounds) {
            events.scheduleAfter(kAttestPeriod,
                                 [this, vm, round] {
                                     onAttestTimer(vm, round + 1);
                                 },
                                 "soak.attest");
        }
    }

    void
    flushCompletions()
    {
        if (completionJournal.empty())
            return;
        store.appendMany(kJournalAttestDone, std::move(completionJournal));
        completionJournal.clear();
        store.sync();
    }

    Bytes
    fleetSnapshot() const
    {
        Bytes snap;
        putU64(snap, vms);
        putU64(snap, completions);
        putU64(snap, static_cast<std::uint64_t>(events.now()));
        return snap;
    }

    sim::EventQueue events; // Declared before fabric (teardown order).
    net::Network fabric;
    sim::StableStore store;
    controller::CloudDatabase db;
    std::vector<sim::EventId> retransmitIds;
    std::vector<Bytes> completionJournal;
    std::uint64_t vms;
    int rounds;
    int vmsPerServer;
    std::uint64_t serverCount = 0;
    std::uint64_t seq = 0;
    std::uint64_t completions = 0;
    std::uint64_t retransmitsFired = 0;
};

// --- Output ------------------------------------------------------------

bool
writeJson(const std::string &path, const SoakResult &soak,
          const KernelLegResult &legacy, const KernelLegResult &current,
          double speedup, bool traceMatch)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(
        f,
        "{\n"
        "  \"benchmark\": \"bench_soak\",\n"
        "  \"workload\": \"%llu VMs: batch-journaled launch waves + %d "
        "periodic attestation rounds over the real fabric/journal; "
        "kernel A/B on the identical timer workload\",\n"
        "  \"soak\": {\n"
        "    \"vms\": %llu,\n"
        "    \"rounds\": %d,\n"
        "    \"servers\": %llu,\n"
        "    \"events_executed\": %llu,\n"
        "    \"attests\": %llu,\n"
        "    \"retransmits\": %llu,\n"
        "    \"sim_makespan_sec\": %.6f,\n"
        "    \"attestations_per_sim_sec\": %.2f,\n"
        "    \"wall_seconds\": %.6f,\n"
        "    \"wall_events_per_sec\": %.0f,\n"
        "    \"peak_rss_kb\": %ld,\n"
        "    \"peak_pending_events\": %llu,\n"
        "    \"journal_appends\": %llu,\n"
        "    \"journal_batches\": %llu,\n"
        "    \"envelope_allocs\": %llu,\n"
        "    \"envelope_reuses\": %llu,\n"
        "    \"buffer_reuses\": %llu,\n"
        "    \"drained\": %s\n"
        "  },\n"
        "  \"kernel_ab\": {\n"
        "    \"events_per_leg\": %llu,\n"
        "    \"trace_match\": %s,\n"
        "    \"legacy_tombstones_leaked\": %llu,\n"
        "    \"before\": {\"engine\": \"priority_queue+tombstones\", "
        "\"wall_seconds\": %.6f, \"wall_events_per_sec\": %.0f},\n"
        "    \"after\": {\"engine\": \"flat-heap+inline-callbacks\", "
        "\"wall_seconds\": %.6f, \"wall_events_per_sec\": %.0f},\n"
        "    \"speedup\": %.3f\n"
        "  },\n"
        "  \"metadata\": %s\n"
        "}\n",
        static_cast<unsigned long long>(soak.vms), soak.rounds,
        static_cast<unsigned long long>(soak.vms), soak.rounds,
        static_cast<unsigned long long>(soak.servers),
        static_cast<unsigned long long>(soak.eventsExecuted),
        static_cast<unsigned long long>(soak.attests),
        static_cast<unsigned long long>(soak.retransmits),
        soak.simMakespanSec, soak.attestationsPerSimSec,
        soak.wallSeconds, soak.wallEventsPerSec, bench::peakRssKb(),
        static_cast<unsigned long long>(soak.peakPending),
        static_cast<unsigned long long>(soak.journalAppends),
        static_cast<unsigned long long>(soak.journalBatches),
        static_cast<unsigned long long>(soak.envelopeAllocs),
        static_cast<unsigned long long>(soak.envelopeReuses),
        static_cast<unsigned long long>(soak.bufferReuses),
        soak.drained ? "true" : "false",
        static_cast<unsigned long long>(legacy.executed),
        traceMatch ? "true" : "false",
        static_cast<unsigned long long>(legacy.tombstones),
        legacy.wallSeconds, legacy.eventsPerSec, current.wallSeconds,
        current.eventsPerSec, speedup, bench::metadataJson().c_str());
    std::fclose(f);
    return true;
}

} // namespace

int
main()
{
    const auto vms = static_cast<std::uint64_t>(
        envInt64("MONATT_SOAK_VMS", 1000000));
    const int rounds =
        static_cast<int>(envInt64("MONATT_SOAK_ROUNDS", 2));
    const double minSpeedup = envDouble("MONATT_SOAK_MIN_SPEEDUP", 2.0);
    const int vmsPerServer = 128;

    bench::banner(
        "Million-VM soak",
        "Event-kernel and allocation hot paths under a cloud-scale "
        "fleet: batch-journaled\nlaunch waves, periodic attestation "
        "rounds with retransmission timers, and a\nsame-binary kernel "
        "A/B against the pre-overhaul event queue.");

    std::printf("\nvms=%llu rounds=%d (MONATT_SOAK_VMS / "
                "MONATT_SOAK_ROUNDS)\n\n",
                static_cast<unsigned long long>(vms), rounds);

    // Kernel A/B first: identical workload, both kernels, one binary.
    std::printf("kernel A/B (%llu timers x %d rounds + retransmission "
                "churn)\n",
                static_cast<unsigned long long>(vms), rounds);
    const KernelLegResult legacy =
        runKernelLeg<bench::LegacyEventQueue>(vms, rounds);
    const KernelLegResult current =
        runKernelLeg<sim::EventQueue>(vms, rounds);
    const bool traceMatch = legacy.digest == current.digest &&
                            legacy.executed == current.executed;
    const double speedup =
        legacy.eventsPerSec > 0 && current.eventsPerSec > 0
            ? current.eventsPerSec / legacy.eventsPerSec
            : 0;

    bench::row("  legacy",
               {bench::fmt("%.3fs", legacy.wallSeconds),
                bench::fmt("%.0f ev/s", legacy.eventsPerSec)},
               18, 14);
    bench::row("  flat-heap",
               {bench::fmt("%.3fs", current.wallSeconds),
                bench::fmt("%.0f ev/s", current.eventsPerSec)},
               18, 14);
    std::printf("  trace digests %s (legacy %016llx, flat %016llx); "
                "legacy leaked %llu tombstones\n",
                traceMatch ? "MATCH" : "MISMATCH",
                static_cast<unsigned long long>(legacy.digest),
                static_cast<unsigned long long>(current.digest),
                static_cast<unsigned long long>(legacy.tombstones));
    std::printf("  speedup %.2fx (floor %.2fx)\n\n", speedup,
                minSpeedup);

    // Fleet soak on the production stack.
    std::printf("fleet soak (launch + %d attestation rounds)\n", rounds);
    SoakResult soak;
    {
        SoakFleet fleet(vms, rounds, vmsPerServer);
        soak = fleet.run();
    }
    bench::row("  events",
               {std::to_string(soak.eventsExecuted),
                bench::fmt("%.0f ev/s", soak.wallEventsPerSec)},
               18, 14);
    bench::row("  sim makespan",
               {bench::fmt("%.1fs", soak.simMakespanSec),
                bench::fmt("%.1f att/s", soak.attestationsPerSimSec)},
               18, 14);
    std::printf("  wall %.2fs, peak RSS %ld KiB, peak pending %llu, "
                "journal %llu records in %llu batches\n",
                soak.wallSeconds, bench::peakRssKb(),
                static_cast<unsigned long long>(soak.peakPending),
                static_cast<unsigned long long>(soak.journalAppends),
                static_cast<unsigned long long>(soak.journalBatches));
    std::printf("  envelope slab: %llu allocs, %llu reuses; drained: "
                "%s\n",
                static_cast<unsigned long long>(soak.envelopeAllocs),
                static_cast<unsigned long long>(soak.envelopeReuses),
                soak.drained ? "yes" : "NO");

    if (!writeJson("BENCH_soak.json", soak, legacy, current, speedup,
                   traceMatch))
        return 1;
    std::printf("\nwrote BENCH_soak.json\n");

    if (!soak.drained || !traceMatch)
        return 2;
    return speedup >= minSpeedup ? 0 : 2;
}
