/**
 * @file
 * The pre-overhaul event kernel, preserved verbatim (plus a
 * tombstone-count probe) for the soak bench's same-binary A/B leg.
 *
 * This is the `sim::EventQueue` as it stood before the flat-heap
 * rewrite: a `std::priority_queue` of fat Event structs (each carrying
 * a `std::function` that heap-allocates for captures over two
 * pointers), with cancellation via an `unordered_set` tombstone table
 * that events are lazily dropped against — and that grows forever when
 * an already-fired id is cancelled. bench_soak drives the identical
 * workload through this kernel and the production one and reports the
 * wall-clock events/sec ratio.
 *
 * Bench-only code: nothing outside bench/ may include this header.
 */

#ifndef MONATT_BENCH_LEGACY_EVENT_QUEUE_H
#define MONATT_BENCH_LEGACY_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "common/time_types.h"

namespace monatt::bench
{

/** Pre-overhaul deterministic discrete-event queue. */
class LegacyEventQueue
{
  public:
    using EventId = std::uint64_t;
    using Callback = std::function<void()>;

    SimTime now() const { return currentTime; }

    EventId
    schedule(SimTime when, Callback callback, const char *label = nullptr)
    {
        if (when < currentTime)
            throw std::invalid_argument(
                "LegacyEventQueue: scheduling in the past");
        const EventId id = nextId++;
        queue.push(Event{when, id, std::move(callback), label});
        ++livePending;
        return id;
    }

    EventId
    scheduleAfter(SimTime delay, Callback callback,
                  const char *label = nullptr)
    {
        return schedule(currentTime + delay, std::move(callback), label);
    }

    void cancel(EventId id) { cancelled.insert(id); }

    bool
    runOne()
    {
        if (!dropCancelledTop())
            return false;
        Event ev = queue.top();
        queue.pop();
        currentTime = ev.when;
        --livePending;
        ++executedCount;
        ev.callback();
        return true;
    }

    std::size_t
    runAll(std::size_t maxEvents = 100000000)
    {
        std::size_t n = 0;
        while (n < maxEvents && runOne())
            ++n;
        return n;
    }

    std::size_t
    run(SimTime until)
    {
        std::size_t n = 0;
        while (dropCancelledTop() && queue.top().when <= until) {
            if (runOne())
                ++n;
        }
        if (currentTime < until && until != kTimeNever)
            currentTime = until;
        return n;
    }

    void advance(SimTime delta) { run(currentTime + delta); }

    SimTime
    nextEventTime()
    {
        return dropCancelledTop() ? queue.top().when : kTimeNever;
    }

    std::size_t pending() const { return livePending; }
    std::size_t executed() const { return executedCount; }
    std::size_t tombstones() const { return cancelled.size(); }

  private:
    struct Event
    {
        SimTime when;
        EventId id;
        Callback callback;
        const char *label;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.id > b.id; // FIFO among equal timestamps.
        }
    };

    bool
    dropCancelledTop()
    {
        while (!queue.empty()) {
            if (!cancelled.erase(queue.top().id))
                return true;
            queue.pop();
            --livePending;
        }
        return false;
    }

    std::priority_queue<Event, std::vector<Event>, Later> queue;
    std::unordered_set<EventId> cancelled;
    SimTime currentTime = 0;
    EventId nextId = 1;
    std::size_t livePending = 0;
    std::size_t executedCount = 0;
};

} // namespace monatt::bench

#endif // MONATT_BENCH_LEGACY_EVENT_QUEUE_H
