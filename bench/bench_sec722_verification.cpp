/**
 * @file
 * §7.2.2 "Protocol Verification" — runs the Dolev-Yao symbolic
 * verification of the Figure-3 protocol: secrecy of the session and
 * identity keys and of P/M/R, integrity of P/M/R, and the three
 * pairwise authentication properties. Also validates the checker by
 * leaking secrets and confirming the matching properties break.
 */

#include <cstdio>

#include "bench_util.h"
#include "verif/protocol_model.h"

using namespace monatt;
using namespace monatt::verif;

int
main()
{
    bench::banner(
        "Section 7.2.2",
        "Symbolic (ProVerif-style) verification of the attestation "
        "protocol of Figure 3.");

    ProtocolModel model;
    const auto outcomes = model.verifyAll();

    std::printf("\nHonest protocol, Dolev-Yao network attacker:\n");
    bool allHold = true;
    for (const auto &o : outcomes) {
        std::printf("  [%s] %s\n", o.holds ? "PASS" : "FAIL",
                    o.property.c_str());
        allHold &= o.holds;
    }

    std::printf("\nChecker validation (deliberate leaks must break the "
                "matching properties):\n");
    struct LeakCase
    {
        LeakableSecret leak;
        const char *label;
        const char *expectBroken;
    };
    const LeakCase cases[] = {
        {LeakableSecret::SessionKeyKz, "leak Kz", "secrecy: Kz"},
        {LeakableSecret::ServerIdentityKey, "leak SKs",
         "secrecy: M (measurements)"},
        {LeakableSecret::AttestorIdentityKey, "leak SKa",
         "integrity: R at controller (forge [*]SKa)"},
        {LeakableSecret::SessionSigningKey, "leak ASKs",
         "integrity: M (forge [*]ASKs)"},
    };

    bool validationOk = true;
    for (const LeakCase &c : cases) {
        ProtocolModel leaky({c.leak});
        bool broke = false;
        for (const auto &o : leaky.verifyAll()) {
            if (o.property == c.expectBroken)
                broke = !o.holds;
        }
        std::printf("  [%s] %-10s breaks \"%s\"\n",
                    broke ? "PASS" : "FAIL", c.label, c.expectBroken);
        validationOk &= broke;
    }

    std::printf("\n%zu properties verified; attacker knowledge: %zu "
                "analyzed terms\n",
                outcomes.size(), model.attacker().knownTerms());
    std::printf("shape check: %s\n",
                allHold && validationOk ? "PASS" : "FAIL");
    return allHold && validationOk ? 0 : 1;
}
