/**
 * @file
 * Control-plane sharding throughput.
 *
 * The Cloud Controller is a finite-capacity node: each shard services
 * attestation traffic through a busy-cursor queue, so a concurrent
 * fan-out serializes behind one shard but spreads across many. This
 * bench sweeps shard count x deployment size over the same workload —
 * concurrent runtime attestations of every VM, two fan-out rounds —
 * and reports *simulated* attestation throughput: total attestations
 * divided by the simulated makespan of the fan-out. Host wall-clock is
 * recorded per cell for reference.
 *
 * Emits BENCH_shards.json: the sweep matrix, an A/B record (1 shard vs
 * 4 shards at the largest deployment; acceptance floor 2x), and the
 * run metadata block. Report digests are included per cell — cells
 * with equal shard count must agree bit-for-bit regardless of the
 * host's thread count.
 */

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/cloud.h"
#include "crypto/sha256.h"

using namespace monatt;
using namespace monatt::core;

namespace
{

struct Cell
{
    int shards = 0;
    int servers = 0;
    int attests = 0;
    double simMakespanSec = 0;
    double attestationsPerSimSec = 0;
    double wallSeconds = 0;
    std::string digest;
};

Cell
runCell(int shards, int servers, int vmsPerServer, int rounds,
        int fanout)
{
    CloudConfig cfg;
    cfg.numServers = servers;
    cfg.numAttestationServers = 2;
    cfg.seed = 20260806;
    cfg.cryptoBatchWindow = usec(200);
    cfg.controllerShards = shards;
    Cloud cloud(cfg);
    Customer &customer = cloud.addCustomer("bench-customer");

    std::vector<std::string> vids;
    for (int i = 0; i < servers * vmsPerServer; ++i) {
        auto vid = cloud.launchVm(customer, "vm-" + std::to_string(i),
                                  "cirros", "small",
                                  proto::allProperties());
        if (!vid.isOk())
            throw std::runtime_error(vid.errorMessage());
        vids.push_back(vid.take());
    }

    const std::vector<proto::SecurityProperty> props =
        proto::allProperties();

    // Warm-up round: AVK sessions and verification caches populated,
    // so the timed fan-outs measure steady-state service capacity.
    for (auto &r : cloud.attestMany(customer, vids, props)) {
        if (!r.isOk())
            throw std::runtime_error(r.errorMessage());
    }

    // Each VM is attested `fanout` times per round, all concurrently:
    // the control plane sees far more requests in flight than the
    // per-request pipeline latency can hide, so the makespan tracks
    // the controllers' aggregate service capacity.
    std::vector<std::string> many;
    for (int rep = 0; rep < fanout; ++rep)
        many.insert(many.end(), vids.begin(), vids.end());

    crypto::Sha256 digest;
    bench::WallTimer timer;
    const SimTime t0 = cloud.events().now();
    int attests = 0;
    for (int round = 0; round < rounds; ++round) {
        for (auto &r : cloud.attestMany(customer, many, props)) {
            if (!r.isOk())
                throw std::runtime_error(r.errorMessage());
            digest.update(r.value().report.encode());
            ++attests;
        }
    }

    Cell cell;
    cell.shards = shards;
    cell.servers = servers;
    cell.attests = attests;
    cell.simMakespanSec =
        static_cast<double>(cloud.events().now() - t0) / 1e6;
    cell.attestationsPerSimSec =
        cell.simMakespanSec > 0 ? attests / cell.simMakespanSec : 0;
    cell.wallSeconds = timer.elapsedSeconds();
    cell.digest = toHex(digest.digest());
    return cell;
}

bool
writeJson(const std::string &path, const std::vector<Cell> &cells,
          const Cell &before, const Cell &after, int rounds)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const double speedup =
        before.simMakespanSec > 0 && after.simMakespanSec > 0
            ? before.simMakespanSec / after.simMakespanSec
            : 0;
    std::fprintf(f,
                 "{\n"
                 "  \"benchmark\": \"bench_shards\",\n"
                 "  \"workload\": \"attestMany x%d rounds over every "
                 "VM, simulated makespan\",\n"
                 "  \"sweep\": [\n",
                 rounds);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell &c = cells[i];
        std::fprintf(f,
                     "    {\"shards\": %d, \"servers\": %d, "
                     "\"attests\": %d, \"sim_makespan_sec\": %.6f, "
                     "\"attestations_per_sim_sec\": %.2f, "
                     "\"wall_seconds\": %.6f, \"digest\": \"%s\"}%s\n",
                     c.shards, c.servers, c.attests, c.simMakespanSec,
                     c.attestationsPerSimSec, c.wallSeconds,
                     c.digest.c_str(),
                     i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"before\": {\"engine\": \"shards=1\", "
                 "\"servers\": %d, \"sim_makespan_sec\": %.6f},\n"
                 "  \"after\": {\"engine\": \"shards=4\", "
                 "\"servers\": %d, \"sim_makespan_sec\": %.6f},\n"
                 "  \"speedup\": %.3f,\n"
                 "  \"metadata\": %s\n"
                 "}\n",
                 before.servers, before.simMakespanSec, after.servers,
                 after.simMakespanSec, speedup,
                 bench::metadataJson().c_str());
    std::fclose(f);
    return true;
}

int
envInt(const char *name, int fallback)
{
    const char *v = std::getenv(name);
    return v != nullptr && *v != '\0' ? std::atoi(v) : fallback;
}

} // namespace

int
main()
{
    bench::banner(
        "Control-plane sharding",
        "Simulated attestation throughput as the controller splits "
        "into consistent-hash\nshards; each shard is a finite-capacity "
        "service queue, so a concurrent fan-out\nscales with the shard "
        "count.");

    const int rounds = envInt("MONATT_BENCH_ROUNDS", 2);
    const int vmsPerServer = 3;
    const int fanout = 3;
    const std::vector<int> shardCounts = {1, 2, 4, 8};
    const std::vector<int> serverCounts = {4, 8};

    std::vector<Cell> cells;
    std::printf("\n%-10s", "servers");
    for (int s : shardCounts)
        std::printf(" %11s", ("shards=" + std::to_string(s)).c_str());
    std::printf("   (attestations/sim-sec)\n");

    for (int servers : serverCounts) {
        std::vector<std::string> row;
        for (int shards : shardCounts) {
            Cell cell =
                runCell(shards, servers, vmsPerServer, rounds, fanout);
            row.push_back(
                bench::fmt("%.1f", cell.attestationsPerSimSec));
            cells.push_back(std::move(cell));
        }
        bench::row(std::to_string(servers), row, 10, 11);
    }

    const Cell *before = nullptr;
    const Cell *after = nullptr;
    for (const Cell &c : cells) {
        if (c.servers != serverCounts.back())
            continue;
        if (c.shards == 1)
            before = &c;
        if (c.shards == 4)
            after = &c;
    }
    if (before == nullptr || after == nullptr)
        return 1;

    const double speedup = after->simMakespanSec > 0
                               ? before->simMakespanSec /
                                     after->simMakespanSec
                               : 0;
    std::printf("\nspeedup at %d servers: %.2fx simulated makespan "
                "(shards=1 -> shards=4)\n",
                serverCounts.back(), speedup);
    std::printf("\nexpected shape: makespan shrinks roughly with the "
                "shard count until the\nper-request pipeline latency "
                "(measurement, signing, verification) dominates\n");

    if (!writeJson("BENCH_shards.json", cells, *before, *after, rounds))
        return 1;
    std::printf("wrote BENCH_shards.json\n");
    return speedup >= 2.0 ? 0 : 2;
}
