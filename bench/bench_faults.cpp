/**
 * @file
 * Reliability under injected faults: attestation success rate, p50/p99
 * end-to-end latency and retry/failover activity across a drop-rate
 * sweep (with a mid-protocol Attestation Server crash at the higher
 * rates), plus a clean-wire A/B leg showing the retry machinery costs
 * nothing when no faults occur.
 *
 * The paper's protocols assume a reliable fabric; this bench
 * characterizes the reliability layer this reproduction adds on top:
 * retransmission with exponential backoff, receive-side dedup, AS
 * failover and terminal verdicts (no request ever hangs).
 *
 * A third leg exercises the TCB-rollback response path: with a
 * minimum-TCB floor armed and the fault plane downgrading part of the
 * fleet, it reports detection latency (attestation issue to the
 * customer receiving a TcbRollback verdict) and how many completed
 * migrations each rolled-back host triggers. Both are simulated,
 * deterministic metrics, gated by scripts/check_bench_regression.py.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/cloud.h"
#include "sim/fault_plan.h"
#include "sim/rollback_faults.h"

using namespace monatt;
using namespace monatt::core;

namespace
{

struct SweepPoint
{
    double drop = 0;
    bool crash = false;
    std::size_t ok = 0;
    std::size_t settled = 0;
    std::size_t total = 0;
    double p50Ms = 0;
    double p99Ms = 0;
    std::uint64_t forwardRetries = 0;
    std::uint64_t failovers = 0;
    std::uint64_t unreachable = 0;
    double simSeconds = 0;
};

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0;
    std::sort(sorted.begin(), sorted.end());
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
}

CloudConfig
baseConfig(bool reliable)
{
    CloudConfig cfg;
    cfg.numServers = 4;
    cfg.numAttestationServers = 2;
    cfg.seed = 99173;
    cfg.cryptoBatchWindow = usec(200);
    if (!reliable)
        cfg.reliability = proto::ReliabilityModel{};
    return cfg;
}

/** Launch 5 VMs fault-free, then fan out `requests` attestations
 * under the given drop rate (and optional AS crash). */
SweepPoint
runSweepPoint(double drop, bool crash, int requests,
              bool reliable = true, bool installPlan = true)
{
    Cloud cloud(baseConfig(reliable));
    Customer &customer = cloud.addCustomer("bench-customer");

    std::vector<std::string> vids;
    for (int i = 0; i < 5; ++i) {
        auto vid = cloud.launchVm(customer, "vm-" + std::to_string(i),
                                  "cirros", "small",
                                  proto::allProperties());
        if (!vid.isOk())
            throw std::runtime_error(vid.errorMessage());
        vids.push_back(vid.take());
    }

    if (installPlan) {
        sim::FaultPlanConfig plan;
        plan.seed = 0xFA57;
        plan.faults.dropProbability = drop;
        plan.activeFrom = cloud.events().now();
        if (crash) {
            plan.crashes.push_back(sim::CrashEvent{
                "attestation-server", cloud.events().now() + msec(800),
                cloud.events().now() + seconds(12)});
        }
        cloud.installFaultPlan(plan);
    }

    std::vector<std::string> many;
    many.reserve(static_cast<std::size_t>(requests));
    for (int i = 0; i < requests; ++i)
        many.push_back(vids[static_cast<std::size_t>(i) % vids.size()]);

    const SimTime issuedAt = cloud.events().now();
    auto results = cloud.attestMany(customer, many,
                                    proto::allProperties(), seconds(600));

    SweepPoint point;
    point.drop = drop;
    point.crash = crash;
    point.total = results.size();
    std::vector<double> latenciesMs;
    for (auto &r : results) {
        if (r.isOk()) {
            ++point.ok;
            ++point.settled;
            latenciesMs.push_back(
                1e3 * toSeconds(r.value().receivedAt - issuedAt));
        } else {
            point.settled += r.errorMessage() != "attestation timed out";
        }
    }
    point.p50Ms = percentile(latenciesMs, 0.50);
    point.p99Ms = percentile(latenciesMs, 0.99);
    point.forwardRetries = cloud.controller().stats().forwardRetries;
    point.failovers = cloud.controller().stats().failovers;
    point.unreachable = cloud.controller().stats().attestationsUnreachable;
    point.simSeconds = toSeconds(cloud.events().now());
    return point;
}

/** Outcome of the TCB-rollback response leg. */
struct RollbackLeg
{
    std::size_t requests = 0;
    std::size_t flagged = 0;        //!< Reports carrying TcbRollback.
    std::size_t rolledServers = 0;  //!< Hosts the plan downgraded.
    std::size_t migrations = 0;     //!< Completed+succeeded migrations.
    std::uint64_t verdicts = 0;     //!< AS-side TcbRollback verdicts.
    double detectP50Ms = 0;
    double detectP99Ms = 0;
    double migrationsPerRollback = 0;
    double simSeconds = 0;
};

/**
 * Launch one VM per server under a minimum-TCB floor, roll back part
 * of the fleet, attest everything and let the controller migrate the
 * victims off the quarantined hosts.
 */
RollbackLeg
runRollbackLeg()
{
    CloudConfig cfg = baseConfig(/*reliable=*/true);
    cfg.numServers = 6;
    cfg.seed = 99174;
    cfg.minimumTcbVersion = 2;
    Cloud cloud(cfg);
    Customer &customer = cloud.addCustomer("bench-customer");

    std::vector<std::string> vids;
    for (int i = 0; i < cfg.numServers; ++i) {
        auto vid = cloud.launchVm(customer, "vm-" + std::to_string(i),
                                  "cirros", "small",
                                  proto::allProperties());
        if (!vid.isOk())
            throw std::runtime_error(vid.errorMessage());
        vids.push_back(vid.take());
    }

    sim::FaultPlanConfig plan;
    plan.seed = 0x7CBB;
    plan.rollback.rollbackProbability = 0.4;
    plan.rollback.rollbackVersion = 1;
    plan.activeFrom = cloud.events().now();
    cloud.installFaultPlan(plan);

    // The verdicts are a pure function of (plan seed, node id), so the
    // bench can count the downgraded hosts without peeking at state.
    RollbackLeg leg;
    const sim::RollbackFaultModel model(plan.seed, plan.rollback);
    for (int i = 1; i <= cfg.numServers; ++i)
        leg.rolledServers +=
            model.rollsBack("server-" + std::to_string(i));

    const SimTime issuedAt = cloud.events().now();
    auto results = cloud.attestMany(customer, vids,
                                    proto::allProperties(), seconds(600));
    leg.requests = results.size();
    std::vector<double> detectMs;
    for (auto &r : results) {
        if (!r.isOk())
            continue;
        bool rolled = false;
        for (const auto &pr : r.value().report.results)
            rolled |= pr.status == proto::HealthStatus::TcbRollback;
        if (rolled) {
            ++leg.flagged;
            detectMs.push_back(
                1e3 * toSeconds(r.value().receivedAt - issuedAt));
        }
    }
    leg.detectP50Ms = percentile(detectMs, 0.50);
    leg.detectP99Ms = percentile(detectMs, 0.99);

    // Drain the response plane: every flagged VM must finish its
    // forced migration off the quarantined host.
    cloud.runFor(seconds(60));
    for (const auto &rec : cloud.controller().responseLog())
        leg.migrations += rec.action == controller::ResponsePolicy::Migrate &&
                          rec.completed && rec.succeeded;
    for (std::size_t i = 0; i < cloud.numAttestationServers(); ++i)
        leg.verdicts += cloud.attestationServer(i).stats().tcbRollbackVerdicts;
    leg.migrationsPerRollback =
        leg.rolledServers > 0
            ? static_cast<double>(leg.migrations) /
                  static_cast<double>(leg.rolledServers)
            : 0;
    leg.simSeconds = toSeconds(cloud.events().now());
    return leg;
}

bool
writeFaultsJson(const std::string &path,
                const std::vector<SweepPoint> &sweep,
                const RollbackLeg &rollback, double wallReliable,
                double wallLegacy, double simReliable, double simLegacy)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(f, "{\n  \"benchmark\": \"faults\",\n  \"sweep\": [\n");
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const SweepPoint &p = sweep[i];
        std::fprintf(
            f,
            "    {\"drop\": %.2f, \"crash\": %s, \"requests\": %zu, "
            "\"ok\": %zu, \"settled\": %zu, \"success_rate\": %.4f, "
            "\"p50_ms\": %.3f, \"p99_ms\": %.3f, "
            "\"forward_retries\": %llu, \"failovers\": %llu, "
            "\"unreachable\": %llu}%s\n",
            p.drop, p.crash ? "true" : "false", p.total, p.ok, p.settled,
            p.total > 0
                ? static_cast<double>(p.ok) / static_cast<double>(p.total)
                : 0,
            p.p50Ms, p.p99Ms,
            static_cast<unsigned long long>(p.forwardRetries),
            static_cast<unsigned long long>(p.failovers),
            static_cast<unsigned long long>(p.unreachable),
            i + 1 < sweep.size() ? "," : "");
    }
    const double overhead =
        wallLegacy > 0 ? (wallReliable - wallLegacy) / wallLegacy : 0;
    std::fprintf(
        f,
        "  ],\n"
        "  \"rollback\": {\n"
        "    \"requests\": %zu, \"flagged\": %zu, "
        "\"rolled_servers\": %zu,\n"
        "    \"migrations_completed\": %zu, \"as_verdicts\": %llu,\n"
        "    \"sim_detect_p50_ms\": %.3f, \"sim_detect_p99_ms\": %.3f,\n"
        "    \"migrations_per_rollback\": %.4f,\n"
        "    \"sim_seconds\": %.6f\n"
        "  },\n"
        "  \"clean_wire_ab\": {\n",
        rollback.requests, rollback.flagged, rollback.rolledServers,
        rollback.migrations,
        static_cast<unsigned long long>(rollback.verdicts),
        rollback.detectP50Ms, rollback.detectP99Ms,
        rollback.migrationsPerRollback, rollback.simSeconds);
    std::fprintf(
        f,
        "    \"reliable\": {\"wall_seconds\": %.6f, \"sim_seconds\": "
        "%.6f},\n"
        "    \"legacy\": {\"wall_seconds\": %.6f, \"sim_seconds\": "
        "%.6f},\n"
        "    \"wall_overhead\": %.4f,\n"
        "    \"sim_time_identical\": %s\n"
        "  },\n"
        "  \"metadata\": %s\n"
        "}\n",
        wallReliable, simReliable, wallLegacy, simLegacy, overhead,
        simReliable == simLegacy ? "true" : "false",
        bench::metadataJson().c_str());
    std::fclose(f);
    return true;
}

} // namespace

int
main()
{
    bench::banner(
        "Reliability sweep",
        "Attestation success rate and latency under injected loss "
        "(50 concurrent requests,\n5 VMs, 2 AS clusters; AS crash + "
        "failover at drop >= 10%), plus the clean-wire\ncost of the "
        "retry machinery.");

    const int requests = 50;
    const std::vector<double> drops = {0.0, 0.01, 0.05, 0.1, 0.3};
    std::vector<SweepPoint> sweep;
    bench::row("drop", {"success", "p50 ms", "p99 ms", "retries",
                        "failovers", "unreach"},
               10, 10);
    bool shapeOk = true;
    for (const double drop : drops) {
        const bool crash = drop >= 0.1;
        SweepPoint p = runSweepPoint(drop, crash, requests);
        sweep.push_back(p);
        bench::row(
            bench::fmt("%.0f%%", 100 * drop) + (crash ? " +crash" : ""),
            {bench::fmt("%.0f%%",
                        100.0 * static_cast<double>(p.ok) /
                            static_cast<double>(p.total)),
             bench::fmt("%.1f", p.p50Ms), bench::fmt("%.1f", p.p99Ms),
             std::to_string(p.forwardRetries),
             std::to_string(p.failovers), std::to_string(p.unreachable)},
            10, 10);
        // Every request must reach a terminal verdict, and a clean
        // wire must lose nothing.
        shapeOk &= p.settled == p.total;
        if (drop == 0.0)
            shapeOk &= p.ok == p.total;
    }

    // TCB-rollback response leg: detection latency and migration
    // yield when part of the fleet boots downgraded firmware.
    std::printf("\nTCB rollback response (6 servers, 40%% rolled back, "
                "floor = 2):\n");
    const RollbackLeg rollback = runRollbackLeg();
    std::printf("  rolled-back hosts: %zu of 6, flagged reports: %zu/%zu, "
                "AS verdicts: %llu\n",
                rollback.rolledServers, rollback.flagged,
                rollback.requests,
                static_cast<unsigned long long>(rollback.verdicts));
    std::printf("  detection latency: p50 %.1f ms, p99 %.1f ms\n",
                rollback.detectP50Ms, rollback.detectP99Ms);
    std::printf("  completed migrations: %zu (%.2f per rolled host)\n",
                rollback.migrations, rollback.migrationsPerRollback);
    // The plan must actually roll hosts back, every victim must be
    // detected, and each quarantined host must shed its VMs.
    shapeOk &= rollback.rolledServers > 0;
    shapeOk &= rollback.flagged > 0;
    shapeOk &= rollback.verdicts > 0;
    shapeOk &= rollback.migrations >= rollback.flagged;

    // Clean-wire A/B: the reliability layer on an undisturbed fabric.
    // Every retry timer is schedule-then-cancel, so simulated time is
    // bit-identical; host wall time pays only the timer bookkeeping.
    std::printf("\nclean-wire A/B (drop = 0, no fault plan):\n");
    bench::WallTimer legacyTimer;
    const SweepPoint legacy =
        runSweepPoint(0.0, false, requests, /*reliable=*/false,
                      /*installPlan=*/false);
    const double wallLegacy = legacyTimer.elapsedSeconds();

    bench::WallTimer reliableTimer;
    const SweepPoint reliable =
        runSweepPoint(0.0, false, requests, /*reliable=*/true,
                      /*installPlan=*/false);
    const double wallReliable = reliableTimer.elapsedSeconds();

    std::printf("  legacy (no reliability layer): %.3f s wall, %.3f s "
                "simulated\n",
                wallLegacy, legacy.simSeconds);
    std::printf("  reliable (timers + dedup armed): %.3f s wall, %.3f s "
                "simulated\n",
                wallReliable, reliable.simSeconds);
    std::printf("  wall overhead: %.1f%%, simulated time identical: %s\n",
                wallLegacy > 0
                    ? 100.0 * (wallReliable - wallLegacy) / wallLegacy
                    : 0.0,
                legacy.simSeconds == reliable.simSeconds ? "yes" : "no");
    // The hard invariant is zero perturbation of the simulation: the
    // armed timers never fire on a clean wire. (Host wall-clock delta
    // is reported but too noisy for a hard gate on shared CI runners.)
    shapeOk &= legacy.simSeconds == reliable.simSeconds;
    shapeOk &= legacy.ok == reliable.ok;

    if (!writeFaultsJson("BENCH_faults.json", sweep, rollback,
                         wallReliable, wallLegacy, reliable.simSeconds,
                         legacy.simSeconds))
        std::printf("\n(could not write BENCH_faults.json)\n");
    else
        std::printf("\nwrote BENCH_faults.json\n");

    std::printf("shape check: %s\n", shapeOk ? "PASS" : "FAIL");
    return shapeOk ? 0 : 1;
}
