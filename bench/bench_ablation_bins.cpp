/**
 * @file
 * Ablation: covert-channel detection vs Trust Evidence Register count.
 *
 * §4.4.3: "We use 30 bins in our experiment, but a different number
 * can be used to save space or increase accuracy." This bench sweeps
 * the TER bank size and reports whether the detector still separates
 * the covert sender from the benign VM, and the hardware cost (number
 * of registers).
 */

#include <cstdio>

#include "attestation/interpreters.h"
#include "bench_util.h"
#include "common/stats.h"
#include "hypervisor/hypervisor.h"
#include "sim/event_queue.h"
#include "workloads/attacks.h"
#include "workloads/programs.h"

using namespace monatt;
using namespace monatt::workloads;

namespace
{

/** Collect raw usage-interval samples (ms) for covert vs benign. */
std::vector<double>
collectIntervals(bool covert, SimTime duration)
{
    sim::EventQueue events;
    hypervisor::HypervisorConfig cfg;
    cfg.numPCpus = 1;
    cfg.hypervisorCode = toBytes("xen");
    cfg.hostOsCode = toBytes("dom0");
    hypervisor::Hypervisor hv(events, cfg);
    Rng keyRng(8);
    tpm::TpmEmulator tpm(crypto::rsaGenerateKeyPair(256, keyRng));
    hv.boot(tpm);

    hypervisor::DomainId monitored = -1;
    if (covert) {
        const auto receiver = hv.createDomain("receiver", 1, 0,
                                              toBytes("r"));
        monitored = hv.createDomain("sender", 2, 0, toBytes("s"), 1024);
        hv.setBehavior(receiver, 0, std::make_unique<SpinnerProgram>());
        auto message = std::make_shared<CovertMessage>();
        Rng rng(0xdead);
        for (int i = 0; i < 100000; ++i)
            message->bits.push_back(rng.nextBool());
        installCovertSender(hv, monitored, message,
                            CovertChannelParams::detectPreset());
    } else {
        monitored = hv.createDomain("benign", 1, 0, toBytes("b"));
        const auto rival = hv.createDomain("rival", 1, 0, toBytes("v"));
        hv.setBehavior(monitored, 0, std::make_unique<SpinnerProgram>());
        hv.setBehavior(rival, 0, std::make_unique<SpinnerProgram>());
    }

    hv.profiler().startWindow(monitored, events.now());
    events.run(duration);
    hv.profiler().stopWindow(monitored, events.now());
    return hv.profiler().windowIntervals(monitored);
}

/** Re-bin samples into `bins` TERs and classify. */
bool
classify(const std::vector<double> &samples, std::size_t bins)
{
    Histogram h(0.0, 30.0, bins);
    for (double s : samples)
        h.add(s);
    std::vector<std::uint64_t> counts = h.counts();

    attestation::CovertChannelDetectorParams params;
    // Cluster separation is measured in ms (bin centers), so the
    // threshold is bin-count independent; keep defaults.
    attestation::CovertChannelInterpreter detector(params);
    return detector.looksCovert(counts);
}

} // namespace

int
main()
{
    bench::banner(
        "Ablation: TER bin count",
        "Covert-channel detector accuracy vs number of Trust Evidence "
        "Registers\n(paper uses 30; \"a different number can be used to "
        "save space or increase accuracy\").");

    const auto covertSamples = collectIntervals(true, seconds(20));
    const auto benignSamples = collectIntervals(false, seconds(20));

    std::printf("\n%8s %18s %18s %10s\n", "TERs", "covert flagged",
                "benign flagged", "correct");
    bool shapeOk = true;
    for (std::size_t bins : {4u, 6u, 10u, 15u, 20u, 30u, 45u, 60u}) {
        const bool covertFlag = classify(covertSamples, bins);
        const bool benignFlag = classify(benignSamples, bins);
        const bool correct = covertFlag && !benignFlag;
        std::printf("%8zu %18s %18s %10s\n", bins,
                    covertFlag ? "yes" : "no", benignFlag ? "yes" : "no",
                    correct ? "yes" : "NO");
        if (bins >= 10)
            shapeOk &= correct;
    }

    std::printf("\nexpected shape: detection robust at >=10 TERs; very "
                "coarse banks may merge the\ntwo peaks and lose the "
                "signal\n");
    std::printf("shape check: %s\n", shapeOk ? "PASS" : "FAIL");
    return shapeOk ? 0 : 1;
}
