/**
 * @file
 * Micro benchmarks of the crypto substrate (the Trust Module's Crypto
 * Engine). Backs the paper's claim that "the emulation of the Trust
 * Module has little impact on the system performance": all per-
 * attestation crypto costs are sub-millisecond to low-millisecond on
 * commodity hardware.
 */

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "crypto/aes.h"
#include "crypto/bignum.h"
#include "crypto/drbg.h"
#include "crypto/hmac.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"

using namespace monatt;
using namespace monatt::crypto;

namespace
{

const RsaKeyPair &
keyPair512()
{
    static const RsaKeyPair kp = [] {
        Rng rng(1);
        return rsaGenerateKeyPair(512, rng);
    }();
    return kp;
}

const RsaKeyPair &
keyPair1024()
{
    static const RsaKeyPair kp = [] {
        Rng rng(2);
        return rsaGenerateKeyPair(1024, rng);
    }();
    return kp;
}

void
BM_Sha256(benchmark::State &state)
{
    Rng rng(3);
    const Bytes data = rng.nextBytes(static_cast<std::size_t>(
        state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(Sha256::hash(data));
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void
BM_HmacSha256(benchmark::State &state)
{
    Rng rng(4);
    const Bytes key = rng.nextBytes(32);
    const Bytes data = rng.nextBytes(1024);
    for (auto _ : state)
        benchmark::DoNotOptimize(hmacSha256(key, data));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_HmacSha256);

void
BM_Aes128Ctr(benchmark::State &state)
{
    Rng rng(5);
    const Aes128 aes(rng.nextBytes(16));
    const Bytes nonce = rng.nextBytes(12);
    const Bytes data = rng.nextBytes(static_cast<std::size_t>(
        state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(aes.ctrTransform(nonce, data));
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_Aes128Ctr)->Arg(1024)->Arg(16384);

/** Full-width modular exponentiation operands: an RSA verify-shaped
 * workload (base and exponent as wide as the modulus — worst case for
 * the ladder; the e=65537 public path is far cheaper). */
struct ModExpOperands
{
    BigUint base, exp, mod;
};

ModExpOperands
modExpOperands(std::size_t bits)
{
    const RsaKeyPair &kp = bits == 512 ? keyPair512() : keyPair1024();
    ModExpOperands ops;
    ops.mod = kp.pub.n;
    ops.exp = kp.priv.d;
    Rng rng(7 + bits);
    ops.base = BigUint::fromBytes(rng.nextBytes(bits / 8)) % ops.mod;
    return ops;
}

void
BM_ModExpLegacy(benchmark::State &state)
{
    const ModExpOperands ops =
        modExpOperands(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(ops.base.modExpLegacy(ops.exp, ops.mod));
}
BENCHMARK(BM_ModExpLegacy)->Arg(512)->Arg(1024);

void
BM_ModExpMontgomery(benchmark::State &state)
{
    // Context construction inside the loop: the honest apples-to-apples
    // replacement for one legacy modExp call on a fresh modulus.
    const ModExpOperands ops =
        modExpOperands(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        const MontgomeryContext ctx(ops.mod);
        benchmark::DoNotOptimize(ops.base.modExp(ops.exp, ctx));
    }
}
BENCHMARK(BM_ModExpMontgomery)->Arg(512)->Arg(1024);

void
BM_ModExpMontgomeryCtxReuse(benchmark::State &state)
{
    // Precomputed context amortized across calls — the RSA hot path
    // (RsaPublicContext / RsaPrivateContext) runs in this regime.
    const ModExpOperands ops =
        modExpOperands(static_cast<std::size_t>(state.range(0)));
    const MontgomeryContext ctx(ops.mod);
    for (auto _ : state)
        benchmark::DoNotOptimize(ops.base.modExp(ops.exp, ctx));
}
BENCHMARK(BM_ModExpMontgomeryCtxReuse)->Arg(512)->Arg(1024);

void
BM_RsaSign(benchmark::State &state)
{
    const RsaKeyPair &kp =
        state.range(0) == 512 ? keyPair512() : keyPair1024();
    const Bytes msg = toBytes("attestation report payload");
    for (auto _ : state)
        benchmark::DoNotOptimize(rsaSign(kp.priv, msg));
}
BENCHMARK(BM_RsaSign)->Arg(512)->Arg(1024);

void
BM_RsaSignCtxReuse(benchmark::State &state)
{
    const RsaKeyPair &kp =
        state.range(0) == 512 ? keyPair512() : keyPair1024();
    const RsaPrivateContext ctx(kp.priv);
    const Bytes msg = toBytes("attestation report payload");
    for (auto _ : state)
        benchmark::DoNotOptimize(rsaSign(ctx, msg));
}
BENCHMARK(BM_RsaSignCtxReuse)->Arg(512)->Arg(1024);

void
BM_RsaVerify(benchmark::State &state)
{
    const RsaKeyPair &kp =
        state.range(0) == 512 ? keyPair512() : keyPair1024();
    const Bytes msg = toBytes("attestation report payload");
    const Bytes sig = rsaSign(kp.priv, msg);
    for (auto _ : state)
        benchmark::DoNotOptimize(rsaVerify(kp.pub, msg, sig));
}
BENCHMARK(BM_RsaVerify)->Arg(512)->Arg(1024);

void
BM_RsaKeygenAik(benchmark::State &state)
{
    // The per-session attestation key of §3.4.2 (the ablation bench
    // prices its simulated cost; this is the real computational cost).
    Rng rng(6);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            rsaGenerateKeyPair(static_cast<std::size_t>(state.range(0)),
                               rng));
    }
}
BENCHMARK(BM_RsaKeygenAik)->Arg(512)->Unit(benchmark::kMillisecond);

void
BM_HmacDrbg(benchmark::State &state)
{
    HmacDrbg drbg(toBytes("bench-seed"));
    for (auto _ : state)
        benchmark::DoNotOptimize(drbg.generate(32));
}
BENCHMARK(BM_HmacDrbg);

} // namespace

BENCHMARK_MAIN();
