/**
 * @file
 * Scalability of the deterministic compute plane.
 *
 * §3.2.3 argues CloudMonatt scales by sharding servers across
 * Attestation Servers; this bench measures the orthogonal host-side
 * axis: attestation throughput as the compute plane
 * (sim::WorkerPool) widens. For every deployment size the identical
 * workload — concurrent runtime attestations of one VM per server,
 * fanned out with Cloud::attestMany so AIK preparation, pCA
 * certification, quote signing, verification and report relay all
 * batch — runs at computeThreads ∈ {1, 2, 4, 8}. Simulated time is
 * invariant by construction; the figure of merit is host wall-clock
 * attestations/second.
 *
 * Emits BENCH_scalability.json: the full sweep matrix, an A/B record
 * (threads = 1 vs the widest setting at the largest deployment), the
 * run metadata block, and a determinism digest — the SHA-256 over all
 * verified report bytes, which must be identical across thread
 * counts.
 */

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/cloud.h"
#include "crypto/sha256.h"
#include "sim/worker_pool.h"

using namespace monatt;
using namespace monatt::core;

namespace
{

struct Cell
{
    int servers = 0;
    std::size_t threads = 0;
    double wallSeconds = 0;
    double attestationsPerSec = 0;
    std::string digest; //!< SHA-256 over all verified report bytes.
};

/**
 * One sweep cell: build a deployment, launch one VM per server, then
 * time `rounds` concurrent attestation fan-outs over every VM.
 */
Cell
runCell(int servers, std::size_t threads, int rounds)
{
    CloudConfig cfg;
    cfg.numServers = servers;
    cfg.computeThreads = threads;
    cfg.cryptoBatchWindow = usec(200);
    // Fresh AVK session per attestation: every round exercises the
    // whole batched pipeline — AIK keygen fan-out, pCA certification,
    // quote signing, chain + quote verification, report relay.
    cfg.aikReuseLimit = 1;
    Cloud cloud(cfg);
    Customer &customer = cloud.addCustomer("bench-customer");

    std::vector<std::string> vids;
    for (int s = 0; s < servers; ++s) {
        auto vid = cloud.launchVm(customer, "vm-" + std::to_string(s),
                                  "cirros", "small",
                                  proto::allProperties());
        if (!vid.isOk())
            throw std::runtime_error(vid.errorMessage());
        vids.push_back(vid.take());
    }

    const std::vector<proto::SecurityProperty> props =
        proto::allProperties();

    // Warm-up round: populates the AVK sessions and verification
    // caches so the timed region measures steady-state throughput.
    for (auto &r : cloud.attestMany(customer, vids, props)) {
        if (!r.isOk())
            throw std::runtime_error(r.errorMessage());
    }

    crypto::Sha256 digest;
    bench::WallTimer timer;
    for (int round = 0; round < rounds; ++round) {
        auto reports = cloud.attestMany(customer, vids, props);
        for (auto &r : reports) {
            if (!r.isOk())
                throw std::runtime_error(r.errorMessage());
            digest.update(r.value().report.encode());
        }
    }

    Cell cell;
    cell.servers = servers;
    cell.threads = sim::WorkerPool::global().threadCount();
    cell.wallSeconds = timer.elapsedSeconds();
    cell.attestationsPerSec =
        cell.wallSeconds > 0
            ? static_cast<double>(servers) * rounds / cell.wallSeconds
            : 0;
    cell.digest = toHex(digest.digest());
    return cell;
}

bool
writeJson(const std::string &path, const std::vector<Cell> &cells,
          const Cell &before, const Cell &after, int rounds,
          bool deterministic)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const double speedup = after.wallSeconds > 0
                               ? before.wallSeconds / after.wallSeconds
                               : 0;
    std::fprintf(f,
                 "{\n"
                 "  \"benchmark\": \"bench_scalability\",\n"
                 "  \"workload\": \"attestMany x%d rounds, one VM per "
                 "server, batch window 200us\",\n"
                 "  \"sweep\": [\n",
                 rounds);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell &c = cells[i];
        std::fprintf(f,
                     "    {\"servers\": %d, \"threads\": %zu, "
                     "\"wall_seconds\": %.6f, "
                     "\"attestations_per_sec\": %.2f, "
                     "\"digest\": \"%s\"}%s\n",
                     c.servers, c.threads, c.wallSeconds,
                     c.attestationsPerSec, c.digest.c_str(),
                     i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"before\": {\"engine\": \"threads=1\", "
                 "\"servers\": %d, \"wall_seconds\": %.6f},\n"
                 "  \"after\": {\"engine\": \"threads=%zu\", "
                 "\"servers\": %d, \"wall_seconds\": %.6f},\n"
                 "  \"speedup\": %.3f,\n"
                 "  \"deterministic\": %s,\n"
                 "  \"metadata\": %s\n"
                 "}\n",
                 before.servers, before.wallSeconds, after.threads,
                 after.servers, after.wallSeconds, speedup,
                 deterministic ? "true" : "false",
                 bench::metadataJson().c_str());
    std::fclose(f);
    return true;
}

int
envInt(const char *name, int fallback)
{
    const char *v = std::getenv(name);
    return v != nullptr && *v != '\0' ? std::atoi(v) : fallback;
}

} // namespace

int
main()
{
    bench::banner(
        "Compute-plane scalability",
        "Host throughput of concurrent attestations (attestMany) as "
        "the deterministic\nworker pool widens; simulated results are "
        "bit-identical at every thread count.");

    // MONATT_BENCH_ROUNDS shrinks the timed region for CI smoke runs.
    const int rounds = envInt("MONATT_BENCH_ROUNDS", 4);
    const std::vector<int> serverCounts = {1, 2, 4, 8};
    const std::vector<std::size_t> threadCounts = {1, 2, 4, 8};

    std::vector<Cell> cells;
    std::printf("\n%-10s", "servers");
    for (std::size_t t : threadCounts)
        std::printf(" %9s", ("t=" + std::to_string(t)).c_str());
    std::printf("   (attestations/sec)\n");

    bool deterministic = true;
    for (int servers : serverCounts) {
        std::vector<std::string> cellsRow;
        std::string rowDigest;
        for (std::size_t threads : threadCounts) {
            Cell cell = runCell(servers, threads, rounds);
            if (rowDigest.empty())
                rowDigest = cell.digest;
            else if (rowDigest != cell.digest)
                deterministic = false;
            cellsRow.push_back(bench::fmt("%.1f",
                                          cell.attestationsPerSec));
            cells.push_back(std::move(cell));
        }
        bench::row(std::to_string(servers), cellsRow, 10, 9);
    }

    // A/B record: serial vs widest pool at the largest deployment.
    const Cell *before = nullptr;
    const Cell *after = nullptr;
    for (const Cell &c : cells) {
        if (c.servers != serverCounts.back())
            continue;
        if (c.threads == 1)
            before = &c;
        after = &c;
    }
    if (before == nullptr || after == nullptr)
        return 1;

    std::printf("\ndeterminism: report digests %s across thread "
                "counts\n",
                deterministic ? "identical" : "DIVERGED");
    std::printf("speedup at %d servers: %.2fx (threads=1 -> "
                "threads=%zu)\n",
                serverCounts.back(),
                after->wallSeconds > 0
                    ? before->wallSeconds / after->wallSeconds
                    : 0,
                after->threads);
    std::printf("\nexpected shape: throughput grows with the thread "
                "count until the serial\nevent-loop fraction "
                "dominates; single-core hosts stay flat but still "
                "agree\nbit-for-bit with every other column\n");

    if (!writeJson("BENCH_scalability.json", cells, *before, *after,
                   rounds, deterministic))
        return 1;
    std::printf("wrote BENCH_scalability.json\n");
    return deterministic ? 0 : 2;
}
