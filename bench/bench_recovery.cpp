/**
 * @file
 * Durability-plane cost model: controller recovery latency as a
 * function of journal length and checkpoint cadence, plus a clean-wire
 * A/B leg showing the write-ahead journal costs zero simulated time
 * (and only bookkeeping wall time) when no crash ever happens.
 *
 * Two SLO sections ride on top:
 *  - "slo": one leg per CheckpointPolicy axis (count / size / age),
 *    each asserting the axis actually bounds what a recovery has to
 *    replay (records for the count axis, journal bytes for the size
 *    axis, checkpoint cadence for the age axis);
 *  - "storage_faults": recovery with the disk-failure model armed —
 *    bit-rot and torn writes corrupt the journal, verifying replay
 *    quarantines the damage instead of replaying it, and the
 *    controller still serves attestations afterwards.
 *
 * The sim-deterministic metrics (records_replayed,
 * records_quarantined) are gated by scripts/check_bench_regression.py;
 * wall_replay_ms is runner noise and only warns.
 *
 * The paper's control plane is implicitly always-up; this bench
 * characterizes the durability layer this reproduction adds on top:
 * journaled VmRecords/attest contexts, checkpointing, and synchronous
 * replay inside restartNode().
 */

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/cloud.h"

using namespace monatt;
using namespace monatt::core;

namespace
{

struct RecoveryPoint
{
    int attests = 0;
    std::size_t checkpointEvery = 0;
    std::size_t durableRecords = 0;
    std::size_t durableBytes = 0;
    std::uint64_t checkpoints = 0;
    std::uint64_t replayed = 0;
    double recoveryMs = 0;
    bool intact = false;
};

CloudConfig
baseConfig(sim::CheckpointPolicyConfig policy, bool durable = true)
{
    CloudConfig cfg;
    cfg.numServers = 4;
    cfg.numAttestationServers = 2;
    cfg.seed = 424242;
    cfg.cryptoBatchWindow = usec(200);
    cfg.durableControlPlane = durable;
    cfg.checkpointPolicy = policy;
    return cfg;
}

sim::CheckpointPolicyConfig
countPolicy(std::size_t everyRecords)
{
    sim::CheckpointPolicyConfig policy;
    policy.everyRecords = everyRecords;
    return policy;
}

/** Launch 4 VMs and run `attests` fault-free attestations. */
std::vector<std::string>
runWorkload(Cloud &cloud, Customer &customer, int attests)
{
    std::vector<std::string> vids;
    for (int i = 0; i < 4; ++i) {
        auto vid = cloud.launchVm(customer, "vm-" + std::to_string(i),
                                  "cirros", "small",
                                  proto::allProperties());
        if (!vid.isOk())
            throw std::runtime_error(vid.errorMessage());
        vids.push_back(vid.take());
    }
    std::vector<std::string> many;
    many.reserve(static_cast<std::size_t>(attests));
    for (int i = 0; i < attests; ++i)
        many.push_back(vids[static_cast<std::size_t>(i) % vids.size()]);
    for (auto &r : cloud.attestMany(customer, many,
                                    proto::allProperties(), seconds(600)))
        if (!r.isOk())
            throw std::runtime_error(r.errorMessage());
    return vids;
}

/** Workload, crash the controller, and time the synchronous journal
 * replay on restart. */
RecoveryPoint
runRecoveryPoint(int attests, std::size_t checkpointEvery)
{
    Cloud cloud(baseConfig(countPolicy(checkpointEvery)));
    Customer &customer = cloud.addCustomer("bench-customer");
    const std::vector<std::string> vids =
        runWorkload(cloud, customer, attests);

    RecoveryPoint point;
    point.attests = attests;
    point.checkpointEvery = checkpointEvery;
    const sim::StableStore &store = cloud.controller().stableStore();
    point.durableRecords = store.durableRecords();
    point.durableBytes = store.durableBytes();
    point.checkpoints = store.stats().checkpoints;

    cloud.crashNode("cloud-controller");
    cloud.runFor(seconds(1));

    bench::WallTimer timer;
    cloud.restartNode("cloud-controller");
    point.recoveryMs = 1e3 * timer.elapsedSeconds();

    point.replayed = store.stats().recordsReplayed;
    point.intact = cloud.controller().stats().recoveries == 1;
    for (const std::string &vid : vids)
        point.intact &= cloud.controller().database().vm(vid) != nullptr;
    return point;
}

/** One CheckpointPolicy axis exercised to its SLO. */
struct PolicySlo
{
    std::string name;
    std::size_t recordsAtCrash = 0;
    std::size_t journalBytesAtCrash = 0;
    std::uint64_t checkpoints = 0;
    std::uint64_t replayed = 0;
    double replayMs = 0;
    bool met = false;
};

PolicySlo
runPolicyLeg(const std::string &name, sim::CheckpointPolicyConfig policy,
             int attests)
{
    Cloud cloud(baseConfig(policy));
    Customer &customer = cloud.addCustomer("bench-customer");
    runWorkload(cloud, customer, attests);

    PolicySlo leg;
    leg.name = name;
    const sim::StableStore &store = cloud.controller().stableStore();
    leg.recordsAtCrash = store.durableRecords();
    leg.journalBytesAtCrash = store.journalBytes();
    leg.checkpoints = store.stats().checkpoints;

    cloud.crashNode("cloud-controller");
    cloud.runFor(seconds(1));
    bench::WallTimer timer;
    cloud.restartNode("cloud-controller");
    leg.replayMs = 1e3 * timer.elapsedSeconds();
    leg.replayed = store.stats().recordsReplayed;

    // The axis's SLO. Triggers are evaluated at handler commit
    // points, so one handler's batch may overshoot the threshold;
    // 2x is the generous-but-real bound the policy guarantees here.
    if (policy.everyRecords > 0)
        leg.met = leg.replayed <= 2 * policy.everyRecords;
    else if (policy.everyBytes > 0)
        leg.met = leg.journalBytesAtCrash <= 2 * policy.everyBytes;
    else
        leg.met = leg.checkpoints >= 1; // age axis kept compacting
    return leg;
}

/** Recovery with the disk-failure model armed. */
struct StorageFaultLeg
{
    std::uint64_t rotted = 0;
    std::uint64_t tornPersisted = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t truncated = 0;
    std::uint64_t replayed = 0;
    std::uint64_t corruptRecoveries = 0;
    double replayMs = 0;
    bool servesAfterRecovery = false;
};

StorageFaultLeg
runStorageFaultLeg()
{
    Cloud cloud(baseConfig(countPolicy(64)));
    // Disk-side faults only: bit-rot dominates here because the
    // bench crashes the controller from outside an event handler,
    // where the page-cache tail is already synced. The VM records
    // live in the sealed snapshot (cadence 64), so recovery heals
    // the rotted journal tail and keeps serving.
    sim::FaultPlanConfig plan;
    plan.seed = 20260808;
    plan.storage.bitRotProbability = 0.05;
    plan.storage.tornTailPersistProbability = 0.5;
    plan.storage.halfWriteProbability = 0.5;
    plan.storage.reorderPersistProbability = 0.1;
    cloud.installFaultPlan(plan);

    Customer &customer = cloud.addCustomer("bench-customer");
    const std::vector<std::string> vids =
        runWorkload(cloud, customer, 32);

    cloud.crashNode("cloud-controller");
    cloud.runFor(seconds(1));
    bench::WallTimer timer;
    cloud.restartNode("cloud-controller");

    StorageFaultLeg leg;
    leg.replayMs = 1e3 * timer.elapsedSeconds();
    const sim::StableStoreStats &stats =
        cloud.controller().stableStore().stats();
    leg.rotted = stats.recordsRotted;
    leg.tornPersisted = stats.recordsTornPersisted;
    leg.quarantined = stats.recordsQuarantined;
    leg.truncated = stats.recordsTruncated;
    leg.replayed = stats.recordsReplayed;
    leg.corruptRecoveries = cloud.controller().stats().corruptRecoveries;

    // The recovered controller must still serve: an attestation of a
    // snapshot-covered VM completes end to end. The first request
    // after the outage may terminally fail Unreachable while the
    // customer's stale secure channel exhausts its retries and
    // resets (the documented healing path), so allow one warm-up.
    for (int attempt = 0; attempt < 2 && !leg.servesAfterRecovery;
         ++attempt)
    {
        auto verdicts = cloud.attestMany(
            customer, {vids[0]}, proto::allProperties(), seconds(600));
        leg.servesAfterRecovery =
            verdicts.size() == 1 && verdicts[0].isOk();
    }
    return leg;
}

struct CleanLeg
{
    double wallSeconds = 0;
    double simSeconds = 0;
    std::size_t reports = 0;
};

/** The fault-free workload with the journal armed or disarmed. */
CleanLeg
runCleanLeg(bool durable, int attests)
{
    Cloud cloud(baseConfig(countPolicy(512), durable));
    Customer &customer = cloud.addCustomer("bench-customer");
    runWorkload(cloud, customer, attests);

    CleanLeg leg;
    leg.simSeconds = toSeconds(cloud.events().now());
    leg.reports = customer.reports().size();
    return leg;
}

bool
writeRecoveryJson(const std::string &path,
                  const std::vector<RecoveryPoint> &sweep,
                  const std::vector<PolicySlo> &slos,
                  const StorageFaultLeg &storage, const CleanLeg &durable,
                  const CleanLeg &volatileOnly)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(f,
                 "{\n  \"benchmark\": \"recovery\",\n  \"sweep\": [\n");
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const RecoveryPoint &p = sweep[i];
        std::fprintf(
            f,
            "    {\"attests\": %d, \"checkpoint_every\": %zu, "
            "\"durable_records\": %zu, \"durable_bytes\": %zu, "
            "\"checkpoints\": %llu, \"records_replayed\": %llu, "
            "\"recovery_ms\": %.3f, \"intact\": %s}%s\n",
            p.attests, p.checkpointEvery, p.durableRecords,
            p.durableBytes, static_cast<unsigned long long>(p.checkpoints),
            static_cast<unsigned long long>(p.replayed), p.recoveryMs,
            p.intact ? "true" : "false",
            i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"slo\": [\n");
    for (std::size_t i = 0; i < slos.size(); ++i) {
        const PolicySlo &s = slos[i];
        std::fprintf(
            f,
            "    {\"policy\": \"%s\", \"records_at_crash\": %zu, "
            "\"journal_bytes_at_crash\": %zu, \"checkpoints\": %llu, "
            "\"records_replayed\": %llu, \"wall_replay_ms\": %.3f, "
            "\"met\": %s}%s\n",
            s.name.c_str(), s.recordsAtCrash, s.journalBytesAtCrash,
            static_cast<unsigned long long>(s.checkpoints),
            static_cast<unsigned long long>(s.replayed), s.replayMs,
            s.met ? "true" : "false", i + 1 < slos.size() ? "," : "");
    }
    std::fprintf(
        f,
        "  ],\n"
        "  \"storage_faults\": {\n"
        "    \"records_rotted\": %llu,\n"
        "    \"records_torn_persisted\": %llu,\n"
        "    \"records_quarantined\": %llu,\n"
        "    \"records_truncated\": %llu,\n"
        "    \"records_replayed\": %llu,\n"
        "    \"corrupt_recoveries\": %llu,\n"
        "    \"wall_replay_ms\": %.3f,\n"
        "    \"serves_after_recovery\": %s\n"
        "  },\n",
        static_cast<unsigned long long>(storage.rotted),
        static_cast<unsigned long long>(storage.tornPersisted),
        static_cast<unsigned long long>(storage.quarantined),
        static_cast<unsigned long long>(storage.truncated),
        static_cast<unsigned long long>(storage.replayed),
        static_cast<unsigned long long>(storage.corruptRecoveries),
        storage.replayMs,
        storage.servesAfterRecovery ? "true" : "false");
    const double overhead =
        volatileOnly.wallSeconds > 0
            ? (durable.wallSeconds - volatileOnly.wallSeconds) /
                  volatileOnly.wallSeconds
            : 0;
    std::fprintf(
        f,
        "  \"clean_wire_ab\": {\n"
        "    \"durable\": {\"wall_seconds\": %.6f, \"sim_seconds\": "
        "%.6f, \"reports\": %zu},\n"
        "    \"volatile\": {\"wall_seconds\": %.6f, \"sim_seconds\": "
        "%.6f, \"reports\": %zu},\n"
        "    \"wall_overhead\": %.4f,\n"
        "    \"sim_time_identical\": %s\n"
        "  },\n"
        "  \"metadata\": %s\n"
        "}\n",
        durable.wallSeconds, durable.simSeconds, durable.reports,
        volatileOnly.wallSeconds, volatileOnly.simSeconds,
        volatileOnly.reports, overhead,
        durable.simSeconds == volatileOnly.simSeconds ? "true" : "false",
        bench::metadataJson().c_str());
    std::fclose(f);
    return true;
}

} // namespace

int
main()
{
    bench::banner(
        "Control-plane recovery",
        "Controller crash/replay latency vs journal length and "
        "checkpoint cadence\n(4 VMs, 2 AS clusters, fault-free "
        "attestation fan-out before the crash), plus\ncheckpoint-policy "
        "SLOs, recovery under disk faults, and the clean-wire\ncost of "
        "the write-ahead journal.");

    std::vector<RecoveryPoint> sweep;
    bench::row("workload", {"ckpt every", "records", "bytes", "replayed",
                            "recover ms", "intact"},
               12, 10);
    bool shapeOk = true;
    for (const int attests : {8, 32, 128}) {
        for (const std::size_t cadence : {std::size_t{64},
                                          std::size_t{4096}}) {
            RecoveryPoint p = runRecoveryPoint(attests, cadence);
            sweep.push_back(p);
            bench::row(std::to_string(attests) + " attests",
                       {std::to_string(p.checkpointEvery),
                        std::to_string(p.durableRecords),
                        std::to_string(p.durableBytes),
                        std::to_string(p.replayed),
                        bench::fmt("%.3f", p.recoveryMs),
                        p.intact ? "yes" : "NO"},
                       12, 10);
            shapeOk &= p.intact;
        }
    }

    // Checkpoint-policy SLO legs: one per trigger axis.
    std::printf("\ncheckpoint-policy SLOs (32 attests):\n");
    bench::row("policy", {"records", "bytes", "ckpts", "replayed",
                          "replay ms", "met"},
               12, 10);
    std::vector<PolicySlo> slos;
    {
        sim::CheckpointPolicyConfig bySize;
        bySize.everyRecords = 0;
        bySize.everyBytes = 16384;
        sim::CheckpointPolicyConfig byAge;
        byAge.everyRecords = 0;
        byAge.maxAge = seconds(5);
        slos.push_back(runPolicyLeg("count-64", countPolicy(64), 32));
        slos.push_back(runPolicyLeg("bytes-16k", bySize, 32));
        slos.push_back(runPolicyLeg("age-5s", byAge, 32));
    }
    for (const PolicySlo &s : slos) {
        bench::row(s.name,
                   {std::to_string(s.recordsAtCrash),
                    std::to_string(s.journalBytesAtCrash),
                    std::to_string(s.checkpoints),
                    std::to_string(s.replayed),
                    bench::fmt("%.3f", s.replayMs),
                    s.met ? "yes" : "NO"},
                   12, 10);
        shapeOk &= s.met;
    }

    // Recovery with a faulty disk: verified replay quarantines the
    // rot and the controller keeps serving.
    const StorageFaultLeg storage = runStorageFaultLeg();
    std::printf("\nstorage-fault recovery (5%% bit-rot, 32 attests):\n"
                "  rotted %llu, quarantined %llu, truncated %llu, "
                "replayed %llu,\n  corrupt recoveries %llu, replay "
                "%.3f ms, serves after recovery: %s\n",
                static_cast<unsigned long long>(storage.rotted),
                static_cast<unsigned long long>(storage.quarantined),
                static_cast<unsigned long long>(storage.truncated),
                static_cast<unsigned long long>(storage.replayed),
                static_cast<unsigned long long>(storage.corruptRecoveries),
                storage.replayMs,
                storage.servesAfterRecovery ? "yes" : "NO");
    shapeOk &= storage.servesAfterRecovery;

    // Clean-wire A/B: journaling on an undisturbed run. Appends cost
    // zero simulated time, so the trace must be bit-identical; wall
    // time pays only the serialization bookkeeping.
    std::printf("\nclean-wire A/B (no crash, 50 attestations):\n");
    bench::WallTimer volatileTimer;
    CleanLeg volatileOnly = runCleanLeg(/*durable=*/false, 50);
    volatileOnly.wallSeconds = volatileTimer.elapsedSeconds();

    bench::WallTimer durableTimer;
    CleanLeg durable = runCleanLeg(/*durable=*/true, 50);
    durable.wallSeconds = durableTimer.elapsedSeconds();

    std::printf("  volatile (journal disarmed): %.3f s wall, %.3f s "
                "simulated, %zu reports\n",
                volatileOnly.wallSeconds, volatileOnly.simSeconds,
                volatileOnly.reports);
    std::printf("  durable  (journal armed):    %.3f s wall, %.3f s "
                "simulated, %zu reports\n",
                durable.wallSeconds, durable.simSeconds, durable.reports);
    std::printf("  wall overhead: %.1f%%, simulated time identical: %s\n",
                volatileOnly.wallSeconds > 0
                    ? 100.0 *
                          (durable.wallSeconds - volatileOnly.wallSeconds) /
                          volatileOnly.wallSeconds
                    : 0.0,
                durable.simSeconds == volatileOnly.simSeconds ? "yes"
                                                              : "no");
    // Hard invariants: zero perturbation of the simulation and no
    // change in delivered reports. (Wall-clock delta is reported but
    // not gated — shared CI runners are too noisy.)
    shapeOk &= durable.simSeconds == volatileOnly.simSeconds;
    shapeOk &= durable.reports == volatileOnly.reports;

    if (!writeRecoveryJson("BENCH_recovery.json", sweep, slos, storage,
                           durable, volatileOnly))
        std::printf("\n(could not write BENCH_recovery.json)\n");
    else
        std::printf("\nwrote BENCH_recovery.json\n");

    std::printf("shape check: %s\n", shapeOk ? "PASS" : "FAIL");
    return shapeOk ? 0 : 1;
}
