/**
 * @file
 * Durability-plane cost model: controller recovery latency as a
 * function of journal length and checkpoint cadence, plus a clean-wire
 * A/B leg showing the write-ahead journal costs zero simulated time
 * (and only bookkeeping wall time) when no crash ever happens.
 *
 * The paper's control plane is implicitly always-up; this bench
 * characterizes the durability layer this reproduction adds on top:
 * journaled VmRecords/attest contexts, checkpointing, and synchronous
 * replay inside restartNode().
 */

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/cloud.h"

using namespace monatt;
using namespace monatt::core;

namespace
{

struct RecoveryPoint
{
    int attests = 0;
    std::size_t checkpointEvery = 0;
    std::size_t durableRecords = 0;
    std::size_t durableBytes = 0;
    std::uint64_t checkpoints = 0;
    std::uint64_t replayed = 0;
    double recoveryMs = 0;
    bool intact = false;
};

CloudConfig
baseConfig(std::size_t checkpointEvery, bool durable = true)
{
    CloudConfig cfg;
    cfg.numServers = 4;
    cfg.numAttestationServers = 2;
    cfg.seed = 424242;
    cfg.cryptoBatchWindow = usec(200);
    cfg.durableControlPlane = durable;
    cfg.checkpointEveryRecords = checkpointEvery;
    return cfg;
}

/** Launch 4 VMs, run `attests` fault-free attestations, crash the
 * controller, and time the synchronous journal replay on restart. */
RecoveryPoint
runRecoveryPoint(int attests, std::size_t checkpointEvery)
{
    Cloud cloud(baseConfig(checkpointEvery));
    Customer &customer = cloud.addCustomer("bench-customer");

    std::vector<std::string> vids;
    for (int i = 0; i < 4; ++i) {
        auto vid = cloud.launchVm(customer, "vm-" + std::to_string(i),
                                  "cirros", "small",
                                  proto::allProperties());
        if (!vid.isOk())
            throw std::runtime_error(vid.errorMessage());
        vids.push_back(vid.take());
    }

    std::vector<std::string> many;
    many.reserve(static_cast<std::size_t>(attests));
    for (int i = 0; i < attests; ++i)
        many.push_back(vids[static_cast<std::size_t>(i) % vids.size()]);
    for (auto &r : cloud.attestMany(customer, many,
                                    proto::allProperties(), seconds(600)))
        if (!r.isOk())
            throw std::runtime_error(r.errorMessage());

    RecoveryPoint point;
    point.attests = attests;
    point.checkpointEvery = checkpointEvery;
    const sim::StableStore &store = cloud.controller().stableStore();
    point.durableRecords = store.durableRecords();
    point.durableBytes = store.durableBytes();
    point.checkpoints = store.stats().checkpoints;

    cloud.crashNode("cloud-controller");
    cloud.runFor(seconds(1));

    bench::WallTimer timer;
    cloud.restartNode("cloud-controller");
    point.recoveryMs = 1e3 * timer.elapsedSeconds();

    point.replayed = store.stats().recordsReplayed;
    point.intact = cloud.controller().stats().recoveries == 1;
    for (const std::string &vid : vids)
        point.intact &= cloud.controller().database().vm(vid) != nullptr;
    return point;
}

struct CleanLeg
{
    double wallSeconds = 0;
    double simSeconds = 0;
    std::size_t reports = 0;
};

/** The fault-free workload with the journal armed or disarmed. */
CleanLeg
runCleanLeg(bool durable, int attests)
{
    Cloud cloud(baseConfig(512, durable));
    Customer &customer = cloud.addCustomer("bench-customer");

    std::vector<std::string> vids;
    for (int i = 0; i < 4; ++i) {
        auto vid = cloud.launchVm(customer, "vm-" + std::to_string(i),
                                  "cirros", "small",
                                  proto::allProperties());
        if (!vid.isOk())
            throw std::runtime_error(vid.errorMessage());
        vids.push_back(vid.take());
    }
    std::vector<std::string> many;
    many.reserve(static_cast<std::size_t>(attests));
    for (int i = 0; i < attests; ++i)
        many.push_back(vids[static_cast<std::size_t>(i) % vids.size()]);
    for (auto &r : cloud.attestMany(customer, many,
                                    proto::allProperties(), seconds(600)))
        if (!r.isOk())
            throw std::runtime_error(r.errorMessage());

    CleanLeg leg;
    leg.simSeconds = toSeconds(cloud.events().now());
    leg.reports = customer.reports().size();
    return leg;
}

bool
writeRecoveryJson(const std::string &path,
                  const std::vector<RecoveryPoint> &sweep,
                  const CleanLeg &durable, const CleanLeg &volatileOnly)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(f,
                 "{\n  \"benchmark\": \"recovery\",\n  \"sweep\": [\n");
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const RecoveryPoint &p = sweep[i];
        std::fprintf(
            f,
            "    {\"attests\": %d, \"checkpoint_every\": %zu, "
            "\"durable_records\": %zu, \"durable_bytes\": %zu, "
            "\"checkpoints\": %llu, \"records_replayed\": %llu, "
            "\"recovery_ms\": %.3f, \"intact\": %s}%s\n",
            p.attests, p.checkpointEvery, p.durableRecords,
            p.durableBytes, static_cast<unsigned long long>(p.checkpoints),
            static_cast<unsigned long long>(p.replayed), p.recoveryMs,
            p.intact ? "true" : "false",
            i + 1 < sweep.size() ? "," : "");
    }
    const double overhead =
        volatileOnly.wallSeconds > 0
            ? (durable.wallSeconds - volatileOnly.wallSeconds) /
                  volatileOnly.wallSeconds
            : 0;
    std::fprintf(
        f,
        "  ],\n"
        "  \"clean_wire_ab\": {\n"
        "    \"durable\": {\"wall_seconds\": %.6f, \"sim_seconds\": "
        "%.6f, \"reports\": %zu},\n"
        "    \"volatile\": {\"wall_seconds\": %.6f, \"sim_seconds\": "
        "%.6f, \"reports\": %zu},\n"
        "    \"wall_overhead\": %.4f,\n"
        "    \"sim_time_identical\": %s\n"
        "  },\n"
        "  \"metadata\": %s\n"
        "}\n",
        durable.wallSeconds, durable.simSeconds, durable.reports,
        volatileOnly.wallSeconds, volatileOnly.simSeconds,
        volatileOnly.reports, overhead,
        durable.simSeconds == volatileOnly.simSeconds ? "true" : "false",
        bench::metadataJson().c_str());
    std::fclose(f);
    return true;
}

} // namespace

int
main()
{
    bench::banner(
        "Control-plane recovery",
        "Controller crash/replay latency vs journal length and "
        "checkpoint cadence\n(4 VMs, 2 AS clusters, fault-free "
        "attestation fan-out before the crash), plus\nthe clean-wire "
        "cost of the write-ahead journal.");

    std::vector<RecoveryPoint> sweep;
    bench::row("workload", {"ckpt every", "records", "bytes", "replayed",
                            "recover ms", "intact"},
               12, 10);
    bool shapeOk = true;
    for (const int attests : {8, 32, 128}) {
        for (const std::size_t cadence : {std::size_t{64},
                                          std::size_t{4096}}) {
            RecoveryPoint p = runRecoveryPoint(attests, cadence);
            sweep.push_back(p);
            bench::row(std::to_string(attests) + " attests",
                       {std::to_string(p.checkpointEvery),
                        std::to_string(p.durableRecords),
                        std::to_string(p.durableBytes),
                        std::to_string(p.replayed),
                        bench::fmt("%.3f", p.recoveryMs),
                        p.intact ? "yes" : "NO"},
                       12, 10);
            shapeOk &= p.intact;
        }
    }

    // Clean-wire A/B: journaling on an undisturbed run. Appends cost
    // zero simulated time, so the trace must be bit-identical; wall
    // time pays only the serialization bookkeeping.
    std::printf("\nclean-wire A/B (no crash, 50 attestations):\n");
    bench::WallTimer volatileTimer;
    CleanLeg volatileOnly = runCleanLeg(/*durable=*/false, 50);
    volatileOnly.wallSeconds = volatileTimer.elapsedSeconds();

    bench::WallTimer durableTimer;
    CleanLeg durable = runCleanLeg(/*durable=*/true, 50);
    durable.wallSeconds = durableTimer.elapsedSeconds();

    std::printf("  volatile (journal disarmed): %.3f s wall, %.3f s "
                "simulated, %zu reports\n",
                volatileOnly.wallSeconds, volatileOnly.simSeconds,
                volatileOnly.reports);
    std::printf("  durable  (journal armed):    %.3f s wall, %.3f s "
                "simulated, %zu reports\n",
                durable.wallSeconds, durable.simSeconds, durable.reports);
    std::printf("  wall overhead: %.1f%%, simulated time identical: %s\n",
                volatileOnly.wallSeconds > 0
                    ? 100.0 *
                          (durable.wallSeconds - volatileOnly.wallSeconds) /
                          volatileOnly.wallSeconds
                    : 0.0,
                durable.simSeconds == volatileOnly.simSeconds ? "yes"
                                                              : "no");
    // Hard invariants: zero perturbation of the simulation and no
    // change in delivered reports. (Wall-clock delta is reported but
    // not gated — shared CI runners are too noisy.)
    shapeOk &= durable.simSeconds == volatileOnly.simSeconds;
    shapeOk &= durable.reports == volatileOnly.reports;

    if (!writeRecoveryJson("BENCH_recovery.json", sweep, durable,
                           volatileOnly))
        std::printf("\n(could not write BENCH_recovery.json)\n");
    else
        std::printf("\nwrote BENCH_recovery.json\n");

    std::printf("shape check: %s\n", shapeOk ? "PASS" : "FAIL");
    return shapeOk ? 0 : 1;
}
