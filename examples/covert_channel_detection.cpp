/**
 * @file
 * Case Study III (§4.4): detecting a cross-VM covert channel.
 *
 * A co-resident "sender" VM leaks information by modulating its CPU
 * occupancy (long burst = 1, short burst = 0), boosted onto the
 * shared CPU via IPIs between its own vCPUs. The VMM Profile Tool
 * counts CPU usage intervals into 30 Trust Evidence Registers; the
 * Attestation Server's Property Interpretation Module clusters the
 * distribution — two separated peaks mean covert-channel activity on
 * the VM's CPU (§4.4.3).
 *
 * The walk-through: a clean attestation first; the attack starts;
 * the next attestation of the same property comes back compromised —
 * the co-resident sender's modulation is visible in the victim's own
 * interval structure, which is exactly the outside-VM vulnerability
 * the paper argues a guest-only monitor can never see; the
 * customer's migration policy then moves the VM to a clean server.
 */

#include <cstdio>

#include "core/cloud.h"
#include "workloads/attacks.h"
#include "workloads/programs.h"

using namespace monatt;
using namespace monatt::core;

namespace
{

void
printReport(const VerifiedReport &report)
{
    for (const auto &pr : report.report.results) {
        std::printf("  %-24s %-12s %s\n",
                    proto::propertyName(pr.property).c_str(),
                    proto::healthStatusName(pr.status).c_str(),
                    pr.detail.c_str());
    }
}

} // namespace

int
main()
{
    Cloud cloud;
    Customer &alice = cloud.addCustomer("alice");

    std::printf("1. Alice leases a VM with covert-channel monitoring "
                "and a migrate-on-compromise policy\n");
    auto launched = cloud.launchVm(
        alice, "secrets-vm", "ubuntu", "small",
        {proto::SecurityProperty::CovertChannelFreedom});
    if (!launched.isOk()) {
        std::printf("launch failed: %s\n",
                    launched.errorMessage().c_str());
        return 1;
    }
    const std::string vid = launched.take();
    server::CloudServer *host = cloud.serverHosting(vid);
    std::printf("   %s running on %s\n\n", vid.c_str(),
                host->id().c_str());
    cloud.controller().setResponsePolicy(
        vid, controller::ResponsePolicy::Migrate);

    // Alice's workload wants the CPU continuously.
    host->hypervisor().setBehavior(
        host->domainOf(vid), 0,
        std::make_unique<workloads::SpinnerProgram>());

    std::printf("2. Clean one-shot attestation (no attack yet)\n");
    auto clean = cloud.attestOnce(
        alice, vid, {proto::SecurityProperty::CovertChannelFreedom});
    if (clean.isOk())
        printReport(clean.value());

    std::printf("\n3. A hostile VM lands on the same pCPU and starts "
                "the CPU covert channel\n");
    auto &hv = host->hypervisor();
    const auto sender = hv.createDomain("covert-sender", 2, /*pcpu=*/0,
                                        toBytes("sender-image"), 1024);
    auto message = std::make_shared<workloads::CovertMessage>();
    Rng rng(0x5ec2e7);
    for (int i = 0; i < 1000000; ++i)
        message->bits.push_back(rng.nextBool());
    workloads::installCovertSender(
        hv, sender, message,
        workloads::CovertChannelParams::detectPreset());
    cloud.runFor(seconds(2)); // Channel reaches steady state.

    std::printf("\n4. Alice attests the same property again\n");
    auto verdict = cloud.attestOnce(
        alice, vid, {proto::SecurityProperty::CovertChannelFreedom});
    if (verdict.isOk())
        printReport(verdict.value());

    const bool compromised =
        verdict.isOk() &&
        verdict.value().report.results[0].status ==
            proto::HealthStatus::Compromised;
    if (!compromised) {
        std::printf("\n(unexpected: channel not detected)\n");
        return 1;
    }

    std::printf("\n5. The negative report triggers the migration "
                "response (§5.2 #3)\n");
    cloud.runUntil(
        [&] {
            const auto &log = cloud.controller().responseLog();
            return !log.empty() && log.front().completed;
        },
        seconds(120));

    const auto &log = cloud.controller().responseLog();
    if (!log.empty() && log.front().completed && log.front().succeeded) {
        std::printf("   migrated %s: %s -> %s in %.2f s after the "
                    "report\n",
                    vid.c_str(), host->id().c_str(),
                    cloud.serverHosting(vid)->id().c_str(),
                    toSeconds(log.front().completedAt -
                              log.front().reportAt));
        std::printf("   the covert-channel sender is no longer "
                    "co-resident with Alice's VM\n");
        return 0;
    }
    std::printf("   response did not complete\n");
    return 1;
}
