/**
 * @file
 * Quickstart: lease a VM with security monitoring and use every
 * customer API of Table 1.
 *
 *   startup_attest_current   — check integrity on demand
 *   runtime_attest_current   — one-shot runtime health check
 *   runtime_attest_periodic  — ongoing monitoring
 *   stop_attest_periodic     — end the stream
 *
 * Everything here runs the full Figure-3 protocol: the request goes
 * customer -> Cloud Controller -> Attestation Server -> Cloud Server
 * over authenticated encrypted channels; the signed measurements come
 * back, are interpreted, and the report reaching the customer is
 * verified end to end before it is surfaced.
 */

#include <cstdio>

#include "core/cloud.h"
#include "workloads/programs.h"

using namespace monatt;
using namespace monatt::core;

int
main()
{
    // A CloudMonatt deployment: cloud controller, attestation server,
    // privacy CA and two secure cloud servers on a 1 Gbps fabric.
    Cloud cloud;
    Customer &alice = cloud.addCustomer("alice");

    // Lease a VM; requested security properties are part of the lease
    // (the controller only places the VM on servers that can monitor
    // them), and launch ends with a startup integrity attestation.
    std::printf("launching a fedora/medium VM with full monitoring...\n");
    auto launched = cloud.launchVm(alice, "alice-app", "fedora",
                                   "medium", proto::allProperties());
    if (!launched.isOk()) {
        std::printf("launch failed: %s\n",
                    launched.errorMessage().c_str());
        return 1;
    }
    const std::string vid = launched.take();
    server::CloudServer *host = cloud.serverHosting(vid);
    std::printf("  -> %s running on %s (launched at t=%.2fs)\n\n",
                vid.c_str(), host->id().c_str(),
                toSeconds(cloud.events().now()));

    // Give the VM a CPU-hungry workload so the availability check is
    // meaningful (an idle VM's 0%% usage is indistinguishable from
    // starvation to the CPU_measure monitor).
    host->hypervisor().setBehavior(
        host->domainOf(vid), 0,
        std::make_unique<workloads::SpinnerProgram>());

    // Table 1: startup_attest_current.
    std::printf("startup_attest_current(%s, startup-integrity)\n",
                vid.c_str());
    const std::uint64_t startupReq = alice.startupAttestCurrent(
        vid, {proto::SecurityProperty::StartupIntegrity});
    cloud.runUntil([&] { return !alice.reportsFor(startupReq).empty(); },
                   seconds(60));
    if (!alice.reportsFor(startupReq).empty()) {
        const auto &pr =
            alice.reportsFor(startupReq).front()->report.results[0];
        std::printf("  %-22s %-12s %s\n",
                    proto::propertyName(pr.property).c_str(),
                    proto::healthStatusName(pr.status).c_str(),
                    pr.detail.c_str());
    }

    // Table 1: runtime_attest_current, for two runtime properties.
    std::printf("\nruntime_attest_current(%s, runtime-integrity + "
                "cpu-availability)\n",
                vid.c_str());
    auto report = cloud.attestOnce(
        alice, vid,
        {proto::SecurityProperty::RuntimeIntegrity,
         proto::SecurityProperty::CpuAvailability});
    if (report.isOk()) {
        for (const auto &pr : report.value().report.results) {
            std::printf("  %-22s %-12s %s\n",
                        proto::propertyName(pr.property).c_str(),
                        proto::healthStatusName(pr.status).c_str(),
                        pr.detail.c_str());
        }
    }

    // Table 1: runtime_attest_periodic at 10 s.
    std::printf("\nruntime_attest_periodic(%s, runtime-integrity, "
                "10s)\n",
                vid.c_str());
    const std::uint64_t periodicReq = alice.runtimeAttestPeriodic(
        vid, {proto::SecurityProperty::RuntimeIntegrity}, seconds(10));
    cloud.runFor(seconds(45));
    std::printf("  received %zu fresh reports in 45 s\n",
                alice.reportsFor(periodicReq).size());

    // Table 1: stop_attest_periodic.
    alice.stopAttestPeriodic(vid,
                             {proto::SecurityProperty::RuntimeIntegrity});
    cloud.runFor(seconds(20));
    std::printf("stop_attest_periodic -> %zu active periodic tasks "
                "remain\n\n",
                cloud.attestationServer().activePeriodicTasks());

    std::printf("verified reports: %llu, rejected (unverifiable): "
                "%llu\n",
                static_cast<unsigned long long>(
                    alice.stats().reportsVerified),
                static_cast<unsigned long long>(
                    alice.stats().reportsRejected));
    return 0;
}
