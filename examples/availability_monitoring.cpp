/**
 * @file
 * Case Study IV (§4.5): runtime CPU availability monitoring.
 *
 * The attacker VM exploits the Xen credit scheduler's BOOST
 * mechanism: two of its vCPUs IPI each other so one always wakes with
 * the highest priority, while sleeping across the 10 ms sampling
 * ticks so the *victim* absorbs every credit debit. The victim —
 * entitled to a fair CPU share by its SLA — starves below 10%.
 *
 * The customer monitors the VM with periodic attestation of the
 * cpu-availability property; the VMM Profile Tool's CPU_measure over
 * each window exposes the starvation, the Attestation Server flags
 * the SLA breach, and the termination policy removes the VM from the
 * hostile server.
 */

#include <cstdio>

#include "core/cloud.h"
#include "workloads/attacks.h"
#include "workloads/programs.h"

using namespace monatt;
using namespace monatt::core;

int
main()
{
    Cloud cloud;
    Customer &bob = cloud.addCustomer("bob");

    std::printf("1. Bob leases a compute VM with cpu-availability "
                "monitoring\n");
    auto launched = cloud.launchVm(
        bob, "compute-vm", "fedora", "small",
        {proto::SecurityProperty::CpuAvailability});
    if (!launched.isOk()) {
        std::printf("launch failed: %s\n",
                    launched.errorMessage().c_str());
        return 1;
    }
    const std::string vid = launched.take();
    server::CloudServer *host = cloud.serverHosting(vid);
    std::printf("   %s running on %s\n\n", vid.c_str(),
                host->id().c_str());

    host->hypervisor().setBehavior(
        host->domainOf(vid), 0,
        std::make_unique<workloads::SpinnerProgram>());

    std::printf("2. Periodic attestation every 15 s\n");
    const std::uint64_t req = bob.runtimeAttestPeriodic(
        vid, {proto::SecurityProperty::CpuAvailability}, seconds(15));
    cloud.runFor(seconds(35));
    for (const auto *report : bob.reportsFor(req)) {
        std::printf("   t=%6.1fs  %-12s %s\n",
                    toSeconds(report->receivedAt),
                    proto::healthStatusName(
                        report->report.results[0].status)
                        .c_str(),
                    report->report.results[0].detail.c_str());
    }

    std::printf("\n3. A resource-freeing attacker lands on the same "
                "pCPU and runs the IPI-boost attack (§4.5.1)\n");
    auto &hv = host->hypervisor();
    const auto attacker = hv.createDomain("rfa-attacker", 2, /*pcpu=*/0,
                                          toBytes("attacker-image"));
    workloads::installAvailabilityAttack(hv, attacker);
    cloud.controller().setResponsePolicy(
        vid, controller::ResponsePolicy::Terminate);

    const std::size_t reportsBefore = bob.reportsFor(req).size();
    cloud.runUntil(
        [&] {
            for (const auto *r : bob.reportsFor(req)) {
                if (r->report.results[0].status ==
                    proto::HealthStatus::Compromised) {
                    return true;
                }
            }
            return false;
        },
        seconds(90));

    for (std::size_t i = reportsBefore; i < bob.reportsFor(req).size();
         ++i) {
        const auto *report = bob.reportsFor(req)[i];
        std::printf("   t=%6.1fs  %-12s %s\n",
                    toSeconds(report->receivedAt),
                    proto::healthStatusName(
                        report->report.results[0].status)
                        .c_str(),
                    report->report.results[0].detail.c_str());
    }

    std::printf("\n4. The SLA breach triggers the termination response "
                "(§5.2 #1)\n");
    cloud.runUntil(
        [&] {
            const auto &log = cloud.controller().responseLog();
            return !log.empty() && log.front().completed;
        },
        seconds(60));
    const auto &log = cloud.controller().responseLog();
    if (!log.empty() && log.front().completed) {
        std::printf("   %s executed %.2f s after the negative report; "
                    "VM status: %s\n",
                    controller::responsePolicyName(log.front().action)
                        .c_str(),
                    toSeconds(log.front().completedAt -
                              log.front().reportAt),
                    vmStatusName(cloud.controller()
                                     .database()
                                     .vm(vid)
                                     ->status)
                        .c_str());
        return 0;
    }
    std::printf("   response did not complete\n");
    return 1;
}
