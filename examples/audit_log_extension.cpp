/**
 * @file
 * Extending CloudMonatt with a new security property.
 *
 * §4.1: "There are many possible security properties that a customer
 * may want... The detection of abnormal VM behaviors is orthogonal to
 * our work, and new methods can easily be integrated into the
 * CloudMonatt framework."
 *
 * This example walks the audit-log-integrity extension that ships
 * with the library — a history-sensitive property built from one new
 * measurement type (the guest audit log's hash-chain head + length),
 * one Monitor Module collection case, and one interpreter comparing
 * successive attestations from the AS measurement archive — and shows
 * it catching malware that truncates the log to cover its tracks.
 */

#include <cstdio>

#include "core/cloud.h"

using namespace monatt;
using namespace monatt::core;

int
main()
{
    Cloud cloud;
    Customer &dana = cloud.addCustomer("dana");

    std::printf("1. Dana leases a VM with audit-log-integrity "
                "monitoring\n");
    auto launched = cloud.launchVm(
        dana, "audited-vm", "fedora", "small",
        {proto::SecurityProperty::AuditLogIntegrity});
    if (!launched.isOk()) {
        std::printf("launch failed: %s\n",
                    launched.errorMessage().c_str());
        return 1;
    }
    const std::string vid = launched.take();
    server::CloudServer *host = cloud.serverHosting(vid);
    hypervisor::GuestOs &os = host->guestOs(vid);

    std::printf("2. The guest appends audit events as it operates\n");
    for (int i = 0; i < 25; ++i)
        os.appendAuditEvent("sshd: accepted publickey session " +
                            std::to_string(i));
    std::printf("   audit log: %llu entries, chain head %s...\n",
                static_cast<unsigned long long>(os.auditLogLength()),
                toHex(os.auditLogHead()).substr(0, 16).c_str());

    std::printf("\n3. Periodic attestation of the new property every "
                "10 s\n");
    const std::uint64_t req = dana.runtimeAttestPeriodic(
        vid, {proto::SecurityProperty::AuditLogIntegrity}, seconds(10));
    cloud.runUntil([&] { return dana.reportsFor(req).size() >= 2; },
                   seconds(60));
    for (const auto *r : dana.reportsFor(req)) {
        std::printf("   t=%5.1fs  %-12s %s\n",
                    toSeconds(r->receivedAt),
                    proto::healthStatusName(
                        r->report.results[0].status)
                        .c_str(),
                    r->report.results[0].detail.c_str());
    }

    std::printf("\n4. Malware wipes its traces: truncates the audit "
                "log from %llu to 5 entries\n",
                static_cast<unsigned long long>(os.auditLogLength()));
    os.truncateAuditLog(5);

    const std::size_t before = dana.reportsFor(req).size();
    cloud.runUntil(
        [&] { return dana.reportsFor(req).size() > before; },
        seconds(60));
    const auto *detection = dana.reportsFor(req).back();
    std::printf("   t=%5.1fs  %-12s %s\n",
                toSeconds(detection->receivedAt),
                proto::healthStatusName(
                    detection->report.results[0].status)
                    .c_str(),
                detection->report.results[0].detail.c_str());

    const bool detected = detection->report.results[0].status ==
                          proto::HealthStatus::Compromised;
    std::printf("\n%s\n", detected
                              ? "rollback detected through the full "
                                "attestation protocol"
                              : "(unexpected: rollback missed)");
    return detected ? 0 : 1;
}
