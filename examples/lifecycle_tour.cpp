/**
 * @file
 * VM lifecycle tour (§5): attestation and responses at every stage.
 *
 *   - Startup responses (§5.1): a launch request with a tampered VM
 *     image is rejected; a launch that lands on a server with a
 *     corrupted platform is rescheduled to a clean one.
 *   - Runtime responses (§5.2): hidden malware caught by the VMI
 *     cross-check triggers suspension; after the platform recovers
 *     (malware removed), the VM resumes via the controller.
 *   - Migration (§5.3): a compromised environment moves the VM to
 *     another qualified server — and the guest's process state
 *     travels with it.
 */

#include <cstdio>

#include "core/cloud.h"
#include "server/catalog.h"

using namespace monatt;
using namespace monatt::core;

int
main()
{
    CloudConfig cfg;
    cfg.numServers = 3; // Room to reschedule and migrate.
    Cloud cloud(cfg);
    Customer &carol = cloud.addCustomer("carol");

    // ----- Startup response: tampered image -------------------------
    std::printf("A. Launch with a tampered image (malware inserted into "
                "the image, §4.2.1)\n");
    Bytes tampered = server::image("fedora").content;
    tampered[0] ^= 0x01;
    auto bad = cloud.launchVmWithImage(carol, "bad-vm", "fedora",
                                       "small", proto::allProperties(),
                                       tampered, 230);
    std::printf("   launch outcome: %s (%s)\n\n",
                bad.isOk() ? "ACCEPTED (bug!)" : "rejected",
                bad.isOk() ? "" : bad.errorMessage().c_str());

    // ----- Startup response: compromised platform -------------------
    std::printf("B. server-1's platform software is corrupted; launches "
                "reschedule around it (§5.1)\n");
    cloud.server(0).hypervisor().corruptHypervisorCode();
    cloud.server(0).trustModule().tpmDevice().reset();
    hypervisor::IntegrityMeasurementUnit imu(
        cloud.server(0).trustModule().tpmDevice());
    imu.measureBoot(cloud.server(0).hypervisor().hypervisorCode(),
                    cloud.server(0).hypervisor().hostOsCode());

    auto launched = cloud.launchVm(carol, "carol-vm", "fedora", "small",
                                   proto::allProperties());
    if (!launched.isOk()) {
        std::printf("   launch failed: %s\n",
                    launched.errorMessage().c_str());
        return 1;
    }
    const std::string vid = launched.take();
    std::printf("   %s placed on %s after %llu reschedule(s)\n\n",
                vid.c_str(), cloud.serverHosting(vid)->id().c_str(),
                static_cast<unsigned long long>(
                    cloud.controller().stats().launchesRescheduled));

    // ----- Runtime response: suspension ------------------------------
    std::printf("C. Hidden malware infects the VM; suspension policy "
                "(§5.2 #2)\n");
    cloud.controller().setResponsePolicy(
        vid, controller::ResponsePolicy::Suspend);
    server::CloudServer *host = cloud.serverHosting(vid);
    const auto malwarePid =
        host->guestOs(vid).injectHiddenMalware("rootkit");

    auto report = cloud.attestOnce(
        carol, vid, {proto::SecurityProperty::RuntimeIntegrity});
    if (report.isOk()) {
        std::printf("   attestation: %s\n",
                    report.value().report.results[0].detail.c_str());
    }
    // Wait for the suspension to fully complete (state save + ack).
    cloud.runUntil(
        [&] {
            const auto &log = cloud.controller().responseLog();
            return !log.empty() && log.front().completed;
        },
        seconds(60));
    std::printf("   VM status: %s\n\n",
                vmStatusName(
                    cloud.controller().database().vm(vid)->status)
                    .c_str());

    // (Cleanup: remove the malware while suspended — "if the
    // attestation results show the cloud server has returned to the
    // desired security health, the controller can resume the VM".)
    host->guestOs(vid).killProcess(malwarePid);

    // ----- Migration (§5.3) -----------------------------------------
    std::printf("D. The environment stays questionable; policy switches "
                "to migration\n");
    // Resume first (the simulator's controller resumes via migration's
    // pause/copy path), then migrate away.
    host->hypervisor().resumeDomain(host->domainOf(vid));
    cloud.controller().database().vm(vid)->status =
        controller::VmStatus::Running;
    cloud.controller().setResponsePolicy(
        vid, controller::ResponsePolicy::Migrate);
    host->guestOs(vid).startProcess("carol-db");
    host->guestOs(vid).injectHiddenMalware("rootkit-2");

    auto second = cloud.attestOnce(
        carol, vid, {proto::SecurityProperty::RuntimeIntegrity});
    (void)second;
    cloud.runUntil(
        [&] {
            const auto &log = cloud.controller().responseLog();
            return log.size() >= 2 && log.back().completed;
        },
        seconds(180));

    server::CloudServer *newHost = cloud.serverHosting(vid);
    std::printf("   migrated to %s; guest still runs:",
                newHost->id().c_str());
    for (const auto &task : newHost->guestOs(vid).guestReportedTasks())
        std::printf(" %s", task.c_str());
    std::printf("\n\n");

    std::printf("lifecycle summary: launches=%llu rejected=%llu "
                "rescheduled=%llu responses=%llu\n",
                static_cast<unsigned long long>(
                    cloud.controller().stats().launchesRequested),
                static_cast<unsigned long long>(
                    cloud.controller().stats().launchesRejected),
                static_cast<unsigned long long>(
                    cloud.controller().stats().launchesRescheduled),
                static_cast<unsigned long long>(
                    cloud.controller().stats().responsesTriggered));
    return 0;
}
