# Empty dependencies file for bench_fig11_responses.
# This may be replaced when dependencies are built.
