file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_availability.dir/bench_fig06_availability.cpp.o"
  "CMakeFiles/bench_fig06_availability.dir/bench_fig06_availability.cpp.o.d"
  "bench_fig06_availability"
  "bench_fig06_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
