# Empty dependencies file for bench_fig06_availability.
# This may be replaced when dependencies are built.
