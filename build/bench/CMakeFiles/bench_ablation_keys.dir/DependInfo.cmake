
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_keys.cpp" "bench/CMakeFiles/bench_ablation_keys.dir/bench_ablation_keys.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_keys.dir/bench_ablation_keys.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/verif/CMakeFiles/monatt_verif.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/monatt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/controller/CMakeFiles/monatt_controller.dir/DependInfo.cmake"
  "/root/repo/build/src/attestation/CMakeFiles/monatt_attestation.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/monatt_server.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/monatt_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/hypervisor/CMakeFiles/monatt_hypervisor.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/monatt_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/tpm/CMakeFiles/monatt_tpm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/monatt_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/monatt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/monatt_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/monatt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
