file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_keys.dir/bench_ablation_keys.cpp.o"
  "CMakeFiles/bench_ablation_keys.dir/bench_ablation_keys.cpp.o.d"
  "bench_ablation_keys"
  "bench_ablation_keys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_keys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
