# Empty compiler generated dependencies file for bench_ablation_keys.
# This may be replaced when dependencies are built.
