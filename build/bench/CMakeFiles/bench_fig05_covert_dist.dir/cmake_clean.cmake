file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_covert_dist.dir/bench_fig05_covert_dist.cpp.o"
  "CMakeFiles/bench_fig05_covert_dist.dir/bench_fig05_covert_dist.cpp.o.d"
  "bench_fig05_covert_dist"
  "bench_fig05_covert_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_covert_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
