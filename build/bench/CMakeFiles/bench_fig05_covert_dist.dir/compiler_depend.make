# Empty compiler generated dependencies file for bench_fig05_covert_dist.
# This may be replaced when dependencies are built.
