# Empty dependencies file for bench_ablation_defense.
# This may be replaced when dependencies are built.
