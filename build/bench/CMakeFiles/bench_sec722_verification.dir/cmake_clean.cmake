file(REMOVE_RECURSE
  "CMakeFiles/bench_sec722_verification.dir/bench_sec722_verification.cpp.o"
  "CMakeFiles/bench_sec722_verification.dir/bench_sec722_verification.cpp.o.d"
  "bench_sec722_verification"
  "bench_sec722_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec722_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
