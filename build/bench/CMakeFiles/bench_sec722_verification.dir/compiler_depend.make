# Empty compiler generated dependencies file for bench_sec722_verification.
# This may be replaced when dependencies are built.
