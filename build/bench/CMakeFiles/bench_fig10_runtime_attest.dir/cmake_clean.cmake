file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_runtime_attest.dir/bench_fig10_runtime_attest.cpp.o"
  "CMakeFiles/bench_fig10_runtime_attest.dir/bench_fig10_runtime_attest.cpp.o.d"
  "bench_fig10_runtime_attest"
  "bench_fig10_runtime_attest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_runtime_attest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
