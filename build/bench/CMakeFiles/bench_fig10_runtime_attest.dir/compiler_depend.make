# Empty compiler generated dependencies file for bench_fig10_runtime_attest.
# This may be replaced when dependencies are built.
