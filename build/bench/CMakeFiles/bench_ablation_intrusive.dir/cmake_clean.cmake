file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_intrusive.dir/bench_ablation_intrusive.cpp.o"
  "CMakeFiles/bench_ablation_intrusive.dir/bench_ablation_intrusive.cpp.o.d"
  "bench_ablation_intrusive"
  "bench_ablation_intrusive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_intrusive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
