# Empty dependencies file for bench_fig04_covert_trace.
# This may be replaced when dependencies are built.
