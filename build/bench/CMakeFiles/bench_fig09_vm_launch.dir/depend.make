# Empty dependencies file for bench_fig09_vm_launch.
# This may be replaced when dependencies are built.
