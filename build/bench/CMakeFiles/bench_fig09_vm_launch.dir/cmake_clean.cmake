file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_vm_launch.dir/bench_fig09_vm_launch.cpp.o"
  "CMakeFiles/bench_fig09_vm_launch.dir/bench_fig09_vm_launch.cpp.o.d"
  "bench_fig09_vm_launch"
  "bench_fig09_vm_launch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_vm_launch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
