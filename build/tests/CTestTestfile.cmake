# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/hypervisor_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/attestation_test[1]_include.cmake")
include("/root/repo/build/tests/controller_test[1]_include.cmake")
include("/root/repo/build/tests/verif_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/tpm_test[1]_include.cmake")
include("/root/repo/build/tests/proto_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/server_test[1]_include.cmake")
