file(REMOVE_RECURSE
  "CMakeFiles/verif_test.dir/verif/verif_test.cpp.o"
  "CMakeFiles/verif_test.dir/verif/verif_test.cpp.o.d"
  "verif_test"
  "verif_test.pdb"
  "verif_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verif_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
