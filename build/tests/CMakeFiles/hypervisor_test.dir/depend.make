# Empty dependencies file for hypervisor_test.
# This may be replaced when dependencies are built.
