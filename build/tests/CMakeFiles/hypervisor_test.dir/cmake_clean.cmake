file(REMOVE_RECURSE
  "CMakeFiles/hypervisor_test.dir/hypervisor/attack_sweep_test.cpp.o"
  "CMakeFiles/hypervisor_test.dir/hypervisor/attack_sweep_test.cpp.o.d"
  "CMakeFiles/hypervisor_test.dir/hypervisor/attacks_test.cpp.o"
  "CMakeFiles/hypervisor_test.dir/hypervisor/attacks_test.cpp.o.d"
  "CMakeFiles/hypervisor_test.dir/hypervisor/monitors_test.cpp.o"
  "CMakeFiles/hypervisor_test.dir/hypervisor/monitors_test.cpp.o.d"
  "CMakeFiles/hypervisor_test.dir/hypervisor/scheduler_test.cpp.o"
  "CMakeFiles/hypervisor_test.dir/hypervisor/scheduler_test.cpp.o.d"
  "hypervisor_test"
  "hypervisor_test.pdb"
  "hypervisor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypervisor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
