file(REMOVE_RECURSE
  "CMakeFiles/tpm_test.dir/tpm/tpm_test.cpp.o"
  "CMakeFiles/tpm_test.dir/tpm/tpm_test.cpp.o.d"
  "tpm_test"
  "tpm_test.pdb"
  "tpm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
