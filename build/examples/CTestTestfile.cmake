# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_covert_channel_detection "/root/repo/build/examples/covert_channel_detection")
set_tests_properties(example_covert_channel_detection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_availability_monitoring "/root/repo/build/examples/availability_monitoring")
set_tests_properties(example_availability_monitoring PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_lifecycle_tour "/root/repo/build/examples/lifecycle_tour")
set_tests_properties(example_lifecycle_tour PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_audit_log_extension "/root/repo/build/examples/audit_log_extension")
set_tests_properties(example_audit_log_extension PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
