file(REMOVE_RECURSE
  "CMakeFiles/covert_channel_detection.dir/covert_channel_detection.cpp.o"
  "CMakeFiles/covert_channel_detection.dir/covert_channel_detection.cpp.o.d"
  "covert_channel_detection"
  "covert_channel_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/covert_channel_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
