# Empty dependencies file for covert_channel_detection.
# This may be replaced when dependencies are built.
