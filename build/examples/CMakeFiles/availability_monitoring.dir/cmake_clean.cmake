file(REMOVE_RECURSE
  "CMakeFiles/availability_monitoring.dir/availability_monitoring.cpp.o"
  "CMakeFiles/availability_monitoring.dir/availability_monitoring.cpp.o.d"
  "availability_monitoring"
  "availability_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/availability_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
