# Empty dependencies file for availability_monitoring.
# This may be replaced when dependencies are built.
