# Empty compiler generated dependencies file for audit_log_extension.
# This may be replaced when dependencies are built.
