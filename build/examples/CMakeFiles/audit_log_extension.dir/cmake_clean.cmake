file(REMOVE_RECURSE
  "CMakeFiles/audit_log_extension.dir/audit_log_extension.cpp.o"
  "CMakeFiles/audit_log_extension.dir/audit_log_extension.cpp.o.d"
  "audit_log_extension"
  "audit_log_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audit_log_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
