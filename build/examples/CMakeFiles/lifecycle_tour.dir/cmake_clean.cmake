file(REMOVE_RECURSE
  "CMakeFiles/lifecycle_tour.dir/lifecycle_tour.cpp.o"
  "CMakeFiles/lifecycle_tour.dir/lifecycle_tour.cpp.o.d"
  "lifecycle_tour"
  "lifecycle_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lifecycle_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
