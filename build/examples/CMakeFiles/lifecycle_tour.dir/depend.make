# Empty dependencies file for lifecycle_tour.
# This may be replaced when dependencies are built.
