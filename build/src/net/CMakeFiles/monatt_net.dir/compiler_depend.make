# Empty compiler generated dependencies file for monatt_net.
# This may be replaced when dependencies are built.
