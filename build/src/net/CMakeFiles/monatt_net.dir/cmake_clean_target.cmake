file(REMOVE_RECURSE
  "libmonatt_net.a"
)
