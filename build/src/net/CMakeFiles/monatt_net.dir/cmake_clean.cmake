file(REMOVE_RECURSE
  "CMakeFiles/monatt_net.dir/message.cpp.o"
  "CMakeFiles/monatt_net.dir/message.cpp.o.d"
  "CMakeFiles/monatt_net.dir/network.cpp.o"
  "CMakeFiles/monatt_net.dir/network.cpp.o.d"
  "CMakeFiles/monatt_net.dir/secure_channel.cpp.o"
  "CMakeFiles/monatt_net.dir/secure_channel.cpp.o.d"
  "CMakeFiles/monatt_net.dir/secure_endpoint.cpp.o"
  "CMakeFiles/monatt_net.dir/secure_endpoint.cpp.o.d"
  "libmonatt_net.a"
  "libmonatt_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monatt_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
