# Empty compiler generated dependencies file for monatt_server.
# This may be replaced when dependencies are built.
