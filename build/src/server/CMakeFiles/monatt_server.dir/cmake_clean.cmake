file(REMOVE_RECURSE
  "CMakeFiles/monatt_server.dir/catalog.cpp.o"
  "CMakeFiles/monatt_server.dir/catalog.cpp.o.d"
  "CMakeFiles/monatt_server.dir/cloud_server.cpp.o"
  "CMakeFiles/monatt_server.dir/cloud_server.cpp.o.d"
  "CMakeFiles/monatt_server.dir/monitor_module.cpp.o"
  "CMakeFiles/monatt_server.dir/monitor_module.cpp.o.d"
  "libmonatt_server.a"
  "libmonatt_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monatt_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
