file(REMOVE_RECURSE
  "libmonatt_server.a"
)
