# Empty compiler generated dependencies file for monatt_sim.
# This may be replaced when dependencies are built.
