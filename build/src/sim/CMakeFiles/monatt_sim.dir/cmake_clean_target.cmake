file(REMOVE_RECURSE
  "libmonatt_sim.a"
)
