file(REMOVE_RECURSE
  "CMakeFiles/monatt_sim.dir/event_queue.cpp.o"
  "CMakeFiles/monatt_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/monatt_sim.dir/stage_timer.cpp.o"
  "CMakeFiles/monatt_sim.dir/stage_timer.cpp.o.d"
  "libmonatt_sim.a"
  "libmonatt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monatt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
