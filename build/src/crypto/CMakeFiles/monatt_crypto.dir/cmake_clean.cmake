file(REMOVE_RECURSE
  "CMakeFiles/monatt_crypto.dir/aes.cpp.o"
  "CMakeFiles/monatt_crypto.dir/aes.cpp.o.d"
  "CMakeFiles/monatt_crypto.dir/bignum.cpp.o"
  "CMakeFiles/monatt_crypto.dir/bignum.cpp.o.d"
  "CMakeFiles/monatt_crypto.dir/drbg.cpp.o"
  "CMakeFiles/monatt_crypto.dir/drbg.cpp.o.d"
  "CMakeFiles/monatt_crypto.dir/hmac.cpp.o"
  "CMakeFiles/monatt_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/monatt_crypto.dir/rsa.cpp.o"
  "CMakeFiles/monatt_crypto.dir/rsa.cpp.o.d"
  "CMakeFiles/monatt_crypto.dir/sha256.cpp.o"
  "CMakeFiles/monatt_crypto.dir/sha256.cpp.o.d"
  "libmonatt_crypto.a"
  "libmonatt_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monatt_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
