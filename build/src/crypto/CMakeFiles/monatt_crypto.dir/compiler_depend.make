# Empty compiler generated dependencies file for monatt_crypto.
# This may be replaced when dependencies are built.
