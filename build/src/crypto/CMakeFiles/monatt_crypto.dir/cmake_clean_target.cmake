file(REMOVE_RECURSE
  "libmonatt_crypto.a"
)
