file(REMOVE_RECURSE
  "CMakeFiles/monatt_core.dir/cloud.cpp.o"
  "CMakeFiles/monatt_core.dir/cloud.cpp.o.d"
  "CMakeFiles/monatt_core.dir/customer.cpp.o"
  "CMakeFiles/monatt_core.dir/customer.cpp.o.d"
  "libmonatt_core.a"
  "libmonatt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monatt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
