# Empty dependencies file for monatt_core.
# This may be replaced when dependencies are built.
