file(REMOVE_RECURSE
  "libmonatt_core.a"
)
