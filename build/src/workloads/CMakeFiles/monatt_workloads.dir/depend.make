# Empty dependencies file for monatt_workloads.
# This may be replaced when dependencies are built.
