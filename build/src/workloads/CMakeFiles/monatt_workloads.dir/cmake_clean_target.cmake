file(REMOVE_RECURSE
  "libmonatt_workloads.a"
)
