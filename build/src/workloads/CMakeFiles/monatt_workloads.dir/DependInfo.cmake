
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/attacks.cpp" "src/workloads/CMakeFiles/monatt_workloads.dir/attacks.cpp.o" "gcc" "src/workloads/CMakeFiles/monatt_workloads.dir/attacks.cpp.o.d"
  "/root/repo/src/workloads/programs.cpp" "src/workloads/CMakeFiles/monatt_workloads.dir/programs.cpp.o" "gcc" "src/workloads/CMakeFiles/monatt_workloads.dir/programs.cpp.o.d"
  "/root/repo/src/workloads/services.cpp" "src/workloads/CMakeFiles/monatt_workloads.dir/services.cpp.o" "gcc" "src/workloads/CMakeFiles/monatt_workloads.dir/services.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hypervisor/CMakeFiles/monatt_hypervisor.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/monatt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tpm/CMakeFiles/monatt_tpm.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/monatt_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/monatt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
