file(REMOVE_RECURSE
  "CMakeFiles/monatt_workloads.dir/attacks.cpp.o"
  "CMakeFiles/monatt_workloads.dir/attacks.cpp.o.d"
  "CMakeFiles/monatt_workloads.dir/programs.cpp.o"
  "CMakeFiles/monatt_workloads.dir/programs.cpp.o.d"
  "CMakeFiles/monatt_workloads.dir/services.cpp.o"
  "CMakeFiles/monatt_workloads.dir/services.cpp.o.d"
  "libmonatt_workloads.a"
  "libmonatt_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monatt_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
