file(REMOVE_RECURSE
  "libmonatt_common.a"
)
