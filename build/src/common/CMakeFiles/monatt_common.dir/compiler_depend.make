# Empty compiler generated dependencies file for monatt_common.
# This may be replaced when dependencies are built.
