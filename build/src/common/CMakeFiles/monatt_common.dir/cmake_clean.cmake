file(REMOVE_RECURSE
  "CMakeFiles/monatt_common.dir/bytes.cpp.o"
  "CMakeFiles/monatt_common.dir/bytes.cpp.o.d"
  "CMakeFiles/monatt_common.dir/codec.cpp.o"
  "CMakeFiles/monatt_common.dir/codec.cpp.o.d"
  "CMakeFiles/monatt_common.dir/logging.cpp.o"
  "CMakeFiles/monatt_common.dir/logging.cpp.o.d"
  "CMakeFiles/monatt_common.dir/rng.cpp.o"
  "CMakeFiles/monatt_common.dir/rng.cpp.o.d"
  "CMakeFiles/monatt_common.dir/stats.cpp.o"
  "CMakeFiles/monatt_common.dir/stats.cpp.o.d"
  "libmonatt_common.a"
  "libmonatt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monatt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
