file(REMOVE_RECURSE
  "CMakeFiles/monatt_controller.dir/cloud_controller.cpp.o"
  "CMakeFiles/monatt_controller.dir/cloud_controller.cpp.o.d"
  "CMakeFiles/monatt_controller.dir/database.cpp.o"
  "CMakeFiles/monatt_controller.dir/database.cpp.o.d"
  "CMakeFiles/monatt_controller.dir/policy.cpp.o"
  "CMakeFiles/monatt_controller.dir/policy.cpp.o.d"
  "libmonatt_controller.a"
  "libmonatt_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monatt_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
