# Empty compiler generated dependencies file for monatt_controller.
# This may be replaced when dependencies are built.
