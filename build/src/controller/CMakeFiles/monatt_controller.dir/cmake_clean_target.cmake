file(REMOVE_RECURSE
  "libmonatt_controller.a"
)
