
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attestation/attestation_server.cpp" "src/attestation/CMakeFiles/monatt_attestation.dir/attestation_server.cpp.o" "gcc" "src/attestation/CMakeFiles/monatt_attestation.dir/attestation_server.cpp.o.d"
  "/root/repo/src/attestation/interpreters.cpp" "src/attestation/CMakeFiles/monatt_attestation.dir/interpreters.cpp.o" "gcc" "src/attestation/CMakeFiles/monatt_attestation.dir/interpreters.cpp.o.d"
  "/root/repo/src/attestation/privacy_ca.cpp" "src/attestation/CMakeFiles/monatt_attestation.dir/privacy_ca.cpp.o" "gcc" "src/attestation/CMakeFiles/monatt_attestation.dir/privacy_ca.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/monatt_net.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/monatt_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/tpm/CMakeFiles/monatt_tpm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/monatt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/monatt_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/monatt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
