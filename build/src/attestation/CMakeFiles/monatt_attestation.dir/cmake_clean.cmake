file(REMOVE_RECURSE
  "CMakeFiles/monatt_attestation.dir/attestation_server.cpp.o"
  "CMakeFiles/monatt_attestation.dir/attestation_server.cpp.o.d"
  "CMakeFiles/monatt_attestation.dir/interpreters.cpp.o"
  "CMakeFiles/monatt_attestation.dir/interpreters.cpp.o.d"
  "CMakeFiles/monatt_attestation.dir/privacy_ca.cpp.o"
  "CMakeFiles/monatt_attestation.dir/privacy_ca.cpp.o.d"
  "libmonatt_attestation.a"
  "libmonatt_attestation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monatt_attestation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
