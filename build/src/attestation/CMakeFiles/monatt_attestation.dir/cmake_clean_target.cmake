file(REMOVE_RECURSE
  "libmonatt_attestation.a"
)
