# Empty dependencies file for monatt_attestation.
# This may be replaced when dependencies are built.
