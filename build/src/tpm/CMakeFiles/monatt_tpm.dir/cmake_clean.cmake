file(REMOVE_RECURSE
  "CMakeFiles/monatt_tpm.dir/certificate.cpp.o"
  "CMakeFiles/monatt_tpm.dir/certificate.cpp.o.d"
  "CMakeFiles/monatt_tpm.dir/tpm_emulator.cpp.o"
  "CMakeFiles/monatt_tpm.dir/tpm_emulator.cpp.o.d"
  "CMakeFiles/monatt_tpm.dir/trust_module.cpp.o"
  "CMakeFiles/monatt_tpm.dir/trust_module.cpp.o.d"
  "libmonatt_tpm.a"
  "libmonatt_tpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monatt_tpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
