file(REMOVE_RECURSE
  "libmonatt_tpm.a"
)
