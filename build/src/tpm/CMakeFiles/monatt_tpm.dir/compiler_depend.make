# Empty compiler generated dependencies file for monatt_tpm.
# This may be replaced when dependencies are built.
