
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tpm/certificate.cpp" "src/tpm/CMakeFiles/monatt_tpm.dir/certificate.cpp.o" "gcc" "src/tpm/CMakeFiles/monatt_tpm.dir/certificate.cpp.o.d"
  "/root/repo/src/tpm/tpm_emulator.cpp" "src/tpm/CMakeFiles/monatt_tpm.dir/tpm_emulator.cpp.o" "gcc" "src/tpm/CMakeFiles/monatt_tpm.dir/tpm_emulator.cpp.o.d"
  "/root/repo/src/tpm/trust_module.cpp" "src/tpm/CMakeFiles/monatt_tpm.dir/trust_module.cpp.o" "gcc" "src/tpm/CMakeFiles/monatt_tpm.dir/trust_module.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/monatt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/monatt_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
