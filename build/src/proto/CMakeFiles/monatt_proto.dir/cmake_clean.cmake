file(REMOVE_RECURSE
  "CMakeFiles/monatt_proto.dir/measurement.cpp.o"
  "CMakeFiles/monatt_proto.dir/measurement.cpp.o.d"
  "CMakeFiles/monatt_proto.dir/messages.cpp.o"
  "CMakeFiles/monatt_proto.dir/messages.cpp.o.d"
  "CMakeFiles/monatt_proto.dir/property.cpp.o"
  "CMakeFiles/monatt_proto.dir/property.cpp.o.d"
  "libmonatt_proto.a"
  "libmonatt_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monatt_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
