file(REMOVE_RECURSE
  "libmonatt_proto.a"
)
