
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/measurement.cpp" "src/proto/CMakeFiles/monatt_proto.dir/measurement.cpp.o" "gcc" "src/proto/CMakeFiles/monatt_proto.dir/measurement.cpp.o.d"
  "/root/repo/src/proto/messages.cpp" "src/proto/CMakeFiles/monatt_proto.dir/messages.cpp.o" "gcc" "src/proto/CMakeFiles/monatt_proto.dir/messages.cpp.o.d"
  "/root/repo/src/proto/property.cpp" "src/proto/CMakeFiles/monatt_proto.dir/property.cpp.o" "gcc" "src/proto/CMakeFiles/monatt_proto.dir/property.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/monatt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/monatt_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/tpm/CMakeFiles/monatt_tpm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
