# Empty dependencies file for monatt_proto.
# This may be replaced when dependencies are built.
