file(REMOVE_RECURSE
  "libmonatt_verif.a"
)
