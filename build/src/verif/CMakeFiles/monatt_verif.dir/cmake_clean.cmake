file(REMOVE_RECURSE
  "CMakeFiles/monatt_verif.dir/deduction.cpp.o"
  "CMakeFiles/monatt_verif.dir/deduction.cpp.o.d"
  "CMakeFiles/monatt_verif.dir/protocol_model.cpp.o"
  "CMakeFiles/monatt_verif.dir/protocol_model.cpp.o.d"
  "CMakeFiles/monatt_verif.dir/term.cpp.o"
  "CMakeFiles/monatt_verif.dir/term.cpp.o.d"
  "libmonatt_verif.a"
  "libmonatt_verif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monatt_verif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
