# Empty compiler generated dependencies file for monatt_verif.
# This may be replaced when dependencies are built.
