
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/verif/deduction.cpp" "src/verif/CMakeFiles/monatt_verif.dir/deduction.cpp.o" "gcc" "src/verif/CMakeFiles/monatt_verif.dir/deduction.cpp.o.d"
  "/root/repo/src/verif/protocol_model.cpp" "src/verif/CMakeFiles/monatt_verif.dir/protocol_model.cpp.o" "gcc" "src/verif/CMakeFiles/monatt_verif.dir/protocol_model.cpp.o.d"
  "/root/repo/src/verif/term.cpp" "src/verif/CMakeFiles/monatt_verif.dir/term.cpp.o" "gcc" "src/verif/CMakeFiles/monatt_verif.dir/term.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/monatt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
