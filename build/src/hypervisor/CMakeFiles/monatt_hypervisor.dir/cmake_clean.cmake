file(REMOVE_RECURSE
  "CMakeFiles/monatt_hypervisor.dir/domain.cpp.o"
  "CMakeFiles/monatt_hypervisor.dir/domain.cpp.o.d"
  "CMakeFiles/monatt_hypervisor.dir/hypervisor.cpp.o"
  "CMakeFiles/monatt_hypervisor.dir/hypervisor.cpp.o.d"
  "CMakeFiles/monatt_hypervisor.dir/monitors.cpp.o"
  "CMakeFiles/monatt_hypervisor.dir/monitors.cpp.o.d"
  "CMakeFiles/monatt_hypervisor.dir/scheduler.cpp.o"
  "CMakeFiles/monatt_hypervisor.dir/scheduler.cpp.o.d"
  "libmonatt_hypervisor.a"
  "libmonatt_hypervisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monatt_hypervisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
