file(REMOVE_RECURSE
  "libmonatt_hypervisor.a"
)
