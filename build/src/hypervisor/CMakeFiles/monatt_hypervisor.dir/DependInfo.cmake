
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hypervisor/domain.cpp" "src/hypervisor/CMakeFiles/monatt_hypervisor.dir/domain.cpp.o" "gcc" "src/hypervisor/CMakeFiles/monatt_hypervisor.dir/domain.cpp.o.d"
  "/root/repo/src/hypervisor/hypervisor.cpp" "src/hypervisor/CMakeFiles/monatt_hypervisor.dir/hypervisor.cpp.o" "gcc" "src/hypervisor/CMakeFiles/monatt_hypervisor.dir/hypervisor.cpp.o.d"
  "/root/repo/src/hypervisor/monitors.cpp" "src/hypervisor/CMakeFiles/monatt_hypervisor.dir/monitors.cpp.o" "gcc" "src/hypervisor/CMakeFiles/monatt_hypervisor.dir/monitors.cpp.o.d"
  "/root/repo/src/hypervisor/scheduler.cpp" "src/hypervisor/CMakeFiles/monatt_hypervisor.dir/scheduler.cpp.o" "gcc" "src/hypervisor/CMakeFiles/monatt_hypervisor.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/monatt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/monatt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/monatt_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/tpm/CMakeFiles/monatt_tpm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
