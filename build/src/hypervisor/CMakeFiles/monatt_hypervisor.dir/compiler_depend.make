# Empty compiler generated dependencies file for monatt_hypervisor.
# This may be replaced when dependencies are built.
