/**
 * @file
 * HMAC-DRBG behavioural tests: determinism under a fixed seed,
 * divergence across seeds and after reseeding, output shape.
 */

#include <gtest/gtest.h>

#include "crypto/drbg.h"

namespace monatt::crypto
{
namespace
{

TEST(HmacDrbgTest, DeterministicUnderFixedSeed)
{
    HmacDrbg a(toBytes("seed"));
    HmacDrbg b(toBytes("seed"));
    EXPECT_EQ(a.generate(64), b.generate(64));
    EXPECT_EQ(a.generate(13), b.generate(13));
}

TEST(HmacDrbgTest, DistinctSeedsDiverge)
{
    HmacDrbg a(toBytes("seed-1"));
    HmacDrbg b(toBytes("seed-2"));
    EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(HmacDrbgTest, SuccessiveOutputsDiffer)
{
    HmacDrbg d(toBytes("seed"));
    EXPECT_NE(d.generate(32), d.generate(32));
}

TEST(HmacDrbgTest, ReseedChangesStream)
{
    HmacDrbg a(toBytes("seed"));
    HmacDrbg b(toBytes("seed"));
    a.generate(16);
    b.generate(16);
    a.reseed(toBytes("fresh entropy"));
    EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(HmacDrbgTest, GenerateArbitraryLengths)
{
    HmacDrbg d(toBytes("seed"));
    for (std::size_t n : {0u, 1u, 31u, 32u, 33u, 100u, 1000u})
        EXPECT_EQ(d.generate(n).size(), n);
}

TEST(HmacDrbgTest, OutputLooksBalanced)
{
    // Crude sanity check: bit balance within 5% over 64 KiB.
    HmacDrbg d(toBytes("balance"));
    const Bytes out = d.generate(65536);
    std::size_t ones = 0;
    for (std::uint8_t b : out)
        ones += static_cast<std::size_t>(__builtin_popcount(b));
    const double frac = static_cast<double>(ones) / (65536.0 * 8.0);
    EXPECT_NEAR(frac, 0.5, 0.05);
}

TEST(HmacDrbgTest, ForkRngDeterministic)
{
    HmacDrbg a(toBytes("seed"));
    HmacDrbg b(toBytes("seed"));
    Rng ra = a.forkRng();
    Rng rb = b.forkRng();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(ra.next(), rb.next());
}

} // namespace
} // namespace monatt::crypto
