/**
 * @file
 * Differential tests of the Montgomery modular-exponentiation engine
 * against the legacy division-based ladder, plus equivalence of the
 * precomputed RSA key contexts with the plain key operations. The
 * legacy ladder is the reference implementation: any disagreement is
 * a bug in the fast path.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/bignum.h"
#include "crypto/rsa.h"

namespace monatt::crypto
{
namespace
{

BigUint
randomBits(Rng &rng, std::size_t bits)
{
    return BigUint::fromBytes(rng.nextBytes(bits / 8));
}

/** A random odd modulus of roughly `bits` bits. */
BigUint
randomOddModulus(Rng &rng, std::size_t bits)
{
    BigUint m = randomBits(rng, bits);
    if (!m.isOdd())
        m = m + BigUint::fromU64(1);
    if (m.bitLength() < 2)
        m = BigUint::fromU64(3);
    return m;
}

TEST(MontgomeryTest, RandomizedDifferential512)
{
    Rng rng(0x5121);
    for (int i = 0; i < 40; ++i) {
        const BigUint m = randomOddModulus(rng, 512);
        const BigUint base = randomBits(rng, 512);
        const BigUint exp = randomBits(rng, 512);
        EXPECT_EQ(base.modExp(exp, m), base.modExpLegacy(exp, m))
            << "iteration " << i;
    }
}

TEST(MontgomeryTest, RandomizedDifferential1024)
{
    Rng rng(0x1024);
    for (int i = 0; i < 10; ++i) {
        const BigUint m = randomOddModulus(rng, 1024);
        const BigUint base = randomBits(rng, 1024);
        const BigUint exp = randomBits(rng, 1024);
        EXPECT_EQ(base.modExp(exp, m), base.modExpLegacy(exp, m))
            << "iteration " << i;
    }
}

TEST(MontgomeryTest, SmallAndMixedWidths)
{
    Rng rng(0x77);
    // Exercise every window size the ladder picks (1..5 for exponents
    // of 1..>512 bits) and asymmetric operand widths.
    for (const std::size_t expBits : {8u, 16u, 32u, 128u, 256u, 768u}) {
        const BigUint m = randomOddModulus(rng, 256);
        const BigUint base = randomBits(rng, 512);
        const BigUint exp = randomBits(rng, expBits);
        EXPECT_EQ(base.modExp(exp, m), base.modExpLegacy(exp, m))
            << expBits << "-bit exponent";
    }
}

TEST(MontgomeryTest, ZeroExponentIsOne)
{
    const BigUint m = BigUint::fromHexString("f123456789abcdef1");
    const BigUint base = BigUint::fromU64(0xdeadbeef);
    EXPECT_EQ(base.modExp(BigUint(), m), BigUint::fromU64(1));
    EXPECT_EQ(base.modExpLegacy(BigUint(), m), BigUint::fromU64(1));
}

TEST(MontgomeryTest, BaseLargerThanModulusIsReduced)
{
    Rng rng(0x88);
    const BigUint m = randomOddModulus(rng, 128);
    const BigUint base = randomBits(rng, 512); // base >> m
    const BigUint exp = BigUint::fromU64(65537);
    EXPECT_EQ(base.modExp(exp, m), base.modExpLegacy(exp, m));
    EXPECT_EQ((base % m).modExp(exp, m), base.modExp(exp, m));
}

TEST(MontgomeryTest, ZeroBase)
{
    const BigUint m = BigUint::fromHexString("f1");
    EXPECT_EQ(BigUint().modExp(BigUint::fromU64(12), m), BigUint());
}

TEST(MontgomeryTest, ModulusOneYieldsZero)
{
    const BigUint one = BigUint::fromU64(1);
    EXPECT_EQ(BigUint::fromU64(99).modExp(BigUint::fromU64(3), one),
              BigUint());
}

TEST(MontgomeryTest, ZeroModulusThrows)
{
    EXPECT_THROW(BigUint::fromU64(2).modExp(BigUint::fromU64(3), BigUint()),
                 std::domain_error);
}

TEST(MontgomeryTest, EvenModulusContextRejected)
{
    const BigUint even = BigUint::fromU64(100);
    const BigUint zero;
    EXPECT_THROW(MontgomeryContext{even}, std::domain_error);
    EXPECT_THROW(MontgomeryContext{zero}, std::domain_error);
}

TEST(MontgomeryTest, EvenModulusModExpFallsBackToLegacy)
{
    Rng rng(0x99);
    BigUint m = randomBits(rng, 256);
    if (m.isOdd())
        m = m + BigUint::fromU64(1); // force even
    const BigUint base = randomBits(rng, 256);
    const BigUint exp = randomBits(rng, 64);
    EXPECT_EQ(base.modExp(exp, m), base.modExpLegacy(exp, m));
}

TEST(MontgomeryTest, ContextReuseMatchesOneShot)
{
    Rng rng(0xaa);
    const BigUint m = randomOddModulus(rng, 512);
    const MontgomeryContext ctx(m);
    EXPECT_EQ(ctx.modulus(), m);
    for (int i = 0; i < 8; ++i) {
        const BigUint base = randomBits(rng, 512);
        const BigUint exp = randomBits(rng, 512);
        EXPECT_EQ(base.modExp(exp, ctx), base.modExp(exp, m));
    }
}

TEST(MontgomeryTest, EngineSwitchForcesLegacyEverywhere)
{
    Rng rng(0xbb);
    const BigUint m = randomOddModulus(rng, 256);
    const BigUint base = randomBits(rng, 256);
    const BigUint exp = randomBits(rng, 256);
    const BigUint fast = base.modExp(exp, m);

    ASSERT_EQ(modExpEngine(), ModExpEngine::Montgomery);
    setModExpEngine(ModExpEngine::Legacy);
    const BigUint slow = base.modExp(exp, m);
    setModExpEngine(ModExpEngine::Montgomery);
    EXPECT_EQ(fast, slow);
}

// --- RSA context equivalence ------------------------------------------

const RsaKeyPair &
testKeyPair()
{
    static const RsaKeyPair kp = [] {
        Rng rng(0xcc);
        return rsaGenerateKeyPair(512, rng);
    }();
    return kp;
}

TEST(RsaContextTest, SignaturesInterchangeable)
{
    const RsaKeyPair &kp = testKeyPair();
    const RsaPrivateContext priv(kp.priv);
    const RsaPublicContext pub(kp.pub);
    const Bytes msg = toBytes("context equivalence message");

    const Bytes sigKey = rsaSign(kp.priv, msg);
    const Bytes sigCtx = rsaSign(priv, msg);
    // Deterministic padding: the context path must be byte-identical.
    EXPECT_EQ(sigKey, sigCtx);
    EXPECT_TRUE(rsaVerify(kp.pub, msg, sigCtx));
    EXPECT_TRUE(rsaVerify(pub, msg, sigKey));
    EXPECT_FALSE(rsaVerify(pub, toBytes("other message"), sigCtx));
}

TEST(RsaContextTest, EncryptionInterchangeable)
{
    const RsaKeyPair &kp = testKeyPair();
    const RsaPrivateContext priv(kp.priv);
    const RsaPublicContext pub(kp.pub);
    EXPECT_TRUE(pub.key() == kp.pub);
    Rng rng(0xdd);
    const Bytes msg = toBytes("premaster secret bytes");

    auto c1 = rsaEncrypt(pub, msg, rng);
    ASSERT_TRUE(c1.isOk());
    auto p1 = rsaDecrypt(kp.priv, c1.value());
    ASSERT_TRUE(p1.isOk());
    EXPECT_EQ(p1.value(), msg);

    auto c2 = rsaEncrypt(kp.pub, msg, rng);
    ASSERT_TRUE(c2.isOk());
    auto p2 = rsaDecrypt(priv, c2.value());
    ASSERT_TRUE(p2.isOk());
    EXPECT_EQ(p2.value(), msg);
}

TEST(RsaContextTest, LegacyEngineContextsStayCorrect)
{
    const RsaKeyPair &kp = testKeyPair();
    const Bytes msg = toBytes("legacy engine message");
    setModExpEngine(ModExpEngine::Legacy);
    const RsaPrivateContext priv(kp.priv); // built without Montgomery
    const Bytes sig = rsaSign(priv, msg);
    setModExpEngine(ModExpEngine::Montgomery);
    EXPECT_EQ(sig, rsaSign(kp.priv, msg));
}

} // namespace
} // namespace monatt::crypto
