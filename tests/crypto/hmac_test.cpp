/**
 * @file
 * HMAC-SHA-256 against RFC 4231 vectors; HKDF against RFC 5869.
 */

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "crypto/hmac.h"

namespace monatt::crypto
{
namespace
{

TEST(HmacTest, Rfc4231Case1)
{
    const Bytes key(20, 0x0b);
    const Bytes data = toBytes("Hi There");
    EXPECT_EQ(toHex(hmacSha256(key, data)),
              "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c"
              "2e32cff7");
}

TEST(HmacTest, Rfc4231Case2)
{
    const Bytes key = toBytes("Jefe");
    const Bytes data = toBytes("what do ya want for nothing?");
    EXPECT_EQ(toHex(hmacSha256(key, data)),
              "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b9"
              "64ec3843");
}

TEST(HmacTest, Rfc4231Case3)
{
    const Bytes key(20, 0xaa);
    const Bytes data(50, 0xdd);
    EXPECT_EQ(toHex(hmacSha256(key, data)),
              "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514"
              "ced565fe");
}

TEST(HmacTest, Rfc4231Case6LongKey)
{
    const Bytes key(131, 0xaa);
    const Bytes data =
        toBytes("Test Using Larger Than Block-Size Key - Hash Key First");
    EXPECT_EQ(toHex(hmacSha256(key, data)),
              "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f"
              "0ee37f54");
}

TEST(HmacTest, KeySensitivity)
{
    const Bytes data = toBytes("message");
    EXPECT_NE(hmacSha256(toBytes("key1"), data),
              hmacSha256(toBytes("key2"), data));
}

TEST(HkdfTest, Rfc5869Case1)
{
    const Bytes ikm(22, 0x0b);
    const Bytes salt = fromHex("000102030405060708090a0b0c");
    const Bytes info = fromHex("f0f1f2f3f4f5f6f7f8f9");
    const Bytes okm = hkdf(salt, ikm, info, 42);
    EXPECT_EQ(toHex(okm),
              "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56"
              "ecc4c5bf34007208d5b887185865");
}

TEST(HkdfTest, Rfc5869Case3EmptySaltInfo)
{
    const Bytes ikm(22, 0x0b);
    const Bytes okm = hkdf({}, ikm, {}, 42);
    EXPECT_EQ(toHex(okm),
              "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f"
              "3c738d2d9d201395faa4b61a96c8");
}

TEST(HkdfTest, ExpandLengths)
{
    const Bytes prk = hkdfExtract(toBytes("salt"), toBytes("ikm"));
    for (std::size_t len : {1u, 31u, 32u, 33u, 64u, 100u}) {
        EXPECT_EQ(hkdfExpand(prk, toBytes("ctx"), len).size(), len);
    }
    // Prefix property: shorter outputs are prefixes of longer ones.
    const Bytes long64 = hkdfExpand(prk, toBytes("ctx"), 64);
    const Bytes short32 = hkdfExpand(prk, toBytes("ctx"), 32);
    EXPECT_EQ(Bytes(long64.begin(), long64.begin() + 32), short32);
}

TEST(HkdfTest, InfoSeparatesKeys)
{
    const Bytes prk = hkdfExtract(toBytes("salt"), toBytes("master"));
    EXPECT_NE(hkdfExpand(prk, toBytes("client->server"), 32),
              hkdfExpand(prk, toBytes("server->client"), 32));
}

TEST(HkdfTest, RejectsOversizedRequest)
{
    const Bytes prk = hkdfExtract({}, toBytes("x"));
    EXPECT_THROW(hkdfExpand(prk, {}, 255 * 32 + 1), std::invalid_argument);
}

} // namespace
} // namespace monatt::crypto
