/**
 * @file
 * AES-128 against FIPS 197 appendix vectors and NIST SP 800-38A CTR
 * vectors, plus CTR-mode structural properties.
 */

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "crypto/aes.h"

namespace monatt::crypto
{
namespace
{

TEST(AesTest, Fips197AppendixB)
{
    const Aes128 aes(fromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    Bytes block = fromHex("3243f6a8885a308d313198a2e0370734");
    aes.encryptBlock(block.data());
    EXPECT_EQ(toHex(block), "3925841d02dc09fbdc118597196a0b32");
}

TEST(AesTest, Fips197AppendixC1)
{
    const Aes128 aes(fromHex("000102030405060708090a0b0c0d0e0f"));
    Bytes block = fromHex("00112233445566778899aabbccddeeff");
    aes.encryptBlock(block.data());
    EXPECT_EQ(toHex(block), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

// NIST SP 800-38A F.5.1 CTR-AES128.Encrypt, adapted: that vector uses a
// 16-byte initial counter block f0f1..ff; our CTR layout is a 12-byte
// nonce plus a 32-bit counter starting at zero, so we use the vector's
// first 12 bytes as nonce and check against a counter of f3f4f5ff... —
// instead we verify our own layout against an independently computed
// expectation derived from single-block encryption.
TEST(AesTest, CtrMatchesManualCounterEncryption)
{
    const Bytes key = fromHex("2b7e151628aed2a6abf7158809cf4f3c");
    const Aes128 aes(key);
    const Bytes nonce = fromHex("000102030405060708090a0b");
    const Bytes plain = toBytes("exactly 32 bytes of plaintext!!!");
    ASSERT_EQ(plain.size(), 32u);

    const Bytes cipher = aes.ctrTransform(nonce, plain);
    ASSERT_EQ(cipher.size(), plain.size());

    // Manually build the two counter blocks and keystream.
    for (std::uint32_t blockIdx = 0; blockIdx < 2; ++blockIdx) {
        Bytes counterBlock = nonce;
        counterBlock.push_back(0);
        counterBlock.push_back(0);
        counterBlock.push_back(0);
        counterBlock.push_back(static_cast<std::uint8_t>(blockIdx));
        aes.encryptBlock(counterBlock.data());
        for (std::size_t i = 0; i < 16; ++i) {
            EXPECT_EQ(cipher[16 * blockIdx + i],
                      plain[16 * blockIdx + i] ^ counterBlock[i]);
        }
    }
}

TEST(AesTest, CtrRoundTrip)
{
    const Aes128 aes(fromHex("000102030405060708090a0b0c0d0e0f"));
    const Bytes nonce = fromHex("aabbccddeeff001122334455");
    const Bytes plain = toBytes("CloudMonatt attestation report payload");
    const Bytes cipher = aes.ctrTransform(nonce, plain);
    EXPECT_NE(cipher, plain);
    EXPECT_EQ(aes.ctrTransform(nonce, cipher), plain);
}

TEST(AesTest, CtrDistinctNoncesDistinctStreams)
{
    const Aes128 aes(fromHex("000102030405060708090a0b0c0d0e0f"));
    const Bytes plain(64, 0x00);
    const Bytes c1 = aes.ctrTransform(fromHex("000000000000000000000001"),
                                      plain);
    const Bytes c2 = aes.ctrTransform(fromHex("000000000000000000000002"),
                                      plain);
    EXPECT_NE(c1, c2);
}

TEST(AesTest, CtrEmptyAndPartialBlocks)
{
    const Aes128 aes(fromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    const Bytes nonce = fromHex("000102030405060708090a0b");
    EXPECT_TRUE(aes.ctrTransform(nonce, {}).empty());

    for (std::size_t len : {1u, 15u, 16u, 17u, 33u, 100u}) {
        Bytes plain(len, 0x5a);
        const Bytes cipher = aes.ctrTransform(nonce, plain);
        EXPECT_EQ(cipher.size(), len);
        EXPECT_EQ(aes.ctrTransform(nonce, cipher), plain);
    }
}

TEST(AesTest, RejectsBadKeyAndNonceSizes)
{
    EXPECT_THROW(Aes128(Bytes(15, 0)), std::invalid_argument);
    EXPECT_THROW(Aes128(Bytes(17, 0)), std::invalid_argument);
    const Aes128 aes(Bytes(16, 0));
    EXPECT_THROW(aes.ctrTransform(Bytes(11, 0), Bytes(4, 0)),
                 std::invalid_argument);
}

} // namespace
} // namespace monatt::crypto
