/**
 * @file
 * RSA sign/verify/encrypt/decrypt correctness and negative paths
 * (forged signatures, tampered messages, wrong keys), at the key sizes
 * used by the Trust Module.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/rsa.h"

namespace monatt::crypto
{
namespace
{

/** Shared 512-bit pair; generated once to keep the suite fast. */
const RsaKeyPair &
testPair()
{
    static const RsaKeyPair pair = [] {
        Rng rng(20150613); // ISCA'15 dates, fixed for reproducibility.
        return rsaGenerateKeyPair(512, rng);
    }();
    return pair;
}

const RsaKeyPair &
otherPair()
{
    static const RsaKeyPair pair = [] {
        Rng rng(20150617);
        return rsaGenerateKeyPair(512, rng);
    }();
    return pair;
}

TEST(RsaTest, KeyGenProducesValidPair)
{
    const RsaKeyPair &kp = testPair();
    EXPECT_EQ(kp.pub.n.bitLength(), 512u);
    EXPECT_EQ(kp.pub.e, BigUint::fromU64(65537));
    EXPECT_EQ(kp.priv.p * kp.priv.q, kp.pub.n);
    // e*d = 1 mod (p-1)(q-1).
    const BigUint phi = (kp.priv.p - BigUint::fromU64(1)) *
                        (kp.priv.q - BigUint::fromU64(1));
    EXPECT_EQ((kp.pub.e * kp.priv.d) % phi, BigUint::fromU64(1));
}

TEST(RsaTest, SignVerifyRoundTrip)
{
    const Bytes msg = toBytes("attestation report R for VM vid-42");
    const Bytes sig = rsaSign(testPair().priv, msg);
    EXPECT_EQ(sig.size(), testPair().pub.modulusBytes());
    EXPECT_TRUE(rsaVerify(testPair().pub, msg, sig));
}

TEST(RsaTest, VerifyRejectsTamperedMessage)
{
    const Bytes msg = toBytes("healthy");
    const Bytes sig = rsaSign(testPair().priv, msg);
    EXPECT_FALSE(rsaVerify(testPair().pub, toBytes("unhealthy"), sig));
}

TEST(RsaTest, VerifyRejectsTamperedSignature)
{
    const Bytes msg = toBytes("report");
    Bytes sig = rsaSign(testPair().priv, msg);
    sig[sig.size() / 2] ^= 0x01;
    EXPECT_FALSE(rsaVerify(testPair().pub, msg, sig));
}

TEST(RsaTest, VerifyRejectsWrongKey)
{
    const Bytes msg = toBytes("report");
    const Bytes sig = rsaSign(testPair().priv, msg);
    EXPECT_FALSE(rsaVerify(otherPair().pub, msg, sig));
}

TEST(RsaTest, VerifyRejectsWrongLength)
{
    const Bytes msg = toBytes("report");
    Bytes sig = rsaSign(testPair().priv, msg);
    sig.pop_back();
    EXPECT_FALSE(rsaVerify(testPair().pub, msg, sig));
    sig.push_back(0);
    sig.push_back(0);
    EXPECT_FALSE(rsaVerify(testPair().pub, msg, sig));
}

TEST(RsaTest, CrtMatchesPlainExponentiation)
{
    Rng rng(99);
    const BigUint m = BigUint::randomBelow(testPair().pub.n, rng);
    RsaPrivateKey noCrt = testPair().priv;
    noCrt.p = BigUint();
    noCrt.q = BigUint();
    EXPECT_EQ(testPair().priv.decryptRaw(m), noCrt.decryptRaw(m));
}

TEST(RsaTest, EncryptDecryptRoundTrip)
{
    Rng rng(7);
    const Bytes msg = toBytes("session key material 0123456789");
    auto cipher = rsaEncrypt(testPair().pub, msg, rng);
    ASSERT_TRUE(cipher.isOk());
    auto plain = rsaDecrypt(testPair().priv, cipher.value());
    ASSERT_TRUE(plain.isOk());
    EXPECT_EQ(plain.value(), msg);
}

TEST(RsaTest, EncryptIsRandomized)
{
    Rng rng(7);
    const Bytes msg = toBytes("same message");
    auto c1 = rsaEncrypt(testPair().pub, msg, rng);
    auto c2 = rsaEncrypt(testPair().pub, msg, rng);
    ASSERT_TRUE(c1.isOk() && c2.isOk());
    EXPECT_NE(c1.value(), c2.value());
}

TEST(RsaTest, EncryptRejectsOversizedMessage)
{
    Rng rng(7);
    const Bytes msg(testPair().pub.modulusBytes() - 10, 0x41);
    EXPECT_FALSE(rsaEncrypt(testPair().pub, msg, rng).isOk());
}

TEST(RsaTest, DecryptRejectsWrongKeyGarbage)
{
    Rng rng(7);
    const Bytes msg = toBytes("secret");
    auto cipher = rsaEncrypt(testPair().pub, msg, rng);
    ASSERT_TRUE(cipher.isOk());
    auto plain = rsaDecrypt(otherPair().priv, cipher.value());
    // Either padding check fails, or it "succeeds" with different bytes.
    if (plain.isOk()) {
        EXPECT_NE(plain.value(), msg);
    }
}

TEST(RsaTest, DecryptRejectsBadLength)
{
    EXPECT_FALSE(rsaDecrypt(testPair().priv, Bytes(3, 0x01)).isOk());
}

TEST(RsaTest, PublicKeyEncodeDecodeRoundTrip)
{
    const Bytes enc = testPair().pub.encode();
    auto dec = RsaPublicKey::decode(enc);
    ASSERT_TRUE(dec.isOk());
    EXPECT_EQ(dec.value(), testPair().pub);
}

TEST(RsaTest, PublicKeyDecodeRejectsMalformed)
{
    EXPECT_FALSE(RsaPublicKey::decode(Bytes{0x01, 0x02}).isOk());
    Bytes enc = testPair().pub.encode();
    enc.push_back(0x00); // Trailing garbage.
    EXPECT_FALSE(RsaPublicKey::decode(enc).isOk());
}

TEST(RsaTest, KeyGenRejectsBadSizes)
{
    Rng rng(1);
    EXPECT_THROW(rsaGenerateKeyPair(128, rng), std::invalid_argument);
    EXPECT_THROW(rsaGenerateKeyPair(513, rng), std::invalid_argument);
}

TEST(RsaTest, DistinctSeedsDistinctKeys)
{
    Rng a(1), b(2);
    const RsaKeyPair ka = rsaGenerateKeyPair(256, a);
    const RsaKeyPair kb = rsaGenerateKeyPair(256, b);
    EXPECT_NE(ka.pub.n, kb.pub.n);
}

} // namespace
} // namespace monatt::crypto
