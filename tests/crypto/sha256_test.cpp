/**
 * @file
 * SHA-256 correctness against FIPS 180-4 / NIST CAVP vectors, plus
 * incremental-update and structural properties.
 */

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace monatt::crypto
{
namespace
{

TEST(Sha256Test, EmptyString)
{
    EXPECT_EQ(toHex(Sha256::hash({})),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b"
              "7852b855");
}

TEST(Sha256Test, Abc)
{
    EXPECT_EQ(toHex(Sha256::hash(toBytes("abc"))),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61"
              "f20015ad");
}

TEST(Sha256Test, TwoBlockMessage)
{
    const Bytes msg = toBytes(
        "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
    EXPECT_EQ(toHex(Sha256::hash(msg)),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd4"
              "19db06c1");
}

TEST(Sha256Test, MillionA)
{
    Sha256 ctx;
    const Bytes chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i)
        ctx.update(chunk);
    EXPECT_EQ(toHex(ctx.digest()),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39cc"
              "c7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot)
{
    const Bytes msg = toBytes("The quick brown fox jumps over the lazy dog");
    for (std::size_t split = 0; split <= msg.size(); ++split) {
        Sha256 ctx;
        ctx.update(Bytes(msg.begin(), msg.begin() + split));
        ctx.update(Bytes(msg.begin() + split, msg.end()));
        EXPECT_EQ(ctx.digest(), Sha256::hash(msg)) << "split=" << split;
    }
}

TEST(Sha256Test, ContextResetsAfterDigest)
{
    Sha256 ctx;
    ctx.update(toBytes("abc"));
    const Bytes first = ctx.digest();
    ctx.update(toBytes("abc"));
    EXPECT_EQ(ctx.digest(), first);
}

TEST(Sha256Test, HashConcatMatchesManualConcat)
{
    const Bytes a = toBytes("hello");
    const Bytes b = toBytes("world");
    const Bytes both = concat({&a, &b});
    EXPECT_EQ(Sha256::hashConcat({&a, &b}), Sha256::hash(both));
}

TEST(Sha256Test, DistinctInputsDistinctDigests)
{
    EXPECT_NE(Sha256::hash(toBytes("a")), Sha256::hash(toBytes("b")));
    EXPECT_NE(Sha256::hash(toBytes("")), Sha256::hash(Bytes{0x00}));
}

// Every message length near the 64-byte block boundary must pad
// correctly; compare against the incremental path byte by byte.
class Sha256PaddingTest : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(Sha256PaddingTest, LengthBoundary)
{
    const std::size_t len = GetParam();
    Bytes msg(len);
    for (std::size_t i = 0; i < len; ++i)
        msg[i] = static_cast<std::uint8_t>(i * 31 + 7);

    // One-shot.
    const Bytes d1 = Sha256::hash(msg);
    // Byte-at-a-time incremental.
    Sha256 ctx;
    for (std::uint8_t b : msg)
        ctx.update(&b, 1);
    EXPECT_EQ(ctx.digest(), d1) << "len=" << len;
    EXPECT_EQ(d1.size(), kSha256DigestSize);
}

INSTANTIATE_TEST_SUITE_P(BlockBoundaries, Sha256PaddingTest,
                         ::testing::Values(0, 1, 54, 55, 56, 57, 63, 64,
                                           65, 119, 120, 127, 128, 129,
                                           255, 256));

} // namespace
} // namespace monatt::crypto
