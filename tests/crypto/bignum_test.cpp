/**
 * @file
 * BigUint arithmetic: fixed vectors plus randomized algebraic
 * property sweeps (the division identity a = qb + r is the critical
 * invariant backing RSA correctness).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/bignum.h"

namespace monatt::crypto
{
namespace
{

TEST(BigUintTest, ZeroBasics)
{
    const BigUint zero;
    EXPECT_TRUE(zero.isZero());
    EXPECT_EQ(zero.bitLength(), 0u);
    EXPECT_EQ(zero.toHexString(), "0");
    EXPECT_EQ(zero.toBytes(), Bytes{0x00});
}

TEST(BigUintTest, FromU64RoundTrip)
{
    for (std::uint64_t v :
         {0ULL, 1ULL, 255ULL, 256ULL, 0xffffffffULL, 0x100000000ULL,
          0xdeadbeefcafebabeULL, 0xffffffffffffffffULL}) {
        const BigUint b = BigUint::fromU64(v);
        EXPECT_EQ(BigUint::fromBytes(b.toBytes()), b) << v;
    }
}

TEST(BigUintTest, HexRoundTrip)
{
    const std::string hex = "123456789abcdef0fedcba9876543210";
    EXPECT_EQ(BigUint::fromHexString(hex).toHexString(), hex);
    EXPECT_EQ(BigUint::fromHexString("0").toHexString(), "0");
    EXPECT_EQ(BigUint::fromHexString("00ff").toHexString(), "ff");
}

TEST(BigUintTest, AdditionKnownValues)
{
    const BigUint a = BigUint::fromHexString("ffffffffffffffff");
    const BigUint one = BigUint::fromU64(1);
    EXPECT_EQ((a + one).toHexString(), "10000000000000000");
}

TEST(BigUintTest, SubtractionUnderflowThrows)
{
    EXPECT_THROW(BigUint::fromU64(1) - BigUint::fromU64(2),
                 std::underflow_error);
}

TEST(BigUintTest, MultiplicationKnownValues)
{
    const BigUint a = BigUint::fromHexString("ffffffff");
    EXPECT_EQ((a * a).toHexString(), "fffffffe00000001");
    const BigUint big = BigUint::fromHexString(
        "123456789abcdef0123456789abcdef0");
    EXPECT_EQ((big * BigUint::fromU64(0)).toHexString(), "0");
    EXPECT_EQ((big * BigUint::fromU64(1)), big);
}

TEST(BigUintTest, DivisionByZeroThrows)
{
    EXPECT_THROW(BigUint::fromU64(5) / BigUint(), std::domain_error);
}

TEST(BigUintTest, DivisionKnownValues)
{
    const BigUint n = BigUint::fromHexString(
        "fedcba9876543210fedcba9876543210");
    const BigUint d = BigUint::fromHexString("123456789");
    auto [q, r] = BigUint::divmod(n, d);
    EXPECT_EQ(q * d + r, n);
    EXPECT_TRUE(r < d);
}

TEST(BigUintTest, ShiftRoundTrip)
{
    const BigUint v = BigUint::fromHexString("deadbeef12345678");
    for (std::size_t s : {1u, 7u, 31u, 32u, 33u, 64u, 100u}) {
        EXPECT_EQ(v.shiftLeft(s).shiftRight(s), v) << s;
    }
    EXPECT_TRUE(v.shiftRight(100).isZero());
}

TEST(BigUintTest, ModExpSmallValues)
{
    // 3^7 mod 5 = 2187 mod 5 = 2.
    EXPECT_EQ(BigUint::fromU64(3).modExp(BigUint::fromU64(7),
                                         BigUint::fromU64(5)),
              BigUint::fromU64(2));
    // Fermat: a^(p-1) = 1 mod p for prime p.
    const BigUint p = BigUint::fromU64(1000003);
    EXPECT_EQ(BigUint::fromU64(12345).modExp(p - BigUint::fromU64(1), p),
              BigUint::fromU64(1));
}

TEST(BigUintTest, GcdKnownValues)
{
    EXPECT_EQ(BigUint::gcd(BigUint::fromU64(48), BigUint::fromU64(36)),
              BigUint::fromU64(12));
    EXPECT_EQ(BigUint::gcd(BigUint::fromU64(17), BigUint::fromU64(13)),
              BigUint::fromU64(1));
}

TEST(BigUintTest, ModInverseKnownValues)
{
    // 3 * 5 = 15 = 1 mod 7.
    EXPECT_EQ(BigUint::fromU64(3).modInverse(BigUint::fromU64(7)),
              BigUint::fromU64(5));
    EXPECT_THROW(BigUint::fromU64(6).modInverse(BigUint::fromU64(9)),
                 std::domain_error);
}

TEST(BigUintTest, PrimalityKnownValues)
{
    Rng rng(42);
    EXPECT_FALSE(BigUint::fromU64(0).isProbablePrime(rng));
    EXPECT_FALSE(BigUint::fromU64(1).isProbablePrime(rng));
    EXPECT_TRUE(BigUint::fromU64(2).isProbablePrime(rng));
    EXPECT_TRUE(BigUint::fromU64(3).isProbablePrime(rng));
    EXPECT_FALSE(BigUint::fromU64(4).isProbablePrime(rng));
    EXPECT_TRUE(BigUint::fromU64(104729).isProbablePrime(rng));
    EXPECT_FALSE(BigUint::fromU64(104731).isProbablePrime(rng));
    // Carmichael number 561 = 3 * 11 * 17 must be rejected.
    EXPECT_FALSE(BigUint::fromU64(561).isProbablePrime(rng));
    // Large known prime: 2^61 - 1.
    EXPECT_TRUE(BigUint::fromU64((1ULL << 61) - 1).isProbablePrime(rng));
}

TEST(BigUintTest, GeneratePrimeHasRequestedSize)
{
    Rng rng(7);
    const BigUint p = BigUint::generatePrime(128, rng);
    EXPECT_EQ(p.bitLength(), 128u);
    EXPECT_TRUE(p.isOdd());
}

// Randomized algebraic properties over a sweep of bit widths. These
// exercise the Knuth division hot paths (normalization, qhat
// correction, add-back) that fixed vectors rarely reach.
class BigUintPropertyTest : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(BigUintPropertyTest, DivisionIdentity)
{
    const std::size_t bits = GetParam();
    Rng rng(bits * 7919 + 13);
    for (int i = 0; i < 50; ++i) {
        const BigUint a = BigUint::randomWithBits(bits, rng);
        const std::size_t dbits = 1 + rng.nextBounded(bits);
        BigUint b = BigUint::randomWithBits(dbits, rng);
        if (b.isZero())
            b = BigUint::fromU64(1);
        auto [q, r] = BigUint::divmod(a, b);
        EXPECT_EQ(q * b + r, a);
        EXPECT_TRUE(r < b);
    }
}

TEST_P(BigUintPropertyTest, AddSubInverse)
{
    const std::size_t bits = GetParam();
    Rng rng(bits * 104729 + 1);
    for (int i = 0; i < 50; ++i) {
        const BigUint a = BigUint::randomWithBits(bits, rng);
        const BigUint b = BigUint::randomWithBits(bits, rng);
        EXPECT_EQ((a + b) - b, a);
        EXPECT_EQ((a + b) - a, b);
    }
}

TEST_P(BigUintPropertyTest, MulDistributesOverAdd)
{
    const std::size_t bits = GetParam();
    Rng rng(bits * 31337 + 5);
    for (int i = 0; i < 20; ++i) {
        const BigUint a = BigUint::randomWithBits(bits, rng);
        const BigUint b = BigUint::randomWithBits(bits / 2 + 1, rng);
        const BigUint c = BigUint::randomWithBits(bits / 2 + 1, rng);
        EXPECT_EQ(a * (b + c), a * b + a * c);
    }
}

TEST_P(BigUintPropertyTest, ModExpMatchesNaive)
{
    const std::size_t bits = GetParam();
    Rng rng(bits * 65537 + 3);
    const BigUint m = BigUint::randomWithBits(std::min<std::size_t>(bits,
                                                                    48),
                                              rng);
    const BigUint base = BigUint::randomWithBits(16, rng);
    const std::uint64_t exp = rng.nextBounded(30) + 1;
    BigUint naive = BigUint::fromU64(1);
    for (std::uint64_t i = 0; i < exp; ++i)
        naive = (naive * base) % m;
    EXPECT_EQ(base.modExp(BigUint::fromU64(exp), m), naive);
}

TEST_P(BigUintPropertyTest, ModInverseRoundTrip)
{
    const std::size_t bits = GetParam();
    Rng rng(bits * 11 + 29);
    const BigUint m = BigUint::generatePrime(std::min<std::size_t>(bits,
                                                                   96),
                                             rng);
    for (int i = 0; i < 10; ++i) {
        const BigUint a = BigUint::randomBelow(m, rng);
        const BigUint inv = a.modInverse(m);
        EXPECT_EQ((a * inv) % m, BigUint::fromU64(1));
    }
}

INSTANTIATE_TEST_SUITE_P(BitWidths, BigUintPropertyTest,
                         ::testing::Values(16, 33, 64, 96, 128, 192, 256,
                                           512));

TEST(BigUintTest, ByteRoundTripWithWidth)
{
    const BigUint v = BigUint::fromHexString("abcd");
    const Bytes padded = v.toBytes(8);
    EXPECT_EQ(padded.size(), 8u);
    EXPECT_EQ(toHex(padded), "000000000000abcd");
    EXPECT_EQ(BigUint::fromBytes(padded), v);
    EXPECT_THROW(v.toBytes(1), std::invalid_argument);
}

} // namespace
} // namespace monatt::crypto
