/**
 * @file
 * Property interpreters: the semantic-gap bridge of §4, unit tested
 * against synthetic measurement sets for all four case studies.
 */

#include <gtest/gtest.h>

#include "attestation/interpreters.h"
#include "core/cloud.h"
#include "crypto/sha256.h"

namespace monatt::attestation
{
namespace
{

using proto::HealthStatus;
using proto::Measurement;
using proto::MeasurementSet;
using proto::MeasurementType;
using proto::SecurityProperty;

// --- Startup integrity (§4.2) -----------------------------------------

struct StartupFixture
{
    ServerReference serverRef;
    VmReference vmRef;
    std::set<Bytes> knownGood;
    StartupIntegrityInterpreter interp;

    StartupFixture()
    {
        serverRef.expectedPlatformDigest = core::expectedPlatformDigest(
            toBytes("hv"), toBytes("os"));
        vmRef.expectedImageDigest = crypto::Sha256::hash(toBytes("img"));
        knownGood.insert(crypto::Sha256::hash(toBytes("catalog-img")));
    }

    InterpretationContext
    ctx()
    {
        InterpretationContext c;
        c.serverRef = &serverRef;
        c.vmRef = &vmRef;
        c.knownGoodImages = &knownGood;
        return c;
    }

    static MeasurementSet
    measurements(const Bytes &platformDigest, const Bytes &imageDigest)
    {
        MeasurementSet set;
        Measurement pcrs;
        pcrs.type = MeasurementType::PlatformPcrs;
        pcrs.digest = platformDigest;
        set.items.push_back(pcrs);
        Measurement image;
        image.type = MeasurementType::VmImageDigest;
        image.digest = imageDigest;
        set.items.push_back(image);
        return set;
    }
};

TEST(StartupIntegrityTest, HealthyWhenBothMatch)
{
    StartupFixture f;
    const auto m = StartupFixture::measurements(
        f.serverRef.expectedPlatformDigest,
        f.vmRef.expectedImageDigest);
    EXPECT_EQ(f.interp.interpret(m, f.ctx()).status,
              HealthStatus::Healthy);
}

TEST(StartupIntegrityTest, PlatformMismatchNamesPlatform)
{
    StartupFixture f;
    const auto m = StartupFixture::measurements(
        Bytes(64, 0xab), f.vmRef.expectedImageDigest);
    const auto r = f.interp.interpret(m, f.ctx());
    EXPECT_EQ(r.status, HealthStatus::Compromised);
    EXPECT_NE(r.detail.find("platform"), std::string::npos)
        << "the response module keys §5.1's reschedule on this";
}

TEST(StartupIntegrityTest, ImageMismatchNamesImage)
{
    StartupFixture f;
    const auto m = StartupFixture::measurements(
        f.serverRef.expectedPlatformDigest, Bytes(32, 0xcd));
    const auto r = f.interp.interpret(m, f.ctx());
    EXPECT_EQ(r.status, HealthStatus::Compromised);
    EXPECT_NE(r.detail.find("image"), std::string::npos);
}

TEST(StartupIntegrityTest, KnownGoodCatalogAccepted)
{
    StartupFixture f;
    f.vmRef.expectedImageDigest.clear(); // No per-VM reference.
    const auto m = StartupFixture::measurements(
        f.serverRef.expectedPlatformDigest,
        crypto::Sha256::hash(toBytes("catalog-img")));
    EXPECT_EQ(f.interp.interpret(m, f.ctx()).status,
              HealthStatus::Healthy);
}

TEST(StartupIntegrityTest, UnknownWithoutReferences)
{
    StartupFixture f;
    const auto m = StartupFixture::measurements(Bytes(64, 0), Bytes(32, 0));
    InterpretationContext empty;
    EXPECT_EQ(f.interp.interpret(m, empty).status,
              HealthStatus::Unknown);
    EXPECT_EQ(f.interp.interpret(MeasurementSet{}, f.ctx()).status,
              HealthStatus::Unknown);
}

// --- Runtime integrity (§4.3) ------------------------------------------

MeasurementSet
taskLists(const std::vector<std::string> &vmi,
          const std::vector<std::string> &guest)
{
    MeasurementSet set;
    Measurement a;
    a.type = MeasurementType::TaskListVmi;
    a.strings = vmi;
    set.items.push_back(a);
    Measurement b;
    b.type = MeasurementType::TaskListGuest;
    b.strings = guest;
    set.items.push_back(b);
    return set;
}

TEST(RuntimeIntegrityTest, ConsistentListsHealthy)
{
    RuntimeIntegrityInterpreter interp;
    const auto m = taskLists({"init", "sshd"}, {"init", "sshd"});
    EXPECT_EQ(interp.interpret(m, {}).status, HealthStatus::Healthy);
}

TEST(RuntimeIntegrityTest, HiddenProcessDetected)
{
    RuntimeIntegrityInterpreter interp;
    const auto m = taskLists({"init", "rootkit", "sshd"},
                             {"init", "sshd"});
    const auto r = interp.interpret(m, {});
    EXPECT_EQ(r.status, HealthStatus::Compromised);
    EXPECT_NE(r.detail.find("rootkit"), std::string::npos);
}

TEST(RuntimeIntegrityTest, AllowListViolationDetected)
{
    RuntimeIntegrityInterpreter interp;
    VmReference ref;
    ref.expectedTasks = {"init", "sshd"};
    InterpretationContext ctx;
    ctx.vmRef = &ref;
    // Visible to both lists, but not on the declared service list.
    const auto m = taskLists({"init", "sshd", "cryptominer"},
                             {"init", "sshd", "cryptominer"});
    const auto r = interp.interpret(m, ctx);
    EXPECT_EQ(r.status, HealthStatus::Compromised);
    EXPECT_NE(r.detail.find("cryptominer"), std::string::npos);
}

TEST(RuntimeIntegrityTest, MissingMeasurementsUnknown)
{
    RuntimeIntegrityInterpreter interp;
    EXPECT_EQ(interp.interpret(MeasurementSet{}, {}).status,
              HealthStatus::Unknown);
}

// --- Covert channel (§4.4) -----------------------------------------------

MeasurementSet
histogramMeasurement(const std::vector<std::uint64_t> &counts)
{
    MeasurementSet set;
    Measurement m;
    m.type = MeasurementType::UsageIntervalHistogram;
    m.values = counts;
    m.windowLength = seconds(10);
    set.items.push_back(m);
    return set;
}

TEST(CovertChannelTest, BimodalFlagged)
{
    CovertChannelInterpreter interp;
    std::vector<std::uint64_t> counts(30, 0);
    counts[4] = 120; // 5 ms bit.
    counts[23] = 110; // 24 ms bit.
    const auto r = interp.interpret(histogramMeasurement(counts), {});
    EXPECT_EQ(r.status, HealthStatus::Compromised);
}

TEST(CovertChannelTest, UnimodalHealthy)
{
    CovertChannelInterpreter interp;
    std::vector<std::uint64_t> counts(30, 0);
    counts[29] = 300;
    counts[28] = 20;
    const auto r = interp.interpret(histogramMeasurement(counts), {});
    EXPECT_EQ(r.status, HealthStatus::Healthy) << r.detail;
}

TEST(CovertChannelTest, TooFewSamplesUnknown)
{
    CovertChannelInterpreter interp;
    std::vector<std::uint64_t> counts(30, 0);
    counts[4] = 3;
    counts[23] = 3;
    EXPECT_EQ(interp.interpret(histogramMeasurement(counts), {}).status,
              HealthStatus::Unknown);
}

TEST(CovertChannelTest, NoiseAroundOnePeakStaysHealthy)
{
    CovertChannelInterpreter interp;
    std::vector<std::uint64_t> counts(30, 1); // Light uniform noise.
    counts[29] = 400;
    EXPECT_EQ(interp.interpret(histogramMeasurement(counts), {}).status,
              HealthStatus::Healthy);
}

// --- CPU availability (§4.5) ---------------------------------------------

MeasurementSet
cpuMeasurement(SimTime runtime, SimTime window)
{
    MeasurementSet set;
    Measurement m;
    m.type = MeasurementType::CpuMeasure;
    m.values = {static_cast<std::uint64_t>(runtime)};
    m.windowLength = window;
    set.items.push_back(m);
    return set;
}

TEST(CpuAvailabilityTest, FairShareHealthy)
{
    CpuAvailabilityInterpreter interp;
    const auto r = interp.interpret(
        cpuMeasurement(seconds(5), seconds(10)), {});
    EXPECT_EQ(r.status, HealthStatus::Healthy);
}

TEST(CpuAvailabilityTest, StarvationCompromised)
{
    CpuAvailabilityInterpreter interp;
    const auto r = interp.interpret(
        cpuMeasurement(msec(600), seconds(10)), {});
    EXPECT_EQ(r.status, HealthStatus::Compromised);
}

TEST(CpuAvailabilityTest, SlaFloorFromVmReference)
{
    CpuAvailabilityInterpreter interp;
    VmReference ref;
    ref.slaMinCpuShare = 0.8; // Dedicated-core SLA.
    InterpretationContext ctx;
    ctx.vmRef = &ref;
    // 50% would pass the default floor but violates this SLA.
    EXPECT_EQ(interp
                  .interpret(cpuMeasurement(seconds(5), seconds(10)),
                             ctx)
                  .status,
              HealthStatus::Compromised);
}

TEST(CpuAvailabilityTest, MissingDataUnknown)
{
    CpuAvailabilityInterpreter interp;
    EXPECT_EQ(interp.interpret(MeasurementSet{}, {}).status,
              HealthStatus::Unknown);
    EXPECT_EQ(interp.interpret(cpuMeasurement(seconds(1), 0), {}).status,
              HealthStatus::Unknown);
}

// --- Registry -------------------------------------------------------------

TEST(RegistryTest, DefaultsCoverAllProperties)
{
    const InterpreterRegistry reg = InterpreterRegistry::withDefaults();
    for (SecurityProperty p : proto::allProperties())
        EXPECT_NE(reg.find(p), nullptr) << propertyName(p);
}

TEST(RegistryTest, UnregisteredPropertyIsUnknown)
{
    InterpreterRegistry reg;
    const auto r = reg.interpret(SecurityProperty::RuntimeIntegrity,
                                 MeasurementSet{}, {});
    EXPECT_EQ(r.status, HealthStatus::Unknown);
    EXPECT_NE(r.detail.find("no interpreter"), std::string::npos);
}

TEST(RegistryTest, CustomInterpreterExtensibility)
{
    // §4.1: "new methods can easily be integrated into the CloudMonatt
    // framework" — replace the availability interpreter with a strict
    // one and observe the changed verdict.
    struct StrictAvailability : PropertyInterpreter
    {
        SecurityProperty
        property() const override
        {
            return SecurityProperty::CpuAvailability;
        }
        proto::PropertyResult
        interpret(const MeasurementSet &,
                  const InterpretationContext &) const override
        {
            proto::PropertyResult r;
            r.property = property();
            r.status = HealthStatus::Compromised;
            r.detail = "strict: always fails";
            return r;
        }
    };

    InterpreterRegistry reg = InterpreterRegistry::withDefaults();
    reg.add(std::make_unique<StrictAvailability>());
    const auto r = reg.interpret(SecurityProperty::CpuAvailability,
                                 cpuMeasurement(seconds(9), seconds(10)),
                                 {});
    EXPECT_EQ(r.status, HealthStatus::Compromised);
}

} // namespace
} // namespace monatt::attestation
