/**
 * @file
 * The certificate verification cache: unit tests of the FIFO cache
 * itself, plus an end-to-end fixture proving the §3.4 semantics are
 * preserved — a reused certificate hits the cache with a byte-identical
 * verdict, while a tampered certificate misses the cache, fails cold
 * verification, and still yields an authentic report with every
 * property Unknown.
 */

#include <gtest/gtest.h>

#include "attestation/attestation_server.h"
#include "attestation/cert_cache.h"
#include "crypto/sha256.h"
#include "net/secure_endpoint.h"
#include "proto/messages.h"
#include "sim/event_queue.h"
#include "tpm/certificate.h"

namespace monatt::attestation
{
namespace
{

using proto::HealthStatus;
using proto::MessageKind;

crypto::RsaKeyPair
generate(std::uint64_t seed)
{
    Rng rng(seed);
    return crypto::rsaGenerateKeyPair(512, rng);
}

crypto::RsaPublicKey
keyFor(std::uint64_t seed)
{
    return generate(seed).pub;
}

TEST(CertVerificationCacheTest, LookupInsertAndCounters)
{
    CertVerificationCache cache(4);
    const Bytes d1 = crypto::Sha256::hash(toBytes("cert-1"));

    EXPECT_EQ(cache.lookup(d1), nullptr);
    EXPECT_EQ(cache.stats().misses, 1u);

    const crypto::RsaPublicKey k1 = keyFor(1);
    cache.insert(d1, k1);
    EXPECT_EQ(cache.size(), 1u);
    const crypto::RsaPublicKey *hit = cache.lookup(d1);
    ASSERT_NE(hit, nullptr);
    EXPECT_TRUE(*hit == k1);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(CertVerificationCacheTest, FifoEvictionAtCapacity)
{
    CertVerificationCache cache(2);
    const crypto::RsaPublicKey k = keyFor(2);
    const Bytes d1 = crypto::Sha256::hash(toBytes("a"));
    const Bytes d2 = crypto::Sha256::hash(toBytes("b"));
    const Bytes d3 = crypto::Sha256::hash(toBytes("c"));

    cache.insert(d1, k);
    cache.insert(d2, k);
    cache.insert(d3, k); // evicts d1 (FIFO)
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.lookup(d1), nullptr);
    EXPECT_NE(cache.lookup(d2), nullptr);
    EXPECT_NE(cache.lookup(d3), nullptr);
}

TEST(CertVerificationCacheTest, DuplicateDigestUpdatesInPlace)
{
    CertVerificationCache cache(2);
    const Bytes d = crypto::Sha256::hash(toBytes("dup"));
    cache.insert(d, keyFor(3));
    cache.insert(d, keyFor(4));
    EXPECT_EQ(cache.size(), 1u);
    const crypto::RsaPublicKey *hit = cache.lookup(d);
    ASSERT_NE(hit, nullptr);
    EXPECT_TRUE(*hit == keyFor(4));
}

TEST(CertVerificationCacheTest, ClearEmptiesEntries)
{
    CertVerificationCache cache(2);
    cache.insert(crypto::Sha256::hash(toBytes("x")), keyFor(5));
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
}

TEST(CertVerificationCacheTest, ZeroCapacityClampsToOne)
{
    CertVerificationCache cache(0);
    EXPECT_GE(cache.capacity(), 1u);
    cache.insert(crypto::Sha256::hash(toBytes("y")), keyFor(6));
    EXPECT_EQ(cache.size(), 1u);
}

// --- End-to-end: §3.4 semantics through the Attestation Server --------

/**
 * A minimal message-driven deployment: the real AttestationServer plus
 * hand-rolled "cloud-controller" and "server-1" endpoints, with the
 * fixture playing privacy CA (it holds the pCA private key and crafts
 * AVK certificates directly).
 */
class CertCacheEndToEnd : public ::testing::Test
{
  protected:
    explicit CertCacheEndToEnd(AttestationServerConfig cfg = {})
        : network(events),
          pcaKeys(generate(0x9c4)),
          aik(generate(0xa1c)),
          controllerKeys(generate(0xcc1)),
          serverKeys(generate(0x5e1)),
          as(events, network, dir, std::move(cfg), 42),
          controller(network, "cloud-controller", controllerKeys, dir,
                     toBytes("controller-seed")),
          server(network, "server-1", serverKeys, dir,
                 toBytes("server-seed"))
    {
        dir.publish("privacy-ca", pcaKeys.pub);
        dir.publish(as.id(), as.identityPublic());
        dir.publish("cloud-controller", controllerKeys.pub);
        dir.publish("server-1", serverKeys.pub);

        controller.onMessage([this](const net::NodeId &, const Bytes &msg) {
            auto unpacked = proto::unpackMessage(msg);
            if (unpacked &&
                unpacked.value().kind == MessageKind::ReportToController) {
                auto rep = proto::ReportToController::decode(
                    unpacked.value().body);
                if (rep)
                    reports.push_back(rep.take());
            }
        });
        server.onMessage([this](const net::NodeId &, const Bytes &msg) {
            auto unpacked = proto::unpackMessage(msg);
            if (unpacked &&
                unpacked.value().kind == MessageKind::MeasureRequest) {
                auto req =
                    proto::MeasureRequest::decode(unpacked.value().body);
                if (req)
                    measureRequests.push_back(req.take());
            }
        });
    }

    /** A pCA certificate over the fixture AIK. */
    Bytes issueAikCert()
    {
        return tpm::issueCertificate("aik-e2e", aik.pub, "privacy-ca", 7,
                                     pcaKeys.priv)
            .encode();
    }

    /** Forward one attestation request and capture the MeasureRequest
     * the Attestation Server emits toward "server-1". */
    proto::MeasureRequest forwardAndCapture(std::uint64_t requestId)
    {
        proto::AttestForward fwd;
        fwd.requestId = requestId;
        fwd.vid = "vm-1";
        fwd.serverId = "server-1";
        fwd.properties = {proto::SecurityProperty::CpuAvailability};
        fwd.nonce2 = toBytes("nonce2-" + std::to_string(requestId));
        fwd.mode = proto::AttestMode::RuntimeOneTime;
        const std::size_t seen = measureRequests.size();
        controller.sendSecure(as.id(),
                              proto::packMessage(MessageKind::AttestForward,
                                                 fwd.encode()));
        events.advance(seconds(10));
        EXPECT_EQ(measureRequests.size(), seen + 1);
        return measureRequests.back();
    }

    /** Answer a MeasureRequest with a well-formed response carrying
     * `certBytes`, signed by the fixture AIK, and run the network. */
    void respond(const proto::MeasureRequest &req, const Bytes &certBytes)
    {
        proto::MeasureResponse resp;
        resp.requestId = req.requestId;
        resp.vid = req.vid;
        resp.rm = req.rm;
        resp.m = proto::MeasurementSet{};
        resp.nonce3 = req.nonce3;
        resp.quote3 = proto::MeasureResponse::quoteInput(
            resp.vid, resp.rm, resp.m, resp.nonce3);
        resp.signature = crypto::rsaSign(aik.priv, resp.signedPortion());
        resp.certificate = certBytes;
        server.sendSecure(as.id(),
                          proto::packMessage(MessageKind::MeasureResponse,
                                             resp.encode()));
        events.advance(seconds(10));
    }

    sim::EventQueue events;
    net::Network network;
    net::KeyDirectory dir;
    crypto::RsaKeyPair pcaKeys;
    crypto::RsaKeyPair aik;
    crypto::RsaKeyPair controllerKeys;
    crypto::RsaKeyPair serverKeys;
    AttestationServer as;
    net::SecureEndpoint controller;
    net::SecureEndpoint server;
    std::vector<proto::MeasureRequest> measureRequests;
    std::vector<proto::ReportToController> reports;
};

TEST_F(CertCacheEndToEnd, ReusedCertificateHitsCache)
{
    const Bytes cert = issueAikCert();

    const proto::MeasureRequest r1 = forwardAndCapture(1);
    respond(r1, cert);
    EXPECT_EQ(as.stats().responsesVerified, 1u);
    EXPECT_EQ(as.stats().certCacheMisses, 1u);
    EXPECT_EQ(as.stats().certCacheHits, 0u);
    EXPECT_EQ(as.certificateCache().size(), 1u);

    // Byte-identical certificate: chain check replayed from the cache.
    const proto::MeasureRequest r2 = forwardAndCapture(2);
    respond(r2, cert);
    EXPECT_EQ(as.stats().responsesVerified, 2u);
    EXPECT_EQ(as.stats().certCacheMisses, 1u);
    EXPECT_EQ(as.stats().certCacheHits, 1u);
    ASSERT_EQ(reports.size(), 2u);
}

TEST_F(CertCacheEndToEnd, TamperedCertificateMissesAndYieldsUnknown)
{
    const Bytes cert = issueAikCert();
    const proto::MeasureRequest r1 = forwardAndCapture(1);
    respond(r1, cert);
    ASSERT_EQ(as.certificateCache().size(), 1u);

    // One flipped byte: different digest, cache miss, cold chain check
    // fails, and the report still arrives — all properties Unknown.
    Bytes tampered = cert;
    tampered[tampered.size() / 2] ^= 0x01;
    const proto::MeasureRequest r2 = forwardAndCapture(2);
    respond(r2, tampered);

    EXPECT_EQ(as.stats().certCacheHits, 0u);
    EXPECT_EQ(as.stats().certCacheMisses, 2u);
    EXPECT_EQ(as.stats().verificationFailures, 1u);
    // The failed verdict is never cached.
    EXPECT_EQ(as.certificateCache().size(), 1u);

    ASSERT_EQ(reports.size(), 2u);
    const proto::ReportToController &bad = reports.back();
    ASSERT_FALSE(bad.report.results.empty());
    for (const proto::PropertyResult &pr : bad.report.results)
        EXPECT_EQ(pr.status, HealthStatus::Unknown);
    // The report itself is authentic: signed by the AS identity key.
    EXPECT_TRUE(crypto::rsaVerify(as.identityPublic(),
                                  bad.signedPortion(), bad.signature));
}

/** The same deployment with verification caches switched off. */
class CertCacheDisabledEndToEnd : public CertCacheEndToEnd
{
  protected:
    CertCacheDisabledEndToEnd() : CertCacheEndToEnd(disabledConfig()) {}

    static AttestationServerConfig disabledConfig()
    {
        AttestationServerConfig cfg;
        cfg.enableVerificationCaches = false;
        return cfg;
    }
};

TEST_F(CertCacheDisabledEndToEnd, ColdVerificationEveryTime)
{
    const Bytes cert = issueAikCert();
    respond(forwardAndCapture(1), cert);
    respond(forwardAndCapture(2), cert);
    EXPECT_EQ(as.stats().responsesVerified, 2u);
    EXPECT_EQ(as.stats().certCacheHits, 0u);
    EXPECT_EQ(as.stats().certCacheMisses, 0u);
    EXPECT_EQ(as.certificateCache().size(), 0u);
}

} // namespace
} // namespace monatt::attestation
