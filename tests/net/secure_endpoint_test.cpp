/**
 * @file
 * SecureEndpoint: lazy channel establishment over the simulated
 * network, message queuing during handshakes, bidirectional traffic,
 * and resistance to on-wire manipulation.
 */

#include <gtest/gtest.h>

#include "net/secure_endpoint.h"
#include "sim/event_queue.h"

namespace monatt::net
{
namespace
{

struct EndpointFixture
{
    sim::EventQueue events;
    Network net{events};
    KeyDirectory dir;
    crypto::RsaKeyPair aliceKeys;
    crypto::RsaKeyPair bobKeys;
    std::unique_ptr<SecureEndpoint> alice;
    std::unique_ptr<SecureEndpoint> bob;
    std::vector<std::pair<NodeId, Bytes>> aliceInbox;
    std::vector<std::pair<NodeId, Bytes>> bobInbox;

    EndpointFixture()
    {
        Rng rng(0x77);
        aliceKeys = crypto::rsaGenerateKeyPair(512, rng);
        bobKeys = crypto::rsaGenerateKeyPair(512, rng);
        dir.publish("alice", aliceKeys.pub);
        dir.publish("bob", bobKeys.pub);
        alice = std::make_unique<SecureEndpoint>(
            net, "alice", aliceKeys, dir, toBytes("alice-seed"));
        bob = std::make_unique<SecureEndpoint>(net, "bob", bobKeys, dir,
                                               toBytes("bob-seed"));
        alice->onMessage([this](const NodeId &from, const Bytes &msg) {
            aliceInbox.emplace_back(from, msg);
        });
        bob->onMessage([this](const NodeId &from, const Bytes &msg) {
            bobInbox.emplace_back(from, msg);
        });
    }
};

TEST(SecureEndpointTest, FirstSendEstablishesAndDelivers)
{
    EndpointFixture f;
    f.alice->sendSecure("bob", toBytes("hello bob"));
    f.events.runAll();
    ASSERT_EQ(f.bobInbox.size(), 1u);
    EXPECT_EQ(f.bobInbox[0].first, "alice");
    EXPECT_EQ(toString(f.bobInbox[0].second), "hello bob");
    EXPECT_TRUE(f.alice->channelOpen("bob"));
}

TEST(SecureEndpointTest, QueueDrainsInOrder)
{
    EndpointFixture f;
    f.alice->sendSecure("bob", toBytes("one"));
    f.alice->sendSecure("bob", toBytes("two"));
    f.alice->sendSecure("bob", toBytes("three"));
    f.events.runAll();
    ASSERT_EQ(f.bobInbox.size(), 3u);
    EXPECT_EQ(toString(f.bobInbox[0].second), "one");
    EXPECT_EQ(toString(f.bobInbox[1].second), "two");
    EXPECT_EQ(toString(f.bobInbox[2].second), "three");
}

TEST(SecureEndpointTest, BidirectionalUsesIndependentChannels)
{
    EndpointFixture f;
    f.alice->sendSecure("bob", toBytes("ping"));
    f.events.runAll();
    f.bob->sendSecure("alice", toBytes("pong"));
    f.events.runAll();
    ASSERT_EQ(f.aliceInbox.size(), 1u);
    EXPECT_EQ(toString(f.aliceInbox[0].second), "pong");
    EXPECT_TRUE(f.bob->channelOpen("alice"));
}

TEST(SecureEndpointTest, UnknownPeerIsRefusedLocally)
{
    EndpointFixture f;
    f.alice->sendSecure("charlie", toBytes("anyone there?"));
    f.events.runAll();
    EXPECT_EQ(f.net.stats().sent, 0u);
}

TEST(SecureEndpointTest, OnWireTamperingIsRejectedNotDelivered)
{
    EndpointFixture f;
    // Establish first, then tamper with data records.
    f.alice->sendSecure("bob", toBytes("clean"));
    f.events.runAll();
    ASSERT_EQ(f.bobInbox.size(), 1u);

    f.net.setAdversary([](const Envelope &env) {
        Envelope out = env;
        if (!out.payload.empty())
            out.payload[out.payload.size() / 2] ^= 0x01;
        return std::optional<Envelope>{out};
    });
    f.alice->sendSecure("bob", toBytes("tampered in flight"));
    f.events.runAll();
    EXPECT_EQ(f.bobInbox.size(), 1u); // Nothing new delivered.
    EXPECT_GE(f.bob->stats().rejectedRecords, 1u);
}

TEST(SecureEndpointTest, WireReplayIsRejected)
{
    EndpointFixture f;
    std::vector<Envelope> captured;
    f.net.setAdversary([&](const Envelope &env) {
        captured.push_back(env);
        return env;
    });
    f.alice->sendSecure("bob", toBytes("original"));
    f.events.runAll();
    ASSERT_EQ(f.bobInbox.size(), 1u);

    // Replay every captured datagram (handshakes and data).
    for (const Envelope &env : captured)
        f.net.inject(env);
    f.events.runAll();
    EXPECT_EQ(f.bobInbox.size(), 1u) << "replay must not deliver";
    EXPECT_GE(f.bob->stats().rejectedRecords +
                  f.bob->stats().rejectedHandshakes,
              1u);
}

TEST(SecureEndpointTest, ForgedSourceHandshakeRejected)
{
    EndpointFixture f;
    // Mallow (no directory entry / using alice's name with his own
    // key) cannot open a channel to bob.
    Rng rng(0x99);
    const auto mallowKeys = crypto::rsaGenerateKeyPair(512, rng);
    SecureEndpoint mallow(f.net, "mallow", mallowKeys, f.dir,
                          toBytes("mallow-seed"));
    // Not published in the directory: bob rejects the handshake.
    mallow.sendSecure("bob", toBytes("let me in"));
    f.events.runAll();
    EXPECT_TRUE(f.bobInbox.empty());
    EXPECT_GE(f.bob->stats().rejectedHandshakes, 1u);
}

TEST(SecureEndpointTest, StatsCountTraffic)
{
    EndpointFixture f;
    f.alice->sendSecure("bob", toBytes("a"));
    f.events.runAll();
    f.alice->sendSecure("bob", toBytes("b"));
    f.events.runAll();
    EXPECT_GE(f.alice->stats().sent, 3u); // Hello + 2 data records.
    EXPECT_EQ(f.bob->stats().received, 2u);
}

// --- Handshake reliability --------------------------------------------

EndpointReliability
fastRetry(int limit = 5)
{
    EndpointReliability r;
    r.enabled = true;
    r.handshakeRto = msec(50);
    r.handshakeRetryLimit = limit;
    return r;
}

TEST(SecureEndpointReliabilityTest, LostHelloIsRetransmitted)
{
    EndpointFixture f;
    f.alice->setReliability(fastRetry());

    // Drop exactly the first datagram (the initial hello).
    int dropped = 0;
    f.net.setAdversary([&](const Envelope &env) {
        if (dropped == 0) {
            ++dropped;
            return std::optional<Envelope>{};
        }
        return std::optional<Envelope>{env};
    });

    f.alice->sendSecure("bob", toBytes("eventually"));
    f.events.runAll();
    ASSERT_EQ(f.bobInbox.size(), 1u);
    EXPECT_EQ(toString(f.bobInbox[0].second), "eventually");
    EXPECT_GE(f.alice->stats().handshakeRetries, 1u);
    EXPECT_EQ(f.alice->stats().deliveryFailures, 0u);
}

TEST(SecureEndpointReliabilityTest, ExhaustedRetriesReportFailure)
{
    EndpointFixture f;
    f.alice->setReliability(fastRetry(2));
    f.net.setAdversary(
        [](const Envelope &) { return std::optional<Envelope>{}; });

    std::vector<std::pair<NodeId, std::size_t>> failures;
    f.alice->onDeliveryFailure(
        [&](const NodeId &peer, std::size_t queued) {
            failures.emplace_back(peer, queued);
        });

    f.alice->sendSecure("bob", toBytes("one"));
    f.alice->sendSecure("bob", toBytes("two"));
    f.events.runAll();

    EXPECT_TRUE(f.bobInbox.empty());
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_EQ(failures[0].first, "bob");
    EXPECT_EQ(failures[0].second, 2u); // Both queued messages lost.
    EXPECT_EQ(f.alice->stats().handshakeFailures, 1u);
    EXPECT_EQ(f.alice->stats().deliveryFailures, 2u);

    // The failure is not sticky: once the wire heals, a fresh send
    // re-initiates the handshake and delivers.
    f.net.setAdversary({});
    f.alice->sendSecure("bob", toBytes("after recovery"));
    f.events.runAll();
    ASSERT_EQ(f.bobInbox.size(), 1u);
    EXPECT_EQ(toString(f.bobInbox[0].second), "after recovery");
}

TEST(SecureEndpointReliabilityTest, DuplicateHelloGetsCachedAccept)
{
    EndpointFixture f;
    f.alice->setReliability(fastRetry());

    // Capture then replay the hello: bob must answer with the cached
    // accept instead of tearing down the live channel.
    std::optional<Envelope> hello;
    f.net.setAdversary([&](const Envelope &env) {
        if (!hello)
            hello = env;
        return std::optional<Envelope>{env};
    });
    f.alice->sendSecure("bob", toBytes("first"));
    f.events.runAll();
    ASSERT_EQ(f.bobInbox.size(), 1u);
    ASSERT_TRUE(hello.has_value());

    f.net.inject(*hello);
    f.events.runAll();

    // The channel alice established is still usable.
    f.alice->sendSecure("bob", toBytes("second"));
    f.events.runAll();
    ASSERT_EQ(f.bobInbox.size(), 2u);
    EXPECT_EQ(toString(f.bobInbox[1].second), "second");
}

TEST(SecureEndpointReliabilityTest, DetachedEndpointDropsAndRejoins)
{
    EndpointFixture f;
    f.alice->sendSecure("bob", toBytes("before"));
    f.events.runAll();
    ASSERT_EQ(f.bobInbox.size(), 1u);

    f.bob->detach();
    EXPECT_FALSE(f.bob->attached());
    f.alice->sendSecure("bob", toBytes("while down"));
    f.events.runAll();
    EXPECT_EQ(f.bobInbox.size(), 1u);

    // After re-attach bob lost his session keys, so records alice
    // seals under the pre-crash channel are rejected — this is the
    // blackhole entities escape by calling resetPeer when their retry
    // budgets point at a dead peer.
    f.bob->attach();
    EXPECT_TRUE(f.bob->attached());
    f.alice->sendSecure("bob", toBytes("stale channel"));
    f.events.runAll();
    EXPECT_EQ(f.bobInbox.size(), 1u);
    EXPECT_GE(f.bob->stats().rejectedRecords, 1u);

    // Reset → fresh handshake → delivery resumes.
    f.alice->resetPeer("bob");
    f.alice->sendSecure("bob", toBytes("after restart"));
    f.events.runAll();
    ASSERT_EQ(f.bobInbox.size(), 2u);
    EXPECT_EQ(toString(f.bobInbox.back().second), "after restart");
}

} // namespace
} // namespace monatt::net
