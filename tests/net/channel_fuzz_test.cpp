/**
 * @file
 * Property-based robustness sweeps: randomly mutated secure-channel
 * records and protocol messages must be cleanly rejected (or decode
 * to something that fails verification) — never accepted as valid and
 * never crash. This is the mechanical core of the unforgeability
 * claim: there is no byte an attacker can flip that yields a
 * different accepted message.
 */

#include <gtest/gtest.h>

#include "crypto/drbg.h"
#include "net/secure_channel.h"
#include "proto/messages.h"

namespace monatt
{
namespace
{

struct FuzzChannel
{
    net::SecureChannel client;
    net::SecureChannel server;

    FuzzChannel()
    {
        Rng rng(0x2b);
        const auto clientKeys = crypto::rsaGenerateKeyPair(512, rng);
        const auto serverKeys = crypto::rsaGenerateKeyPair(512, rng);
        crypto::HmacDrbg cd(toBytes("c")), sd(toBytes("s"));
        net::ClientHandshake hs("c", "s", clientKeys, serverKeys.pub,
                                cd);
        net::ServerHandshake sh("s", serverKeys, sd);
        auto accepted = sh.accept(hs.helloMessage(), clientKeys.pub);
        client = hs.finish(accepted.value().reply).take();
        server = std::move(accepted.value().channel);
    }
};

class RecordMutationTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RecordMutationTest, AnySingleByteFlipIsRejected)
{
    FuzzChannel f;
    Rng rng(GetParam());
    const Bytes payload = rng.nextBytes(100);
    const Bytes record = f.client.seal(payload);

    // Flip one random byte per trial; each must be rejected.
    for (int trial = 0; trial < 32; ++trial) {
        Bytes mutated = record;
        const std::size_t pos = rng.nextBounded(mutated.size());
        std::uint8_t flip;
        do {
            flip = static_cast<std::uint8_t>(rng.next() & 0xff);
        } while (flip == 0);
        mutated[pos] ^= flip;
        EXPECT_FALSE(f.server.open(mutated).isOk())
            << "accepted a record mutated at byte " << pos;
    }
    // The pristine record still works (channel state undamaged).
    EXPECT_EQ(f.server.open(record).value(), payload);
}

TEST_P(RecordMutationTest, TruncationsAndExtensionsRejected)
{
    FuzzChannel f;
    Rng rng(GetParam() ^ 0x9999);
    const Bytes record = f.client.seal(rng.nextBytes(64));
    for (std::size_t cut = 1; cut <= record.size(); cut += 7) {
        const Bytes truncated(record.begin(), record.end() - cut);
        EXPECT_FALSE(f.server.open(truncated).isOk());
    }
    Bytes extended = record;
    extended.push_back(0x00);
    EXPECT_FALSE(f.server.open(extended).isOk());
}

TEST_P(RecordMutationTest, RandomGarbageRejected)
{
    FuzzChannel f;
    Rng rng(GetParam() ^ 0x4444);
    for (int trial = 0; trial < 64; ++trial) {
        const Bytes garbage = rng.nextBytes(rng.nextBounded(256));
        EXPECT_FALSE(f.server.open(garbage).isOk());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecordMutationTest,
                         ::testing::Values(1, 2, 3, 4, 5));

class MessageFuzzTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(MessageFuzzTest, MutatedMeasureResponsesNeverVerify)
{
    Rng rng(GetParam());
    // Build a legitimate signed response.
    const auto aik = crypto::rsaGenerateKeyPair(512, rng);
    proto::MeasureResponse resp;
    resp.requestId = 1;
    resp.vid = "vm-1";
    resp.rm = {proto::MeasurementType::TaskListVmi};
    proto::Measurement m;
    m.type = proto::MeasurementType::TaskListVmi;
    m.strings = {"init"};
    resp.m.items.push_back(m);
    resp.nonce3 = rng.nextBytes(16);
    resp.quote3 = proto::MeasureResponse::quoteInput(resp.vid, resp.rm,
                                                     resp.m, resp.nonce3);
    resp.signature = crypto::rsaSign(aik.priv, resp.signedPortion());
    ASSERT_TRUE(crypto::rsaVerify(aik.pub, resp.signedPortion(),
                                  resp.signature));

    const Bytes wire = resp.encode();
    for (int trial = 0; trial < 64; ++trial) {
        Bytes mutated = wire;
        const std::size_t pos = rng.nextBounded(mutated.size());
        std::uint8_t flip;
        do {
            flip = static_cast<std::uint8_t>(rng.next() & 0xff);
        } while (flip == 0);
        mutated[pos] ^= flip;

        auto decoded = proto::MeasureResponse::decode(mutated);
        if (!decoded)
            continue; // Rejected at decode: fine.
        const proto::MeasureResponse &d = decoded.value();
        // If it decodes, the crypto must catch it: either the quote
        // recomputation or the signature fails.
        const Bytes expectedQ3 = proto::MeasureResponse::quoteInput(
            d.vid, d.rm, d.m, d.nonce3);
        const bool quoteOk = constantTimeEqual(expectedQ3, d.quote3);
        const bool sigOk = crypto::rsaVerify(aik.pub, d.signedPortion(),
                                             d.signature);
        EXPECT_FALSE(quoteOk && sigOk)
            << "mutation at byte " << pos << " survived verification";
    }
}

TEST_P(MessageFuzzTest, RandomBytesNeverDecodeToReports)
{
    Rng rng(GetParam() ^ 0xabcd);
    int decoded = 0;
    for (int trial = 0; trial < 200; ++trial) {
        const Bytes garbage = rng.nextBytes(rng.nextBounded(128));
        decoded += proto::ReportToCustomer::decode(garbage).isOk();
        decoded += proto::MeasureResponse::decode(garbage).isOk();
        decoded += proto::AttestationReport::decode(garbage).isOk();
    }
    EXPECT_EQ(decoded, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MessageFuzzTest,
                         ::testing::Values(11, 22, 33));

} // namespace
} // namespace monatt
