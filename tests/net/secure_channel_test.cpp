/**
 * @file
 * SSL-like channel: handshake mutual authentication, key agreement,
 * record protection — and the attacks it must resist: tampering,
 * replay, reflection, impostor endpoints.
 */

#include <gtest/gtest.h>

#include "crypto/drbg.h"
#include "net/secure_channel.h"

namespace monatt::net
{
namespace
{

struct ChannelFixture
{
    crypto::RsaKeyPair clientKeys;
    crypto::RsaKeyPair serverKeys;
    crypto::RsaKeyPair mallowKeys; // The attacker's own key pair.
    crypto::HmacDrbg clientDrbg{toBytes("client-seed")};
    crypto::HmacDrbg serverDrbg{toBytes("server-seed")};
    crypto::HmacDrbg mallowDrbg{toBytes("mallow-seed")};

    ChannelFixture()
    {
        Rng rng(0x55);
        clientKeys = crypto::rsaGenerateKeyPair(512, rng);
        serverKeys = crypto::rsaGenerateKeyPair(512, rng);
        mallowKeys = crypto::rsaGenerateKeyPair(512, rng);
    }

    /** Run a full honest handshake; returns {client, server} ends. */
    std::pair<SecureChannel, SecureChannel>
    establish()
    {
        ClientHandshake client("alice", "bob", clientKeys,
                               serverKeys.pub, clientDrbg);
        ServerHandshake server("bob", serverKeys, serverDrbg);
        auto accepted = server.accept(client.helloMessage(),
                                      clientKeys.pub);
        EXPECT_TRUE(accepted.isOk()) << accepted.errorMessage();
        auto clientChannel = client.finish(accepted.value().reply);
        EXPECT_TRUE(clientChannel.isOk()) << clientChannel.errorMessage();
        return {clientChannel.take(), std::move(accepted.value().channel)};
    }
};

TEST(SecureChannelTest, HandshakeEstablishesMatchingSessions)
{
    ChannelFixture f;
    auto [client, server] = f.establish();
    EXPECT_TRUE(client.established());
    EXPECT_TRUE(server.established());
    EXPECT_EQ(client.sessionId(), server.sessionId());
    EXPECT_EQ(client.sessionId().size(), 16u);
}

TEST(SecureChannelTest, BidirectionalRecords)
{
    ChannelFixture f;
    auto [client, server] = f.establish();

    const Bytes req = toBytes("attest vm-1 please");
    auto opened = server.open(client.seal(req));
    ASSERT_TRUE(opened.isOk()) << opened.errorMessage();
    EXPECT_EQ(opened.value(), req);

    const Bytes resp = toBytes("report: healthy");
    auto openedResp = client.open(server.seal(resp));
    ASSERT_TRUE(openedResp.isOk());
    EXPECT_EQ(openedResp.value(), resp);
}

TEST(SecureChannelTest, RecordsAreConfidential)
{
    ChannelFixture f;
    auto [client, server] = f.establish();
    const Bytes secret = toBytes("the secret measurement payload");
    const Bytes record = client.seal(secret);
    // The plaintext must not appear in the record.
    const std::string recordStr = toString(record);
    EXPECT_EQ(recordStr.find("secret measurement"), std::string::npos);
}

TEST(SecureChannelTest, TamperedRecordRejected)
{
    ChannelFixture f;
    auto [client, server] = f.establish();
    Bytes record = client.seal(toBytes("payload"));
    record[record.size() / 2] ^= 0x01;
    EXPECT_FALSE(server.open(record).isOk());
}

TEST(SecureChannelTest, ReplayedRecordRejected)
{
    ChannelFixture f;
    auto [client, server] = f.establish();
    const Bytes record = client.seal(toBytes("one"));
    ASSERT_TRUE(server.open(record).isOk());
    auto replay = server.open(record);
    ASSERT_FALSE(replay.isOk());
    EXPECT_NE(replay.errorMessage().find("replay"), std::string::npos);
}

TEST(SecureChannelTest, ReorderedRecordsRejected)
{
    ChannelFixture f;
    auto [client, server] = f.establish();
    const Bytes first = client.seal(toBytes("one"));
    const Bytes second = client.seal(toBytes("two"));
    ASSERT_TRUE(server.open(second).isOk());
    EXPECT_FALSE(server.open(first).isOk());
}

TEST(SecureChannelTest, ReflectionRejected)
{
    // A record a client sealed cannot be fed back to the client: the
    // directional keys differ.
    ChannelFixture f;
    auto [client, server] = f.establish();
    const Bytes record = client.seal(toBytes("hello"));
    EXPECT_FALSE(client.open(record).isOk());
}

TEST(SecureChannelTest, CrossSessionRecordsRejected)
{
    ChannelFixture f;
    auto [client1, server1] = f.establish();
    auto [client2, server2] = f.establish();
    const Bytes record = client1.seal(toBytes("session 1 data"));
    EXPECT_FALSE(server2.open(record).isOk());
}

TEST(SecureChannelTest, ImpostorClientRejected)
{
    // Mallow signs a hello with his own key while claiming alice's
    // identity; the server checks against alice's published key.
    ChannelFixture f;
    ClientHandshake mallow("alice", "bob", f.mallowKeys,
                           f.serverKeys.pub, f.mallowDrbg);
    ServerHandshake server("bob", f.serverKeys, f.serverDrbg);
    auto accepted = server.accept(mallow.helloMessage(),
                                  f.clientKeys.pub);
    EXPECT_FALSE(accepted.isOk());
}

TEST(SecureChannelTest, ImpostorServerRejected)
{
    // The client expects bob's identity key; mallow answers instead.
    ChannelFixture f;
    ClientHandshake client("alice", "bob", f.clientKeys,
                           f.serverKeys.pub, f.clientDrbg);
    // Mallow can't decrypt the premaster (encrypted to bob), so he
    // forges a reply with random data signed by his own key.
    ServerHandshake mallow("bob", f.mallowKeys, f.mallowDrbg);
    auto accepted = mallow.accept(client.helloMessage(),
                                  f.clientKeys.pub);
    // Mallow cannot even accept: decrypting the premaster fails.
    EXPECT_FALSE(accepted.isOk());
}

TEST(SecureChannelTest, TamperedServerHelloRejected)
{
    ChannelFixture f;
    ClientHandshake client("alice", "bob", f.clientKeys,
                           f.serverKeys.pub, f.clientDrbg);
    ServerHandshake server("bob", f.serverKeys, f.serverDrbg);
    auto accepted = server.accept(client.helloMessage(), f.clientKeys.pub);
    ASSERT_TRUE(accepted.isOk());
    Bytes reply = accepted.value().reply;
    reply[reply.size() / 2] ^= 0x01;
    EXPECT_FALSE(client.finish(reply).isOk());
}

TEST(SecureChannelTest, UnestablishedChannelRefusesUse)
{
    SecureChannel idle;
    EXPECT_FALSE(idle.established());
    EXPECT_THROW(idle.seal(toBytes("x")), std::logic_error);
    EXPECT_FALSE(idle.open(toBytes("x")).isOk());
}

TEST(SecureChannelTest, EmptyAndLargePayloads)
{
    ChannelFixture f;
    auto [client, server] = f.establish();
    auto openedEmpty = server.open(client.seal({}));
    ASSERT_TRUE(openedEmpty.isOk());
    EXPECT_TRUE(openedEmpty.value().empty());

    Rng rng(3);
    const Bytes big = rng.nextBytes(64 * 1024);
    auto openedBig = server.open(client.seal(big));
    ASSERT_TRUE(openedBig.isOk());
    EXPECT_EQ(openedBig.value(), big);
}

} // namespace
} // namespace monatt::net
