/**
 * @file
 * Network fabric: envelope wire format, latency/bandwidth modeling,
 * delivery, and the Dolev-Yao adversary hook's observe / modify /
 * drop / inject capabilities.
 */

#include <gtest/gtest.h>

#include "net/network.h"
#include "sim/event_queue.h"
#include "sim/fault_plan.h"

namespace monatt::net
{
namespace
{

TEST(EnvelopeTest, EncodeDecodeRoundTrip)
{
    Envelope env;
    env.src = "alice";
    env.dst = "controller";
    env.channel = "data-out";
    env.seq = 42;
    env.payload = {1, 2, 3};
    env.bulkBytes = 1024;

    auto decoded = Envelope::decode(env.encode());
    ASSERT_TRUE(decoded.isOk());
    EXPECT_EQ(decoded.value().src, "alice");
    EXPECT_EQ(decoded.value().dst, "controller");
    EXPECT_EQ(decoded.value().channel, "data-out");
    EXPECT_EQ(decoded.value().seq, 42u);
    EXPECT_EQ(decoded.value().payload, (Bytes{1, 2, 3}));
    EXPECT_EQ(decoded.value().bulkBytes, 1024u);
}

TEST(EnvelopeTest, DecodeRejectsMalformed)
{
    EXPECT_FALSE(Envelope::decode(Bytes{0x01}).isOk());
    Envelope env;
    env.src = "a";
    env.dst = "b";
    Bytes wire = env.encode();
    wire.push_back(0x00);
    EXPECT_FALSE(Envelope::decode(wire).isOk());
}

TEST(EnvelopeTest, WireSizeIncludesBulk)
{
    Envelope env;
    env.src = "a";
    env.dst = "b";
    const std::size_t base = env.wireSize();
    env.bulkBytes = 5000;
    EXPECT_EQ(env.wireSize(), base + 5000);
}

struct NetFixture
{
    sim::EventQueue events;
    Network net{events};
    std::vector<Envelope> received;

    NetFixture()
    {
        net.registerNode("b", [this](const Envelope &env) {
            received.push_back(env);
        });
    }

    Envelope
    makeEnvelope(const Bytes &payload = {1, 2, 3})
    {
        Envelope env;
        env.src = "a";
        env.dst = "b";
        env.channel = "test";
        env.payload = payload;
        return env;
    }
};

TEST(NetworkTest, DeliversAfterLatency)
{
    NetFixture f;
    f.net.setLink("a", "b", LinkParams{usec(500), 1000.0});
    f.net.send(f.makeEnvelope());
    EXPECT_TRUE(f.received.empty());
    f.events.runAll();
    ASSERT_EQ(f.received.size(), 1u);
    // 500 us latency + serialization (small message, <1 us).
    EXPECT_GE(f.events.now(), usec(500));
    EXPECT_LT(f.events.now(), usec(510));
}

TEST(NetworkTest, BandwidthChargesBulkBytes)
{
    NetFixture f;
    f.net.setLink("a", "b", LinkParams{usec(100), 1000.0}); // 1 Gbps.
    Envelope env = f.makeEnvelope();
    env.bulkBytes = 125000000; // 1 Gbit => 1 s at 1 Gbps.
    f.net.send(std::move(env));
    f.events.runAll();
    EXPECT_NEAR(toSeconds(f.events.now()), 1.0, 0.01);
}

TEST(NetworkTest, UndeliverableCounted)
{
    NetFixture f;
    Envelope env = f.makeEnvelope();
    env.dst = "nobody";
    f.net.send(std::move(env));
    f.events.runAll();
    EXPECT_EQ(f.net.stats().undeliverable, 1u);
    EXPECT_TRUE(f.received.empty());
}

TEST(NetworkTest, AdversaryObservesWithoutModifying)
{
    NetFixture f;
    int observed = 0;
    f.net.setAdversary([&](const Envelope &env) {
        ++observed;
        return env;
    });
    f.net.send(f.makeEnvelope());
    f.events.runAll();
    EXPECT_EQ(observed, 1);
    EXPECT_EQ(f.received.size(), 1u);
    EXPECT_EQ(f.net.stats().modifiedByAdversary, 0u);
}

TEST(NetworkTest, AdversaryDrops)
{
    NetFixture f;
    f.net.setAdversary(
        [](const Envelope &) { return std::optional<Envelope>{}; });
    f.net.send(f.makeEnvelope());
    f.events.runAll();
    EXPECT_TRUE(f.received.empty());
    EXPECT_EQ(f.net.stats().droppedByAdversary, 1u);
}

TEST(NetworkTest, AdversaryModifies)
{
    NetFixture f;
    f.net.setAdversary([](const Envelope &env) {
        Envelope out = env;
        out.payload[0] ^= 0xff;
        return std::optional<Envelope>{out};
    });
    f.net.send(f.makeEnvelope({1, 2, 3}));
    f.events.runAll();
    ASSERT_EQ(f.received.size(), 1u);
    EXPECT_EQ(f.received[0].payload[0], 1 ^ 0xff);
    EXPECT_EQ(f.net.stats().modifiedByAdversary, 1u);
}

TEST(NetworkTest, AdversaryInjects)
{
    NetFixture f;
    f.net.inject(f.makeEnvelope({9}));
    f.events.runAll();
    ASSERT_EQ(f.received.size(), 1u);
    EXPECT_EQ(f.net.stats().injected, 1u);
}

TEST(NetworkTest, AdversaryReplays)
{
    NetFixture f;
    std::optional<Envelope> captured;
    f.net.setAdversary([&](const Envelope &env) {
        if (!captured)
            captured = env;
        return env;
    });
    f.net.send(f.makeEnvelope());
    f.events.runAll();
    ASSERT_TRUE(captured.has_value());
    f.net.inject(*captured);
    f.events.runAll();
    EXPECT_EQ(f.received.size(), 2u);
}

TEST(NetworkTest, UnregisterStopsDelivery)
{
    NetFixture f;
    f.net.unregisterNode("b");
    f.net.send(f.makeEnvelope());
    f.events.runAll();
    EXPECT_TRUE(f.received.empty());
}

// --- Fault-plan integration -------------------------------------------

TEST(NetworkFaultTest, CertainDropIsCountedAndNotDelivered)
{
    NetFixture f;
    sim::FaultPlanConfig cfg;
    cfg.faults.dropProbability = 1.0;
    const sim::FaultPlan plan(cfg);
    f.net.setFaultPlan(&plan);

    f.net.send(f.makeEnvelope());
    f.net.send(f.makeEnvelope());
    f.events.runAll();
    EXPECT_TRUE(f.received.empty());
    EXPECT_EQ(f.net.stats().droppedByFault, 2u);
}

TEST(NetworkFaultTest, DuplicationDeliversExtraCopies)
{
    NetFixture f;
    sim::FaultPlanConfig cfg;
    cfg.faults.duplicateProbability = 1.0;
    const sim::FaultPlan plan(cfg);
    f.net.setFaultPlan(&plan);

    f.net.send(f.makeEnvelope());
    f.events.runAll();
    EXPECT_EQ(f.received.size(), 2u);
    EXPECT_EQ(f.net.stats().duplicated, 1u);
    EXPECT_EQ(f.net.stats().delivered, 2u);
}

TEST(NetworkFaultTest, ExtraDelayIsChargedAndCounted)
{
    // Baseline arrival time without faults...
    NetFixture baseline;
    baseline.net.setLink("a", "b", LinkParams{usec(100), 1000.0});
    baseline.net.send(baseline.makeEnvelope());
    baseline.events.runAll();
    const SimTime cleanArrival = baseline.events.now();

    // ...and with a certain extra delay.
    NetFixture f;
    f.net.setLink("a", "b", LinkParams{usec(100), 1000.0});
    sim::FaultPlanConfig cfg;
    cfg.faults.extraDelayMax = msec(50);
    const sim::FaultPlan plan(cfg);
    f.net.setFaultPlan(&plan);

    // Send until one datagram actually draws a nonzero delay.
    SimTime faultyArrival = 0;
    for (int i = 0; i < 32 && f.net.stats().delayedByFault == 0; ++i) {
        f.received.clear();
        const SimTime before = f.events.now();
        f.net.send(f.makeEnvelope());
        f.events.runAll();
        faultyArrival = f.events.now() - before;
    }
    ASSERT_GE(f.net.stats().delayedByFault, 1u);
    EXPECT_GT(faultyArrival, cleanArrival);
    EXPECT_LE(faultyArrival, cleanArrival + msec(50));
}

TEST(NetworkFaultTest, PartitionSilentlyEatsTraffic)
{
    NetFixture f;
    sim::FaultPlanConfig cfg;
    cfg.partitions.push_back(
        sim::Partition{"a", "b", 0, kTimeNever});
    const sim::FaultPlan plan(cfg);
    f.net.setFaultPlan(&plan);

    f.net.send(f.makeEnvelope());
    f.events.runAll();
    EXPECT_TRUE(f.received.empty());
    EXPECT_EQ(f.net.stats().partitioned, 1u);
    EXPECT_EQ(f.net.stats().droppedByFault, 0u);
}

TEST(NetworkFaultTest, RemovingThePlanRestoresCleanDelivery)
{
    NetFixture f;
    sim::FaultPlanConfig cfg;
    cfg.faults.dropProbability = 1.0;
    const sim::FaultPlan plan(cfg);
    f.net.setFaultPlan(&plan);
    f.net.send(f.makeEnvelope());
    f.events.runAll();
    EXPECT_TRUE(f.received.empty());

    f.net.setFaultPlan(nullptr);
    f.net.send(f.makeEnvelope());
    f.events.runAll();
    EXPECT_EQ(f.received.size(), 1u);
}

} // namespace
} // namespace monatt::net
