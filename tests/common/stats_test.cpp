/**
 * @file
 * Statistics utilities: histogram binning (incl. the clamp semantics
 * the Trust Evidence Registers rely on), peak detection and the 1-D
 * k-means used by the covert-channel interpreter.
 */

#include <gtest/gtest.h>

#include "common/stats.h"

namespace monatt
{
namespace
{

TEST(StatsTest, MeanStddevMedian)
{
    const std::vector<double> xs = {1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(mean(xs), 3.0);
    EXPECT_NEAR(stddev(xs), 1.4142, 1e-3);
    EXPECT_DOUBLE_EQ(median(xs), 3.0);
    EXPECT_DOUBLE_EQ(median({1, 2, 3, 4}), 2.5);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(stddev({}), 0.0);
    EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(HistogramTest, BasicBinning)
{
    Histogram h(0.0, 30.0, 30);
    h.add(0.5);   // Bin 0.
    h.add(4.6);   // Bin 4 — the paper's example: interval (4,5].
    h.add(29.9);  // Bin 29.
    EXPECT_EQ(h.counts()[0], 1u);
    EXPECT_EQ(h.counts()[4], 1u);
    EXPECT_EQ(h.counts()[29], 1u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, ClampsOutOfRange)
{
    Histogram h(0.0, 30.0, 30);
    h.add(-5.0);
    h.add(30.0);
    h.add(1000.0);
    EXPECT_EQ(h.counts()[0], 1u);
    EXPECT_EQ(h.counts()[29], 2u);
}

TEST(HistogramTest, DistributionSumsToOne)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 100; ++i)
        h.add(i % 10 + 0.5);
    double sum = 0;
    for (double p : h.distribution())
        sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(HistogramTest, EmptyDistributionIsZero)
{
    Histogram h(0.0, 10.0, 10);
    for (double p : h.distribution())
        EXPECT_DOUBLE_EQ(p, 0.0);
}

TEST(HistogramTest, BinCenters)
{
    Histogram h(0.0, 30.0, 30);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 0.5);
    EXPECT_DOUBLE_EQ(h.binCenter(29), 29.5);
}

TEST(HistogramTest, AddCountAndClear)
{
    Histogram h(0.0, 30.0, 30);
    h.addCount(5, 100);
    EXPECT_EQ(h.total(), 100u);
    EXPECT_THROW(h.addCount(30, 1), std::out_of_range);
    h.clear();
    EXPECT_EQ(h.total(), 0u);
}

TEST(HistogramTest, RejectsBadConstruction)
{
    EXPECT_THROW(Histogram(0.0, 0.0, 10), std::invalid_argument);
    EXPECT_THROW(Histogram(0.0, 10.0, 0), std::invalid_argument);
}

TEST(PeakTest, SinglePeak)
{
    // Benign pattern: one dominant peak at the end.
    std::vector<double> dist(30, 0.0);
    dist[29] = 0.9;
    dist[28] = 0.1;
    const auto peaks = findPeaks(dist, 0.15);
    ASSERT_EQ(peaks.size(), 1u);
    EXPECT_EQ(peaks[0].bin, 29u);
}

TEST(PeakTest, TwoPeaks)
{
    // Covert-channel pattern: two separated peaks.
    std::vector<double> dist(30, 0.0);
    dist[5] = 0.25;
    dist[6] = 0.2;
    dist[24] = 0.3;
    dist[25] = 0.25;
    const auto peaks = findPeaks(dist, 0.15);
    ASSERT_EQ(peaks.size(), 2u);
    EXPECT_EQ(peaks[0].bin, 5u);
    EXPECT_EQ(peaks[1].bin, 24u);
}

TEST(PeakTest, IgnoresLowMassNoise)
{
    std::vector<double> dist(30, 0.0);
    dist[10] = 0.9;
    dist[20] = 0.02; // Noise peak below threshold.
    dist[0] = 0.08;
    const auto peaks = findPeaks(dist, 0.15);
    ASSERT_EQ(peaks.size(), 1u);
    EXPECT_EQ(peaks[0].bin, 10u);
}

TEST(PeakTest, EmptyDistribution)
{
    EXPECT_TRUE(findPeaks(std::vector<double>(30, 0.0), 0.1).empty());
}

TEST(KMeansTest, SeparatesTwoClusters)
{
    // Two tight clusters at 5 and 25.
    const std::vector<double> values = {4, 5, 6, 24, 25, 26};
    const std::vector<double> weights = {1, 2, 1, 1, 2, 1};
    const auto r = kMeans2(values, weights);
    EXPECT_NEAR(r.centroid[0], 5.0, 0.5);
    EXPECT_NEAR(r.centroid[1], 25.0, 0.5);
    EXPECT_NEAR(r.mass[0], 0.5, 0.01);
    EXPECT_NEAR(r.mass[1], 0.5, 0.01);
    EXPECT_GT(r.separation, 15.0);
}

TEST(KMeansTest, SingleClusterSmallSeparation)
{
    const std::vector<double> values = {29, 29.5, 30};
    const std::vector<double> weights = {1, 5, 1};
    const auto r = kMeans2(values, weights);
    EXPECT_LT(r.separation, 2.0);
}

TEST(KMeansTest, MassWeighting)
{
    // Heavy mass at 10, light outlier at 20: most mass in cluster 0.
    const std::vector<double> values = {10, 20};
    const std::vector<double> weights = {99, 1};
    const auto r = kMeans2(values, weights);
    EXPECT_NEAR(r.mass[0], 0.99, 0.01);
    EXPECT_NEAR(r.mass[1], 0.01, 0.01);
}

TEST(KMeansTest, RejectsBadInput)
{
    EXPECT_THROW(kMeans2({}, {}), std::invalid_argument);
    EXPECT_THROW(kMeans2({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(KMeansTest, DegenerateIdenticalValues)
{
    const std::vector<double> values = {7, 7, 7};
    const std::vector<double> weights = {1, 1, 1};
    const auto r = kMeans2(values, weights);
    EXPECT_NEAR(r.centroid[0], 7.0, 1e-9);
    EXPECT_LT(r.separation, 1.5);
}

} // namespace
} // namespace monatt
