/**
 * @file
 * Deterministic PRNG: reproducibility, range and distribution
 * properties that the simulator depends on.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace monatt
{
namespace
{

TEST(RngTest, DeterministicUnderSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DistinctSeedsDiverge)
{
    Rng a(1), b(2);
    int differing = 0;
    for (int i = 0; i < 64; ++i)
        differing += a.next() != b.next();
    EXPECT_GT(differing, 60);
}

TEST(RngTest, BoundedStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(RngTest, BoundedCoversRange)
{
    Rng rng(11);
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 2000; ++i)
        ++seen[rng.nextBounded(8)];
    for (int count : seen)
        EXPECT_GT(count, 150); // ~250 expected per bucket.
}

TEST(RngTest, RangeInclusive)
{
    Rng rng(3);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 500; ++i) {
        const std::int64_t v = rng.nextRange(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        sawLo |= v == -2;
        sawHi |= v == 2;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(RngTest, DoubleInUnitInterval)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(RngTest, GaussianMoments)
{
    Rng rng(9);
    double sum = 0, sumSq = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.nextGaussian(10.0, 2.0);
        sum += x;
        sumSq += x * x;
    }
    const double m = sum / n;
    const double var = sumSq / n - m * m;
    EXPECT_NEAR(m, 10.0, 0.1);
    EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, ExponentialMean)
{
    Rng rng(13);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextExponential(5.0);
    EXPECT_NEAR(sum / n, 5.0, 0.25);
}

TEST(RngTest, BoolProbability)
{
    Rng rng(17);
    int count = 0;
    for (int i = 0; i < 10000; ++i)
        count += rng.nextBool(0.25);
    EXPECT_NEAR(count / 10000.0, 0.25, 0.03);
}

TEST(RngTest, BytesSizeAndDeterminism)
{
    Rng a(21), b(21);
    const Bytes x = a.nextBytes(37);
    EXPECT_EQ(x.size(), 37u);
    EXPECT_EQ(x, b.nextBytes(37));
}

TEST(RngTest, ForkDecorrelates)
{
    Rng parent(31);
    Rng child = parent.fork();
    int differing = 0;
    for (int i = 0; i < 64; ++i)
        differing += parent.next() != child.next();
    EXPECT_GT(differing, 60);
}

} // namespace
} // namespace monatt
