/**
 * @file
 * The tag/wire-type primitive codec: varint and zigzag edges, writer/
 * reader round trips, unknown-field skip mechanics, and decoder
 * robustness under hostile input — seeded truncations, tag and byte
 * corruption, over-long LEN prefixes and deep LEN nesting must all
 * come back as clean decode errors (or benign misreads), never hangs,
 * crashes or sanitizer findings.
 */

#include <gtest/gtest.h>

#include "common/wire.h"
#include "proto/messages.h"

namespace monatt::wire
{
namespace
{

TEST(WireTest, VarintEdgeValuesRoundTrip)
{
    const std::uint64_t cases[] = {
        0,   1,   127, 128,        300,
        500, 1u << 14, (1u << 14) + 1, 0x7fffffffull,
        0xffffffffull, 0xffffffffffffffffull,
    };
    for (std::uint64_t v : cases) {
        Bytes buf;
        appendVarint(buf, v);
        EXPECT_EQ(buf.size(), varintSize(v));
        WireReader r(buf);
        auto got = r.nextVarint();
        ASSERT_TRUE(got.isOk()) << v;
        EXPECT_EQ(got.value(), v);
        EXPECT_TRUE(r.atEnd());
    }
    EXPECT_EQ(varintSize(0), 1u);
    EXPECT_EQ(varintSize(127), 1u);
    EXPECT_EQ(varintSize(128), 2u);
    EXPECT_EQ(varintSize(0xffffffffffffffffull), kMaxVarintBytes);
}

TEST(WireTest, ZigzagEdges)
{
    const std::int64_t cases[] = {
        0,
        -1,
        1,
        -2,
        63,
        -64,
        std::int64_t{1} << 40,
        -(std::int64_t{1} << 40),
        INT64_MAX,
        INT64_MIN,
    };
    for (std::int64_t v : cases)
        EXPECT_EQ(zigzagDecode(zigzagEncode(v)), v) << v;
    // Small magnitudes must encode small (the point of zigzag).
    EXPECT_EQ(zigzagEncode(0), 0u);
    EXPECT_EQ(zigzagEncode(-1), 1u);
    EXPECT_EQ(zigzagEncode(1), 2u);
    EXPECT_EQ(zigzagEncode(-2), 3u);
}

TEST(WireTest, WriterReaderRoundTripAllTypes)
{
    WireWriter w;
    w.putVarint(1, 300);
    w.putSigned(2, -12345);
    w.putBool(3, true);
    w.putFixed64(4, 0x0123456789abcdefull);
    w.putDouble(5, 2.5);
    w.putLen(6, Bytes{0x00, 0xff, 0x10});
    w.putString(7, "hello");

    WireReader r(w.data());
    auto f = r.next();
    ASSERT_TRUE(f.isOk());
    EXPECT_EQ(f.value().number, 1u);
    EXPECT_EQ(f.value().type, WireType::Varint);
    EXPECT_EQ(f.value().varint, 300u);

    f = r.next();
    ASSERT_TRUE(f.isOk());
    EXPECT_EQ(f.value().asSigned(), -12345);

    f = r.next();
    ASSERT_TRUE(f.isOk());
    EXPECT_TRUE(f.value().asBool());

    f = r.next();
    ASSERT_TRUE(f.isOk());
    EXPECT_EQ(f.value().type, WireType::I64);
    EXPECT_EQ(f.value().varint, 0x0123456789abcdefull);

    f = r.next();
    ASSERT_TRUE(f.isOk());
    EXPECT_EQ(f.value().asDouble(), 2.5);

    f = r.next();
    ASSERT_TRUE(f.isOk());
    EXPECT_EQ(f.value().bytes, (Bytes{0x00, 0xff, 0x10}));

    f = r.next();
    ASSERT_TRUE(f.isOk());
    EXPECT_EQ(f.value().asString(), "hello");
    EXPECT_TRUE(r.atEnd());
}

TEST(WireTest, FieldNumberZeroRejected)
{
    // tag byte 0x00 = field 0, VARINT — invalid on arrival.
    Bytes buf{0x00, 0x01};
    WireReader r(buf);
    EXPECT_FALSE(r.next().isOk());
}

TEST(WireTest, UnknownWireTypesRejected)
{
    for (std::uint8_t wt : {3, 4, 5, 6, 7}) {
        Bytes buf{static_cast<std::uint8_t>((1u << 3) | wt), 0x01};
        WireReader r(buf);
        EXPECT_FALSE(r.next().isOk()) << unsigned(wt);
    }
}

TEST(WireTest, TruncatedInputsAreErrors)
{
    // Varint that never terminates (all continuation bits).
    Bytes runaway(kMaxVarintBytes + 2, 0x80);
    {
        WireReader r(runaway);
        EXPECT_FALSE(r.nextVarint().isOk());
    }
    // Tag byte alone, payload missing.
    {
        Bytes buf{0x08}; // field 1, VARINT
        WireReader r(buf);
        EXPECT_FALSE(r.next().isOk());
    }
    // I64 with fewer than 8 payload bytes.
    {
        Bytes buf{0x09, 0x01, 0x02, 0x03}; // field 1, I64
        WireReader r(buf);
        EXPECT_FALSE(r.next().isOk());
    }
}

TEST(WireTest, OverlongLenPrefixIsErrorBeforeAllocation)
{
    // field 1, LEN, declared length far beyond the buffer. The
    // reader must reject it by comparing against remaining() rather
    // than trying to allocate/copy the declared size.
    WireWriter w;
    Bytes buf{0x0a}; // field 1, LEN
    appendVarint(buf, 0xffffffffffffull);
    buf.push_back(0x42);
    WireReader r(buf);
    EXPECT_FALSE(r.next().isOk());
}

TEST(WireTest, DeepLenNestingDoesNotRecurse)
{
    // 200k levels of LEN nesting under an unknown field number. A
    // recursive skip would overflow the stack; the iterative reader
    // surfaces the outer payload in one hop and message decoders
    // simply ignore it.
    constexpr int kDepth = 200000;
    // Emit outside-in: level k's payload length is level k-1's whole
    // size, so precompute sizes and write tags head-first in O(n).
    std::vector<std::size_t> size(kDepth + 1);
    size[0] = 0;
    for (int k = 1; k <= kDepth; ++k)
        size[k] = 1 + varintSize(size[k - 1]) + size[k - 1];
    Bytes inner;
    inner.reserve(size[kDepth]);
    for (int k = kDepth; k >= 1; --k) {
        inner.push_back(0x4a); // field 9, LEN — unknown to every schema
        appendVarint(inner, size[k - 1]);
    }
    ASSERT_EQ(inner.size(), size[kDepth]);
    auto decoded = proto::AttestRequest::decodeTagged(inner);
    ASSERT_TRUE(decoded.isOk());
    EXPECT_EQ(decoded.value().requestId, 0u); // all defaults
}

/** xorshift64 — deterministic corruption source, no global RNG. */
std::uint64_t
nextRand(std::uint64_t &state)
{
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
}

Bytes
sampleMessageBytes()
{
    proto::MeasureResponse m;
    m.requestId = 77;
    m.vid = "vm-robust";
    m.rm = {proto::MeasurementType::PlatformPcrs,
            proto::MeasurementType::CpuMeasure};
    m.nonce3 = {1, 2, 3, 4, 5, 6, 7, 8};
    m.quote3 = {9, 9, 9};
    m.signature = Bytes(64, 0xab);
    m.certificate = Bytes(80, 0xcd);
    proto::Measurement meas;
    meas.type = proto::MeasurementType::CpuMeasure;
    meas.values = {1, 2, 3};
    m.m.items.push_back(meas);
    return m.encodeTagged(proto::WireContext{proto::WireFormat::Tagged,
                                             proto::kWireVersionLatest});
}

TEST(WireRobustnessTest, EveryTruncationDecodesCleanly)
{
    const Bytes full = sampleMessageBytes();
    for (std::size_t len = 0; len < full.size(); ++len) {
        Bytes prefix(full.begin(),
                     full.begin() + static_cast<std::ptrdiff_t>(len));
        // Must terminate with either a value or an error; the
        // sanitizers catch anything worse.
        auto r = proto::MeasureResponse::decodeTagged(prefix);
        (void)r;
    }
    SUCCEED();
}

TEST(WireRobustnessTest, SeededByteCorruptionNeverCrashes)
{
    const Bytes full = sampleMessageBytes();
    std::uint64_t rng = 0x5eed5eed5eed5eedull;
    for (int round = 0; round < 2000; ++round) {
        Bytes mutated = full;
        // 1-4 corruptions: byte flips biased toward tag positions.
        const int flips = 1 + static_cast<int>(nextRand(rng) % 4);
        for (int i = 0; i < flips; ++i) {
            const std::size_t at = nextRand(rng) % mutated.size();
            mutated[at] ^= static_cast<std::uint8_t>(nextRand(rng) % 255 + 1);
        }
        auto r = proto::MeasureResponse::decodeTagged(mutated);
        (void)r;
    }
    SUCCEED();
}

TEST(WireRobustnessTest, SeededGarbageNeverCrashes)
{
    std::uint64_t rng = 0xdecafbadull;
    for (int round = 0; round < 2000; ++round) {
        Bytes garbage(nextRand(rng) % 256);
        for (auto &b : garbage)
            b = static_cast<std::uint8_t>(nextRand(rng));
        (void)proto::AttestRequest::decodeTagged(garbage);
        (void)proto::ReportToController::decodeTagged(garbage);
        (void)proto::ReplicateEntries::decodeTagged(garbage);
        (void)proto::unpackMessage(garbage);
    }
    SUCCEED();
}

} // namespace
} // namespace monatt::wire
