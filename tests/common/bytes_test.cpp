/**
 * @file
 * Byte utilities: hex round trips, concatenation, constant-time
 * comparison semantics.
 */

#include <gtest/gtest.h>

#include "common/bytes.h"

namespace monatt
{
namespace
{

TEST(BytesTest, HexRoundTrip)
{
    const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x10};
    EXPECT_EQ(toHex(data), "0001abff10");
    EXPECT_EQ(fromHex("0001abff10"), data);
    EXPECT_EQ(fromHex("0001ABFF10"), data);
}

TEST(BytesTest, HexEmpty)
{
    EXPECT_EQ(toHex({}), "");
    EXPECT_TRUE(fromHex("").empty());
}

TEST(BytesTest, FromHexRejectsMalformed)
{
    EXPECT_THROW(fromHex("abc"), std::invalid_argument);
    EXPECT_THROW(fromHex("zz"), std::invalid_argument);
    EXPECT_THROW(fromHex("0g"), std::invalid_argument);
}

TEST(BytesTest, StringRoundTrip)
{
    EXPECT_EQ(toString(toBytes("hello")), "hello");
    EXPECT_TRUE(toBytes("").empty());
}

TEST(BytesTest, Concat)
{
    const Bytes a = {1, 2};
    const Bytes b = {};
    const Bytes c = {3};
    EXPECT_EQ(concat({&a, &b, &c}), (Bytes{1, 2, 3}));
    EXPECT_TRUE(concat({&b}).empty());
}

TEST(BytesTest, Append)
{
    Bytes dst = {1};
    append(dst, {2, 3});
    EXPECT_EQ(dst, (Bytes{1, 2, 3}));
}

TEST(BytesTest, ConstantTimeEqual)
{
    EXPECT_TRUE(constantTimeEqual({1, 2, 3}, {1, 2, 3}));
    EXPECT_FALSE(constantTimeEqual({1, 2, 3}, {1, 2, 4}));
    EXPECT_FALSE(constantTimeEqual({1, 2}, {1, 2, 3}));
    EXPECT_TRUE(constantTimeEqual({}, {}));
}

TEST(BytesTest, XorInPlace)
{
    Bytes a = {0xff, 0x00, 0x55};
    xorInPlace(a, {0x0f, 0xf0, 0x55});
    EXPECT_EQ(a, (Bytes{0xf0, 0xf0, 0x00}));
    EXPECT_THROW(xorInPlace(a, Bytes{0x01}), std::invalid_argument);
}

} // namespace
} // namespace monatt
