/**
 * @file
 * Result/Status semantics and the logging facility.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/result.h"

namespace monatt
{
namespace
{

TEST(ResultTest, OkCarriesValue)
{
    auto r = Result<int>::ok(42);
    EXPECT_TRUE(r.isOk());
    EXPECT_TRUE(static_cast<bool>(r));
    EXPECT_EQ(r.value(), 42);
    EXPECT_TRUE(r.errorMessage().empty());
}

TEST(ResultTest, ErrorCarriesMessage)
{
    auto r = Result<int>::error("nope");
    EXPECT_FALSE(r.isOk());
    EXPECT_EQ(r.errorMessage(), "nope");
    EXPECT_THROW(r.value(), std::logic_error);
    EXPECT_THROW(r.take(), std::logic_error);
}

TEST(ResultTest, TakeMovesValueOut)
{
    auto r = Result<std::string>::ok("payload");
    const std::string v = r.take();
    EXPECT_EQ(v, "payload");
    // After take the result no longer holds a value.
    EXPECT_FALSE(r.isOk());
}

TEST(ResultTest, MutableValueAccess)
{
    auto r = Result<std::vector<int>>::ok({1, 2});
    r.value().push_back(3);
    EXPECT_EQ(r.value().size(), 3u);
}

TEST(ResultTest, MoveOnlyTypes)
{
    auto r = Result<std::unique_ptr<int>>::ok(std::make_unique<int>(7));
    auto p = r.take();
    EXPECT_EQ(*p, 7);
}

TEST(StatusTest, OkAndError)
{
    EXPECT_TRUE(Status::ok().isOk());
    EXPECT_TRUE(Status::ok().errorMessage().empty());
    const Status err = Status::error("bad");
    EXPECT_FALSE(err.isOk());
    EXPECT_FALSE(static_cast<bool>(err));
    EXPECT_EQ(err.errorMessage(), "bad");
}

TEST(LoggingTest, LevelGating)
{
    const LogLevel before = Logger::level();
    Logger::setLevel(LogLevel::Error);
    EXPECT_EQ(Logger::level(), LogLevel::Error);
    // Below-threshold statements are skipped without evaluating the
    // stream (the macro's whole point); verify via a side effect.
    int evaluated = 0;
    auto touch = [&evaluated] {
        ++evaluated;
        return "x";
    };
    MONATT_LOG(Debug, "test") << touch();
    EXPECT_EQ(evaluated, 0);
    Logger::setLevel(LogLevel::Off);
    MONATT_LOG(Error, "test") << touch();
    EXPECT_EQ(evaluated, 0);
    Logger::setLevel(before);
}

} // namespace
} // namespace monatt
