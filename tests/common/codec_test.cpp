/**
 * @file
 * Serialization codec: round trips for every field type and strict
 * rejection of truncated or malformed buffers — the protocol layer
 * relies on the reader's strictness to catch tampering.
 */

#include <gtest/gtest.h>

#include "common/codec.h"

namespace monatt
{
namespace
{

TEST(CodecTest, ScalarRoundTrip)
{
    ByteWriter w;
    w.putU8(0xab);
    w.putU16(0x1234);
    w.putU32(0xdeadbeef);
    w.putU64(0x0123456789abcdefULL);
    w.putI64(-42);
    w.putDouble(3.14159);

    ByteReader r(w.data());
    EXPECT_EQ(r.getU8().value(), 0xab);
    EXPECT_EQ(r.getU16().value(), 0x1234);
    EXPECT_EQ(r.getU32().value(), 0xdeadbeefu);
    EXPECT_EQ(r.getU64().value(), 0x0123456789abcdefULL);
    EXPECT_EQ(r.getI64().value(), -42);
    EXPECT_DOUBLE_EQ(r.getDouble().value(), 3.14159);
    EXPECT_TRUE(r.atEnd());
}

TEST(CodecTest, BytesAndStringRoundTrip)
{
    ByteWriter w;
    w.putBytes({1, 2, 3});
    w.putString("hello");
    w.putBytes({});
    w.putString("");

    ByteReader r(w.data());
    EXPECT_EQ(r.getBytes().value(), (Bytes{1, 2, 3}));
    EXPECT_EQ(r.getString().value(), "hello");
    EXPECT_TRUE(r.getBytes().value().empty());
    EXPECT_EQ(r.getString().value(), "");
    EXPECT_TRUE(r.atEnd());
}

TEST(CodecTest, RawRoundTrip)
{
    ByteWriter w;
    w.putRaw({9, 8, 7});
    ByteReader r(w.data());
    EXPECT_EQ(r.getRaw(3).value(), (Bytes{9, 8, 7}));
    EXPECT_FALSE(r.getRaw(1).isOk());
}

TEST(CodecTest, TruncatedScalarFails)
{
    const Bytes buf = {0x01, 0x02};
    ByteReader r(buf);
    EXPECT_FALSE(r.getU32().isOk());
    ByteReader r2(buf);
    EXPECT_FALSE(r2.getU64().isOk());
}

TEST(CodecTest, TruncatedLengthPrefixFails)
{
    ByteWriter w;
    w.putBytes({1, 2, 3, 4, 5});
    Bytes buf = w.take();
    buf.resize(buf.size() - 2); // Chop payload.
    ByteReader r(buf);
    EXPECT_FALSE(r.getBytes().isOk());
}

TEST(CodecTest, OverlongLengthPrefixFails)
{
    ByteWriter w;
    w.putU32(1000); // Claims 1000 bytes follow.
    w.putRaw({1, 2, 3});
    ByteReader r(w.data());
    EXPECT_FALSE(r.getBytes().isOk());
}

TEST(CodecTest, RemainingTracksConsumption)
{
    ByteWriter w;
    w.putU32(7);
    ByteReader r(w.data());
    EXPECT_EQ(r.remaining(), 4u);
    ASSERT_TRUE(r.getU16().isOk());
    EXPECT_EQ(r.remaining(), 2u);
    EXPECT_FALSE(r.atEnd());
}

TEST(CodecTest, EmptyBuffer)
{
    const Bytes empty;
    ByteReader r(empty);
    EXPECT_TRUE(r.atEnd());
    EXPECT_FALSE(r.getU8().isOk());
}

TEST(CodecTest, DoubleSpecialValues)
{
    ByteWriter w;
    w.putDouble(0.0);
    w.putDouble(-1.5e300);
    ByteReader r(w.data());
    EXPECT_DOUBLE_EQ(r.getDouble().value(), 0.0);
    EXPECT_DOUBLE_EQ(r.getDouble().value(), -1.5e300);
}

} // namespace
} // namespace monatt
