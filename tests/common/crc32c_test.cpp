#include "common/crc32c.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace monatt
{
namespace
{

std::uint32_t
crcOfString(const std::string &s)
{
    return crc32c(reinterpret_cast<const std::uint8_t *>(s.data()),
                  s.size());
}

// Known-answer vectors from RFC 3720 (iSCSI) appendix B.4.
TEST(Crc32cTest, Rfc3720KnownAnswers)
{
    const std::vector<std::uint8_t> zeros(32, 0x00);
    EXPECT_EQ(crc32c(zeros.data(), zeros.size()), 0x8a9136aau);

    const std::vector<std::uint8_t> ones(32, 0xff);
    EXPECT_EQ(crc32c(ones.data(), ones.size()), 0x62a8ab43u);

    std::vector<std::uint8_t> ascending(32);
    for (std::size_t i = 0; i < ascending.size(); ++i)
        ascending[i] = static_cast<std::uint8_t>(i);
    EXPECT_EQ(crc32c(ascending.data(), ascending.size()), 0x46dd794eu);
}

TEST(Crc32cTest, ClassicCheckString)
{
    // CRC32C("123456789") is the standard catalog check value.
    EXPECT_EQ(crcOfString("123456789"), 0xe3069283u);
}

TEST(Crc32cTest, EmptyInputIsZero)
{
    EXPECT_EQ(crc32c(nullptr, 0), 0u);
}

TEST(Crc32cTest, SeedChainsAcrossSplits)
{
    const std::string s = "storage fault plane";
    const std::uint32_t whole = crcOfString(s);
    for (std::size_t cut = 0; cut <= s.size(); ++cut)
    {
        const auto *p = reinterpret_cast<const std::uint8_t *>(s.data());
        std::uint32_t c = crc32c(0, p, cut);
        c = crc32c(c, p + cut, s.size() - cut);
        EXPECT_EQ(c, whole) << "split at " << cut;
    }
}

TEST(Crc32cTest, SingleBitFlipChangesChecksum)
{
    std::vector<std::uint8_t> data(64, 0x5c);
    const std::uint32_t clean = crc32c(data.data(), data.size());
    for (std::size_t i = 0; i < data.size(); ++i)
    {
        data[i] ^= 0x01;
        EXPECT_NE(crc32c(data.data(), data.size()), clean)
            << "flip at " << i;
        data[i] ^= 0x01;
    }
}

TEST(Crc32cTest, U64FoldMatchesByteSerialization)
{
    const std::uint64_t v = 0x0123456789abcdefULL;
    std::uint8_t bytes[8];
    for (int i = 0; i < 8; ++i)
        bytes[i] = static_cast<std::uint8_t>(v >> (8 * i));
    EXPECT_EQ(crc32cU64(0, v), crc32c(bytes, 8));
    EXPECT_EQ(crc32cU64(0xdeadbeefu, v), crc32c(0xdeadbeefu, bytes, 8));
}

} // namespace
} // namespace monatt
