/**
 * @file
 * Workload models: the service catalog's CPU/I-O-bound character
 * (measured, not assumed — Figures 6/7/10 depend on it), victim
 * program accounting, and covert-channel parameter helpers.
 */

#include <gtest/gtest.h>

#include "hypervisor/scheduler.h"
#include "sim/event_queue.h"
#include "workloads/attacks.h"
#include "workloads/programs.h"
#include "workloads/services.h"

namespace monatt::workloads
{
namespace
{

using hypervisor::CreditScheduler;
using hypervisor::VCpuId;

TEST(ServiceCatalogTest, SixServicesWithDeclaredCharacter)
{
    const auto &catalog = serviceCatalog();
    ASSERT_EQ(catalog.size(), 6u);
    int cpuBound = 0;
    for (const ServiceProfile &p : catalog)
        cpuBound += p.cpuBound;
    EXPECT_EQ(cpuBound, 3); // database, web, app.
    EXPECT_TRUE(serviceProfile("database").cpuBound);
    EXPECT_FALSE(serviceProfile("mail").cpuBound);
    EXPECT_THROW(serviceProfile("quantum"), std::out_of_range);
    EXPECT_THROW(makeService("quantum"), std::out_of_range);
}

/** Measure a service's solo CPU share over 30 s on a private CPU. */
double
measuredCpuShare(const std::string &service)
{
    sim::EventQueue events;
    CreditScheduler sched(events, CreditScheduler::Params{});
    sched.addPCpu();
    const VCpuId v = sched.addVCpu(1, 0);
    sched.setBehavior(v, makeService(service));
    sched.start();
    events.run(seconds(30));
    return toSeconds(sched.stats(v).runtime) / 30.0;
}

class ServiceCharacterTest
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(ServiceCharacterTest, DutyCycleMatchesClassification)
{
    const std::string name = GetParam();
    const double share = measuredCpuShare(name);
    if (serviceProfile(name).cpuBound) {
        EXPECT_GT(share, 0.75) << name << " share " << share;
    } else {
        EXPECT_LT(share, 0.25) << name << " share " << share;
    }
}

INSTANTIATE_TEST_SUITE_P(AllServices, ServiceCharacterTest,
                         ::testing::Values("database", "file", "web",
                                           "app", "stream", "mail"));

TEST(ServiceWorkloadTest, WorkDoneAccumulates)
{
    sim::EventQueue events;
    CreditScheduler sched(events, CreditScheduler::Params{});
    sched.addPCpu();
    const VCpuId v = sched.addVCpu(1, 0);
    auto workload = makeService("database");
    ServiceWorkload *probe = workload.get();
    sched.setBehavior(v, std::move(workload));
    sched.start();
    events.run(seconds(5));
    // workDone tracks completed bursts; close to accounted runtime.
    EXPECT_GT(probe->workDone(), seconds(3));
    EXPECT_LE(probe->workDone(), seconds(5) + msec(100));
}

TEST(VictimProgramsTest, CatalogAndDemands)
{
    const auto &programs = victimPrograms();
    ASSERT_EQ(programs.size(), 3u);
    EXPECT_EQ(programs[0].name, "bzip2");
    for (const auto &p : programs)
        EXPECT_GT(p.cpuDemand, seconds(1));
}

TEST(CpuBoundProgramTest, RepeatsWhenLooping)
{
    sim::EventQueue events;
    CreditScheduler sched(events, CreditScheduler::Params{});
    sched.addPCpu();
    const VCpuId v = sched.addVCpu(1, 0);
    int completions = 0;
    sched.setBehavior(v, std::make_unique<CpuBoundProgram>(
                             msec(100),
                             [&](SimTime) { ++completions; },
                             /*repeat=*/true));
    sched.start();
    events.run(seconds(1));
    EXPECT_EQ(completions, 10);
}

TEST(CovertParamsTest, PresetsAndBandwidth)
{
    const auto fast = CovertChannelParams::fastPreset();
    EXPECT_NEAR(fast.bandwidthBps(), 200.0, 1.0);
    const auto detect = CovertChannelParams::detectPreset();
    EXPECT_NEAR(detect.bandwidthBps(), 25.0, 1.0);
    EXPECT_LT(detect.shortBit, detect.longBit);
    EXPECT_GT(detect.framePeriod, detect.longBit);
}

TEST(CovertDecodeTest, ThresholdAndNoiseFloor)
{
    CovertChannelParams p;
    p.shortBit = msec(5);
    p.longBit = msec(25);
    // Gap below half the short bit: scheduler noise, skipped.
    // Above the midpoint (15 ms): a 1; below: a 0.
    const std::vector<double> gaps = {1.0, 5.2, 24.8, 2.0, 14.0, 16.0};
    const auto bits = decodeFromGaps(gaps, p);
    ASSERT_EQ(bits.size(), 4u);
    EXPECT_FALSE(bits[0]); // 5.2 ms.
    EXPECT_TRUE(bits[1]);  // 24.8 ms.
    EXPECT_FALSE(bits[2]); // 14 ms.
    EXPECT_TRUE(bits[3]);  // 16 ms.
}

TEST(AttackInstallTest, RequiresTwoVcpus)
{
    sim::EventQueue events;
    hypervisor::HypervisorConfig cfg;
    cfg.numPCpus = 1;
    cfg.hypervisorCode = toBytes("x");
    cfg.hostOsCode = toBytes("y");
    hypervisor::Hypervisor hv(events, cfg);
    const auto dom = hv.createDomain("single", 1, 0, toBytes("i"));
    EXPECT_THROW(installAvailabilityAttack(hv, dom),
                 std::invalid_argument);
    EXPECT_THROW(installCovertSender(hv, dom,
                                     std::make_shared<CovertMessage>(),
                                     CovertChannelParams{}),
                 std::invalid_argument);
}

} // namespace
} // namespace monatt::workloads
