/**
 * @file
 * End-to-end tests of the paper's two attacks on the simulated credit
 * scheduler: the availability attack must starve the victim by >10x
 * (Figure 6), and the covert channel must transmit bits that are
 * decodable by the receiver and visible as a bimodal usage-interval
 * distribution (Figures 4 and 5).
 */

#include <gtest/gtest.h>

#include "hypervisor/hypervisor.h"
#include "sim/event_queue.h"
#include "workloads/attacks.h"
#include "workloads/programs.h"
#include "workloads/services.h"

namespace monatt::workloads
{
namespace
{

using hypervisor::DomainId;
using hypervisor::Hypervisor;
using hypervisor::HypervisorConfig;

struct AttackFixture
{
    sim::EventQueue events;
    Hypervisor hv;
    tpm::TpmEmulator tpm;

    AttackFixture()
        : hv(events, makeConfig()), tpm(makeTpmKey())
    {
        hv.boot(tpm);
    }

    static HypervisorConfig
    makeConfig()
    {
        HypervisorConfig cfg;
        cfg.numPCpus = 1; // Attacker and victim share one CPU (§4.5.1).
        cfg.hypervisorCode = toBytes("xen-4.2");
        cfg.hostOsCode = toBytes("dom0-linux");
        return cfg;
    }

    static crypto::RsaKeyPair
    makeTpmKey()
    {
        Rng rng(515);
        return crypto::rsaGenerateKeyPair(256, rng);
    }
};

TEST(AvailabilityAttackTest, StarvesVictimMoreThanTenfold)
{
    AttackFixture f;
    const DomainId victim = f.hv.createDomain("victim", 1, 0,
                                              toBytes("img-v"));
    const DomainId attacker = f.hv.createDomain("attacker", 2, 0,
                                                toBytes("img-a"));

    SimTime completedAt = -1;
    const SimTime work = seconds(1);
    f.hv.setBehavior(victim, 0, std::make_unique<CpuBoundProgram>(
                                    work,
                                    [&](SimTime t) { completedAt = t; }));
    installAvailabilityAttack(f.hv, attacker);

    f.events.run(seconds(30));
    ASSERT_GT(completedAt, 0) << "victim never finished";
    const double slowdown = toSeconds(completedAt) / toSeconds(work);
    EXPECT_GT(slowdown, 10.0);
    EXPECT_LT(slowdown, 40.0); // Sanity: not a total lockout.
}

TEST(AvailabilityAttackTest, AttackerDodgesTickSampling)
{
    AttackFixture f;
    const DomainId victim = f.hv.createDomain("victim", 1, 0,
                                              toBytes("img-v"));
    const DomainId attacker = f.hv.createDomain("attacker", 2, 0,
                                                toBytes("img-a"));
    f.hv.setBehavior(victim, 0, std::make_unique<SpinnerProgram>());
    installAvailabilityAttack(f.hv, attacker);
    f.events.run(seconds(5));

    auto &sched = f.hv.scheduler();
    const auto hogVcpu = f.hv.domain(attacker).vcpus[0];
    const auto victimVcpu = f.hv.domain(victim).vcpus[0];
    // The hog owns >90% of the CPU yet absorbs almost no tick debits;
    // the starved victim absorbs nearly all of them.
    EXPECT_GT(sched.stats(hogVcpu).runtime,
              9 * sched.stats(victimVcpu).runtime);
    EXPECT_LT(sched.stats(hogVcpu).ticksAbsorbed,
              sched.stats(victimVcpu).ticksAbsorbed / 4 + 10);
}

TEST(AvailabilityAttackTest, VictimUnaffectedByIoBoundNeighbor)
{
    // Contrast case from Figure 6: an I/O-bound co-runner leaves the
    // victim essentially at solo speed.
    AttackFixture f;
    const DomainId victim = f.hv.createDomain("victim", 1, 0,
                                              toBytes("img-v"));
    const DomainId neighbor = f.hv.createDomain("file-server", 1, 0,
                                                toBytes("img-f"));
    SimTime completedAt = -1;
    const SimTime work = seconds(1);
    f.hv.setBehavior(victim, 0, std::make_unique<CpuBoundProgram>(
                                    work,
                                    [&](SimTime t) { completedAt = t; }));
    f.hv.setBehavior(neighbor, 0, makeService("file"));
    f.events.run(seconds(10));
    ASSERT_GT(completedAt, 0);
    const double slowdown = toSeconds(completedAt) / toSeconds(work);
    EXPECT_LT(slowdown, 1.25);
}

TEST(AvailabilityAttackTest, CpuBoundNeighborDoublesRuntime)
{
    AttackFixture f;
    const DomainId victim = f.hv.createDomain("victim", 1, 0,
                                              toBytes("img-v"));
    const DomainId neighbor = f.hv.createDomain("db-server", 1, 0,
                                                toBytes("img-d"));
    SimTime completedAt = -1;
    const SimTime work = seconds(1);
    f.hv.setBehavior(victim, 0, std::make_unique<CpuBoundProgram>(
                                    work,
                                    [&](SimTime t) { completedAt = t; }));
    f.hv.setBehavior(neighbor, 0, makeService("database"));
    f.events.run(seconds(10));
    ASSERT_GT(completedAt, 0);
    const double slowdown = toSeconds(completedAt) / toSeconds(work);
    EXPECT_GT(slowdown, 1.5);
    EXPECT_LT(slowdown, 2.6);
}

/** Transmit a fixed message and return the VMM-profiled intervals of
 * the sender plus the receiver-inferred gaps. */
struct CovertRun
{
    std::vector<double> senderIntervals;
    std::vector<bool> sent;
    std::vector<bool> decoded;
};

CovertRun
runCovertChannel(const CovertChannelParams &params, std::size_t numBits)
{
    AttackFixture f;
    const DomainId receiver = f.hv.createDomain("receiver", 1, 0,
                                                toBytes("img-r"));
    // Heavier weight models the paper's sender "keeping its vCPUs
    // idle for some time to build up Xen scheduling credits": the
    // sender's credit inflow covers its tick debits.
    const DomainId sender = f.hv.createDomain("sender", 2, 0,
                                              toBytes("img-s"), 1024);
    f.hv.setBehavior(receiver, 0, std::make_unique<SpinnerProgram>());

    auto message = std::make_shared<CovertMessage>();
    Rng rng(0xbeef);
    for (std::size_t i = 0; i < numBits; ++i)
        message->bits.push_back(rng.nextBool());

    f.hv.profiler().startWindow(sender, f.events.now());
    // Track receiver gaps via its run intervals.
    f.hv.profiler().startWindow(receiver, f.events.now());

    installCovertSender(f.hv, sender, message, params);
    // Margin covers the receiver's initial 30 ms slice (transmission
    // starts once the helper is first scheduled) plus trailing frames.
    const SimTime duration =
        params.framePeriod * static_cast<SimTime>(numBits + 4) + msec(40);
    f.events.run(duration);
    f.hv.profiler().stopWindow(sender, f.events.now());
    f.hv.profiler().stopWindow(receiver, f.events.now());

    CovertRun out;
    out.sent = message->bits;
    out.senderIntervals = f.hv.profiler().windowIntervals(sender);
    // Sender occupancy == gaps in the receiver's otherwise continuous
    // execution == exactly the sender's merged intervals; decode from
    // the sender's observed intervals (what the receiver would infer).
    out.decoded = decodeFromGaps(out.senderIntervals, params);
    return out;
}

TEST(CovertChannelTest, TransmitsDecodableBits)
{
    const CovertRun run = runCovertChannel(
        CovertChannelParams::detectPreset(), 64);
    ASSERT_EQ(run.decoded.size(), run.sent.size());
    std::size_t correct = 0;
    for (std::size_t i = 0; i < run.sent.size(); ++i)
        correct += run.decoded[i] == run.sent[i];
    // Expect an essentially clean channel in simulation.
    EXPECT_GE(correct, run.sent.size() - 1);
}

TEST(CovertChannelTest, FastPresetReaches200Bps)
{
    const CovertChannelParams params = CovertChannelParams::fastPreset();
    EXPECT_NEAR(params.bandwidthBps(), 200.0, 1.0);
    const CovertRun run = runCovertChannel(params, 100);
    ASSERT_EQ(run.decoded.size(), run.sent.size());
    std::size_t correct = 0;
    for (std::size_t i = 0; i < run.sent.size(); ++i)
        correct += run.decoded[i] == run.sent[i];
    EXPECT_GE(correct, run.sent.size() - 2);
}

TEST(CovertChannelTest, SenderIntervalsAreBimodal)
{
    const CovertChannelParams params =
        CovertChannelParams::detectPreset();
    const CovertRun run = runCovertChannel(params, 128);

    Histogram h(0.0, 30.0, 30);
    for (double ms : run.senderIntervals)
        h.add(ms);
    const auto peaks = findPeaks(h.distribution(), 0.15);
    ASSERT_EQ(peaks.size(), 2u) << "expected two covert peaks";
    // Peaks near the 5 ms and 24 ms bit durations.
    EXPECT_NEAR(static_cast<double>(peaks[0].bin), 4.0, 2.0);
    EXPECT_NEAR(static_cast<double>(peaks[1].bin), 23.0, 2.0);
}

TEST(CovertChannelTest, BenignVmIsUnimodalAtFullSlice)
{
    // Two CPU-bound VMs: each runs full 30 ms slices, so the monitored
    // VM's usage intervals pile into the last bin (Figure 5 bottom).
    AttackFixture f;
    const DomainId a = f.hv.createDomain("benign", 1, 0, toBytes("a"));
    const DomainId b = f.hv.createDomain("rival", 1, 0, toBytes("b"));
    f.hv.setBehavior(a, 0, std::make_unique<SpinnerProgram>());
    f.hv.setBehavior(b, 0, std::make_unique<SpinnerProgram>());

    f.hv.profiler().startWindow(a, f.events.now());
    f.events.run(seconds(10));
    f.hv.profiler().stopWindow(a, f.events.now());

    const Histogram h = f.hv.profiler().intervalHistogram(a);
    const auto peaks = findPeaks(h.distribution(), 0.15);
    ASSERT_EQ(peaks.size(), 1u);
    EXPECT_GE(peaks[0].bin, 27u);
}

} // namespace
} // namespace monatt::workloads
