/**
 * @file
 * Parameterized sweeps over attack and defense configurations:
 * the covert channel works and is detected across bit-length
 * encodings; the availability attack's power depends on the exact
 * scheduler features it exploits (disable BOOST and it collapses to
 * fair sharing — the defense knob evaluated by bench_ablation_boost).
 */

#include <gtest/gtest.h>

#include "attestation/interpreters.h"
#include "hypervisor/hypervisor.h"
#include "sim/event_queue.h"
#include "workloads/attacks.h"
#include "workloads/programs.h"

namespace monatt::workloads
{
namespace
{

using hypervisor::CreditScheduler;
using hypervisor::DomainId;
using hypervisor::Hypervisor;
using hypervisor::HypervisorConfig;

std::unique_ptr<Hypervisor>
makeHv(sim::EventQueue &events, CreditScheduler::Params sched = {})
{
    HypervisorConfig cfg;
    cfg.numPCpus = 1;
    cfg.sched = sched;
    cfg.hypervisorCode = toBytes("xen");
    cfg.hostOsCode = toBytes("dom0");
    return std::make_unique<Hypervisor>(events, cfg);
}

void
bootHv(Hypervisor &hv)
{
    // boot() only uses the TPM during the call (IMU measurement), so
    // a throwaway device is fine for scheduler-focused tests.
    static const crypto::RsaKeyPair kp = [] {
        Rng rng(4242);
        return crypto::rsaGenerateKeyPair(256, rng);
    }();
    tpm::TpmEmulator tpm(kp);
    hv.boot(tpm);
}

/** (shortMs, longMs, frameMs) encodings to sweep. */
struct Encoding
{
    int shortMs;
    int longMs;
    int frameMs;
};

class CovertEncodingSweep : public ::testing::TestWithParam<Encoding>
{};

TEST_P(CovertEncodingSweep, TransmitsAndIsDetected)
{
    const Encoding enc = GetParam();
    CovertChannelParams params;
    params.shortBit = msec(enc.shortMs);
    params.longBit = msec(enc.longMs);
    params.framePeriod = msec(enc.frameMs);

    sim::EventQueue events;
    auto hvPtr = makeHv(events);
    Hypervisor &hv = *hvPtr;
    bootHv(hv);
    const DomainId receiver = hv.createDomain("r", 1, 0, toBytes("r"));
    const DomainId sender = hv.createDomain("s", 2, 0, toBytes("s"),
                                            1024);
    hv.setBehavior(receiver, 0, std::make_unique<SpinnerProgram>());

    auto message = std::make_shared<CovertMessage>();
    Rng rng(enc.shortMs * 100 + enc.longMs);
    for (int i = 0; i < 64; ++i)
        message->bits.push_back(rng.nextBool());

    hv.profiler().startWindow(sender, events.now());
    installCovertSender(hv, sender, message, params);
    events.run(params.framePeriod * 70 + msec(40));
    hv.profiler().stopWindow(sender, events.now());

    // Decodable.
    const auto decoded = decodeFromGaps(
        hv.profiler().windowIntervals(sender), params);
    ASSERT_EQ(decoded.size(), message->bits.size());
    std::size_t correct = 0;
    for (std::size_t i = 0; i < decoded.size(); ++i)
        correct += decoded[i] == message->bits[i];
    EXPECT_GE(correct, decoded.size() - 2);

    // Detectable from the 30-TER histogram.
    Histogram h = hv.profiler().intervalHistogram(sender);
    attestation::CovertChannelInterpreter detector;
    std::string why;
    EXPECT_TRUE(detector.looksCovert(h.counts(), &why)) << why;
}

INSTANTIATE_TEST_SUITE_P(
    Encodings, CovertEncodingSweep,
    ::testing::Values(Encoding{5, 24, 40}, Encoding{3, 15, 25},
                      Encoding{2, 12, 20}, Encoding{4, 20, 30},
                      Encoding{6, 26, 45}),
    [](const ::testing::TestParamInfo<Encoding> &info) {
        return "s" + std::to_string(info.param.shortMs) + "l" +
               std::to_string(info.param.longMs) + "f" +
               std::to_string(info.param.frameMs);
    });

/** Run the availability attack under given scheduler params; return
 * the victim slowdown. */
double
attackSlowdown(CreditScheduler::Params sched)
{
    sim::EventQueue events;
    auto hvPtr = makeHv(events, sched);
    Hypervisor &hv = *hvPtr;
    bootHv(hv);
    const DomainId victim = hv.createDomain("v", 1, 0, toBytes("v"));
    const DomainId attacker = hv.createDomain("a", 2, 0, toBytes("a"));
    SimTime completedAt = -1;
    const SimTime work = seconds(1);
    hv.setBehavior(victim, 0,
                   std::make_unique<CpuBoundProgram>(
                       work, [&](SimTime t) { completedAt = t; }));
    installAvailabilityAttack(hv, attacker);
    events.run(seconds(40));
    if (completedAt < 0)
        return 1e9;
    return toSeconds(completedAt) / toSeconds(work);
}

TEST(AvailabilityDefenseTest, DisablingBoostAloneIsNotEnough)
{
    // The attack exploits two mechanisms: BOOST preemption *and*
    // sampled credit debiting. With BOOST off the attacker still
    // dodges every tick, so it stays UNDER while the victim sinks to
    // OVER — plain priority still starves the victim.
    CreditScheduler::Params noBoost;
    noBoost.boostEnabled = false;
    EXPECT_GT(attackSlowdown(noBoost), 5.0);
}

TEST(AvailabilityDefenseTest, ExactAccountingNeutralizesTheAttack)
{
    // Charging for actual consumption (instead of sampling at ticks)
    // closes the loophole: the attacker's ~94% usage drains its
    // credits, it loses both BOOST eligibility and UNDER priority,
    // and the victim recovers its fair share.
    CreditScheduler::Params vulnerable;
    CreditScheduler::Params hardened;
    hardened.exactAccounting = true;

    const double attacked = attackSlowdown(vulnerable);
    const double defended = attackSlowdown(hardened);
    EXPECT_GT(attacked, 10.0);
    EXPECT_LT(defended, 3.0);
}

TEST(AvailabilityDefenseTest, ExactAccountingPreservesFairSharing)
{
    // The defense must not break the normal case: two CPU-bound
    // domains still split the CPU evenly.
    CreditScheduler::Params hardened;
    hardened.exactAccounting = true;
    sim::EventQueue events;
    auto hvPtr = makeHv(events, hardened);
    Hypervisor &hv = *hvPtr;
    bootHv(hv);
    const DomainId a = hv.createDomain("a", 1, 0, toBytes("a"));
    const DomainId b = hv.createDomain("b", 1, 0, toBytes("b"));
    hv.setBehavior(a, 0, std::make_unique<SpinnerProgram>());
    hv.setBehavior(b, 0, std::make_unique<SpinnerProgram>());
    events.run(seconds(10));
    const double ra = toSeconds(
        hv.scheduler().stats(hv.domain(a).vcpus[0]).runtime);
    const double rb = toSeconds(
        hv.scheduler().stats(hv.domain(b).vcpus[0]).runtime);
    EXPECT_NEAR(ra, 5.0, 0.6);
    EXPECT_NEAR(rb, 5.0, 0.6);
}

class TickPeriodSweep : public ::testing::TestWithParam<int>
{};

TEST_P(TickPeriodSweep, AttackTracksSamplingPeriod)
{
    // The attack dodges the sampling tick; it works at any sampling
    // period because the attacker plans its bursts against nextTick.
    CreditScheduler::Params params;
    params.tickPeriod = msec(GetParam());
    const double slowdown = attackSlowdown(params);
    EXPECT_GT(slowdown, 5.0) << "tick period " << GetParam() << " ms";
}

INSTANTIATE_TEST_SUITE_P(Periods, TickPeriodSweep,
                         ::testing::Values(5, 10, 20));

} // namespace
} // namespace monatt::workloads
