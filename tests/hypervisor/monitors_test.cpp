/**
 * @file
 * Hypervisor-level monitors: VMM Profile Tool windows and interval
 * merging, VM introspection vs guest reporting, PMU synthesis, IMU
 * boot/image measurements, and the guest OS process model.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/cloud.h"
#include "crypto/sha256.h"
#include "hypervisor/hypervisor.h"
#include "hypervisor/monitors.h"
#include "sim/event_queue.h"
#include "workloads/programs.h"

namespace monatt::hypervisor
{
namespace
{

TEST(GuestOsTest, ProcessLifecycle)
{
    GuestOs os;
    const auto pid = os.startProcess("nginx");
    os.startProcess("postgres");
    EXPECT_EQ(os.guestReportedTasks().size(), 2u);
    EXPECT_TRUE(os.killProcess(pid));
    EXPECT_FALSE(os.killProcess(pid));
    EXPECT_EQ(os.guestReportedTasks().size(), 1u);
}

TEST(GuestOsTest, HiddenMalwareVisibleOnlyToVmi)
{
    GuestOs os;
    os.startProcess("init");
    os.injectHiddenMalware("rootkit");
    const auto guest = os.guestReportedTasks();
    const auto truth = os.memoryTruthTasks();
    EXPECT_EQ(guest.size(), 1u);
    EXPECT_EQ(truth.size(), 2u);
    EXPECT_EQ(std::count(truth.begin(), truth.end(), "rootkit"), 1);
    EXPECT_EQ(std::count(guest.begin(), guest.end(), "rootkit"), 0);
}

TEST(VmmProfileToolTest, WindowRuntimeAndClipping)
{
    VmmProfileTool tool;
    tool.recordRun(0, 1, msec(0), msec(10)); // Before the window.
    tool.startWindow(1, msec(5));
    // Straddles the window start: only [5,10) counts... the recordRun
    // above already happened; record one straddling run now.
    tool.recordRun(0, 1, msec(4), msec(12));
    tool.recordRun(0, 1, msec(20), msec(25));
    tool.stopWindow(1, msec(30));
    EXPECT_EQ(tool.windowRuntime(1), msec(12));
    EXPECT_EQ(tool.windowLength(1, msec(99)), msec(25));
    // Lifetime accumulates everything.
    EXPECT_EQ(tool.totalRuntime(1), msec(10) + msec(8) + msec(5));
}

TEST(VmmProfileToolTest, ContiguousIntervalsMerge)
{
    VmmProfileTool tool;
    tool.startWindow(1, 0);
    tool.recordRun(0, 1, msec(0), msec(3));
    tool.recordRun(0, 1, msec(3), msec(7)); // Contiguous: merges.
    tool.recordRun(0, 1, msec(10), msec(12)); // Gap: new interval.
    tool.stopWindow(1, msec(20));
    const auto &intervals = tool.windowIntervals(1);
    ASSERT_EQ(intervals.size(), 2u);
    EXPECT_DOUBLE_EQ(intervals[0], 7.0);
    EXPECT_DOUBLE_EQ(intervals[1], 2.0);
}

TEST(VmmProfileToolTest, HistogramBinsIntervals)
{
    VmmProfileTool tool;
    tool.startWindow(1, 0);
    tool.recordRun(0, 1, msec(0), msec(4) + usec(600)); // 4.6 ms.
    tool.recordRun(0, 1, msec(10), msec(40)); // Clamps to last bin.
    tool.stopWindow(1, msec(50));
    const Histogram h = tool.intervalHistogram(1);
    EXPECT_EQ(h.counts()[4], 1u) << "the paper's (4,5] example";
    EXPECT_EQ(h.counts()[29], 1u);
}

TEST(VmmProfileToolTest, UnknownDomainIsEmpty)
{
    VmmProfileTool tool;
    EXPECT_EQ(tool.windowRuntime(99), 0);
    EXPECT_TRUE(tool.windowIntervals(99).empty());
    EXPECT_EQ(tool.totalRuntime(99), 0);
}

TEST(PmuTest, CountersScaleWithRuntime)
{
    const auto c1 = PerformanceMonitorUnit::fromRuntime(msec(1));
    const auto c2 = PerformanceMonitorUnit::fromRuntime(msec(2));
    EXPECT_EQ(c2.cycles, 2 * c1.cycles);
    EXPECT_GT(c1.instructions, c1.cycles); // IPC > 1 by default.
    EXPECT_EQ(PerformanceMonitorUnit::fromRuntime(0).cycles, 0u);
}

TEST(ImuTest, BootMeasurementsMatchExpectedValues)
{
    Rng rng(77);
    tpm::TpmEmulator tpm(crypto::rsaGenerateKeyPair(256, rng));
    IntegrityMeasurementUnit imu(tpm);
    imu.measureBoot(toBytes("hv-code"), toBytes("os-code"));
    EXPECT_EQ(imu.hypervisorPcr(),
              core::expectedBootPcr(toBytes("hv-code")));
    EXPECT_EQ(imu.hostOsPcr(), core::expectedBootPcr(toBytes("os-code")));
}

TEST(ImuTest, CorruptedSoftwareChangesPcr)
{
    Rng rng(77);
    tpm::TpmEmulator a(crypto::rsaGenerateKeyPair(256, rng));
    tpm::TpmEmulator b(crypto::rsaGenerateKeyPair(256, rng));
    IntegrityMeasurementUnit imuA(a), imuB(b);
    imuA.measureBoot(toBytes("hv"), toBytes("os"));
    Bytes corrupted = toBytes("hv");
    corrupted[0] ^= 0x01;
    imuB.measureBoot(corrupted, toBytes("os"));
    EXPECT_NE(imuA.hypervisorPcr(), imuB.hypervisorPcr());
    EXPECT_EQ(imuA.hostOsPcr(), imuB.hostOsPcr());
}

TEST(ImuTest, VmImageMeasurement)
{
    Rng rng(78);
    tpm::TpmEmulator tpm(crypto::rsaGenerateKeyPair(256, rng));
    IntegrityMeasurementUnit imu(tpm);
    const Bytes digest = imu.measureVmImage(toBytes("image-bytes"));
    EXPECT_EQ(digest, crypto::Sha256::hash(toBytes("image-bytes")));
    EXPECT_NE(imu.vmImagePcr(), Bytes(32, 0x00));
}

TEST(HypervisorTest, DomainLifecycle)
{
    sim::EventQueue events;
    HypervisorConfig cfg;
    cfg.numPCpus = 2;
    cfg.hypervisorCode = toBytes("hv");
    cfg.hostOsCode = toBytes("os");
    Hypervisor hv(events, cfg);
    Rng rng(79);
    tpm::TpmEmulator tpm(crypto::rsaGenerateKeyPair(256, rng));
    hv.boot(tpm);
    EXPECT_TRUE(hv.booted());

    const DomainId dom = hv.createDomain("vm", 2, 1, toBytes("img"));
    EXPECT_TRUE(hv.hasDomain(dom));
    EXPECT_EQ(hv.domain(dom).vcpus.size(), 2u);
    EXPECT_EQ(hv.domain(dom).imageDigest,
              crypto::Sha256::hash(toBytes("img")));
    EXPECT_EQ(hv.domainIds().size(), 1u);

    hv.setBehavior(dom, 0, std::make_unique<workloads::SpinnerProgram>());
    events.run(msec(100));
    EXPECT_GT(hv.scheduler().stats(hv.domain(dom).vcpus[0]).runtime, 0);

    hv.pauseDomain(dom);
    EXPECT_FALSE(hv.domain(dom).running);
    hv.resumeDomain(dom);
    EXPECT_TRUE(hv.domain(dom).running);

    hv.destroyDomain(dom);
    EXPECT_FALSE(hv.hasDomain(dom));
    EXPECT_THROW(hv.domain(dom), std::out_of_range);
    EXPECT_THROW(hv.createDomain("bad", 0, 0, {}),
                 std::invalid_argument);
}

} // namespace
} // namespace monatt::hypervisor
