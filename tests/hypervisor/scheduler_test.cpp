/**
 * @file
 * Credit scheduler: fairness, priorities, preemption, credits,
 * suspend/resume — the mechanics the paper's attacks exploit.
 */

#include <gtest/gtest.h>

#include "hypervisor/scheduler.h"
#include "sim/event_queue.h"
#include "workloads/programs.h"

namespace monatt::hypervisor
{
namespace
{

using workloads::CpuBoundProgram;
using workloads::IdleProgram;
using workloads::SpinnerProgram;

struct SchedFixture
{
    sim::EventQueue events;
    CreditScheduler sched;

    SchedFixture() : sched(events, CreditScheduler::Params{})
    {
        sched.addPCpu();
    }
};

TEST(SchedulerTest, SingleVCpuGetsAllCpu)
{
    SchedFixture f;
    const VCpuId v = f.sched.addVCpu(/*domain=*/1, /*pcpu=*/0);
    f.sched.setBehavior(v, std::make_unique<SpinnerProgram>());
    f.sched.start();
    f.events.run(seconds(1));
    EXPECT_NEAR(toSeconds(f.sched.stats(v).runtime), 1.0, 0.01);
}

TEST(SchedulerTest, TwoSpinnersShareFairly)
{
    SchedFixture f;
    const VCpuId a = f.sched.addVCpu(1, 0);
    const VCpuId b = f.sched.addVCpu(2, 0);
    f.sched.setBehavior(a, std::make_unique<SpinnerProgram>());
    f.sched.setBehavior(b, std::make_unique<SpinnerProgram>());
    f.sched.start();
    f.events.run(seconds(10));
    const double ra = toSeconds(f.sched.stats(a).runtime);
    const double rb = toSeconds(f.sched.stats(b).runtime);
    EXPECT_NEAR(ra, 5.0, 0.5);
    EXPECT_NEAR(rb, 5.0, 0.5);
    EXPECT_NEAR(ra + rb, 10.0, 0.05);
}

TEST(SchedulerTest, WeightsBiasFairShare)
{
    // Xen weights bias credit allotment; the heavier vCPU should stay
    // UNDER longer and receive measurably more CPU.
    SchedFixture f;
    const VCpuId heavy = f.sched.addVCpu(1, 0, /*weight=*/512);
    const VCpuId light = f.sched.addVCpu(2, 0, /*weight=*/256);
    f.sched.setBehavior(heavy, std::make_unique<SpinnerProgram>());
    f.sched.setBehavior(light, std::make_unique<SpinnerProgram>());
    f.sched.start();
    f.events.run(seconds(10));
    EXPECT_GT(f.sched.stats(heavy).runtime,
              f.sched.stats(light).runtime);
}

TEST(SchedulerTest, CpuBoundProgramCompletes)
{
    SchedFixture f;
    const VCpuId v = f.sched.addVCpu(1, 0);
    SimTime completedAt = -1;
    f.sched.setBehavior(v, std::make_unique<CpuBoundProgram>(
                               seconds(2),
                               [&](SimTime t) { completedAt = t; }));
    f.sched.start();
    f.events.run(seconds(5));
    // Alone on the pCPU: completion at ~2 s of wall clock.
    EXPECT_NEAR(toSeconds(completedAt), 2.0, 0.01);
    EXPECT_NEAR(toSeconds(f.sched.stats(v).runtime), 2.0, 0.01);
}

TEST(SchedulerTest, ContendedProgramTakesTwiceAsLong)
{
    // The Figure 6 "fair share" shape: a CPU-bound victim against a
    // CPU-bound co-runner finishes in ~2x its solo time.
    SchedFixture f;
    const VCpuId victim = f.sched.addVCpu(1, 0);
    const VCpuId rival = f.sched.addVCpu(2, 0);
    SimTime completedAt = -1;
    f.sched.setBehavior(victim, std::make_unique<CpuBoundProgram>(
                                    seconds(2),
                                    [&](SimTime t) { completedAt = t; }));
    f.sched.setBehavior(rival, std::make_unique<SpinnerProgram>());
    f.sched.start();
    f.events.run(seconds(10));
    EXPECT_NEAR(toSeconds(completedAt), 4.0, 0.4);
}

TEST(SchedulerTest, IdleVCpuConsumesNothing)
{
    SchedFixture f;
    const VCpuId idle = f.sched.addVCpu(1, 0);
    const VCpuId busy = f.sched.addVCpu(2, 0);
    f.sched.setBehavior(idle, std::make_unique<IdleProgram>());
    f.sched.setBehavior(busy, std::make_unique<SpinnerProgram>());
    f.sched.start();
    f.events.run(seconds(2));
    EXPECT_EQ(f.sched.stats(idle).runtime, 0);
    EXPECT_NEAR(toSeconds(f.sched.stats(busy).runtime), 2.0, 0.01);
}

TEST(SchedulerTest, RunningVCpuAbsorbsTickDebits)
{
    SchedFixture f;
    const VCpuId v = f.sched.addVCpu(1, 0);
    f.sched.setBehavior(v, std::make_unique<SpinnerProgram>());
    f.sched.start();
    f.events.run(seconds(1));
    // 100 ticks in 1 s; the only running vCPU absorbs all of them.
    EXPECT_EQ(f.sched.stats(v).ticksAbsorbed, 100u);
}

TEST(SchedulerTest, SoleSpinnerGoesOverAndRecovers)
{
    // A spinner sharing with nothing: it pays 300/period and receives
    // 300/period, so credits hover near the starting level and the
    // vCPU oscillates around the UNDER/OVER boundary without ever
    // being starved.
    SchedFixture f;
    const VCpuId v = f.sched.addVCpu(1, 0);
    f.sched.setBehavior(v, std::make_unique<SpinnerProgram>());
    f.sched.start();
    f.events.run(seconds(1));
    EXPECT_GE(f.sched.credits(v), -300);
    EXPECT_LE(f.sched.credits(v), 300);
}

TEST(SchedulerTest, InterruptWakeBoostsAndPreempts)
{
    // An I/O-style vCPU waking with positive credits gets BOOST and
    // runs promptly even though a spinner occupies the CPU.
    SchedFixture f;
    const VCpuId spinner = f.sched.addVCpu(1, 0);
    const VCpuId sleeper = f.sched.addVCpu(2, 0);

    struct Waker : Behavior
    {
        BurstPlan
        next(const BehaviorContext &) override
        {
            BurstPlan p;
            p.burst = usec(200);
            p.blockFor = msec(5);
            p.wakeIsInterrupt = true;
            return p;
        }
    };

    f.sched.setBehavior(spinner, std::make_unique<SpinnerProgram>());
    f.sched.setBehavior(sleeper, std::make_unique<Waker>());
    f.sched.start();
    f.events.run(seconds(2));

    const VCpuStats &s = f.sched.stats(sleeper);
    // ~385 wake/run cycles in 2 s; boosts on nearly all of them.
    EXPECT_GT(s.wakes, 300u);
    EXPECT_GT(s.boosts, s.wakes / 2);
    // It got its ~200 us per 5.2 ms despite the spinner.
    EXPECT_GT(toSeconds(s.runtime), 0.05);
}

TEST(SchedulerTest, BoostDisabledDelaysWaker)
{
    CreditScheduler::Params params;
    params.boostEnabled = false;
    sim::EventQueue events;
    CreditScheduler sched(events, params);
    sched.addPCpu();
    const VCpuId spinner = sched.addVCpu(1, 0);
    const VCpuId sleeper = sched.addVCpu(2, 0);

    struct Waker : Behavior
    {
        BurstPlan
        next(const BehaviorContext &) override
        {
            BurstPlan p;
            p.burst = usec(200);
            p.blockFor = msec(5);
            return p;
        }
    };

    sched.setBehavior(spinner, std::make_unique<SpinnerProgram>());
    sched.setBehavior(sleeper, std::make_unique<Waker>());
    sched.start();
    events.run(seconds(2));
    EXPECT_EQ(sched.stats(sleeper).boosts, 0u);
}

TEST(SchedulerTest, SuspendStopsExecutionResumeRestarts)
{
    SchedFixture f;
    const VCpuId v = f.sched.addVCpu(1, 0);
    f.sched.setBehavior(v, std::make_unique<SpinnerProgram>());
    f.sched.start();
    f.events.run(seconds(1));
    const SimTime before = f.sched.stats(v).runtime;

    f.sched.suspend(v);
    f.events.run(seconds(2));
    EXPECT_EQ(f.sched.stats(v).runtime, before);
    EXPECT_EQ(f.sched.state(v), VCpuState::Blocked);

    f.sched.resume(v);
    f.events.run(seconds(3));
    EXPECT_NEAR(toSeconds(f.sched.stats(v).runtime - before), 1.0, 0.01);
}

TEST(SchedulerTest, RetireRemovesVCpu)
{
    SchedFixture f;
    const VCpuId v = f.sched.addVCpu(1, 0);
    const VCpuId other = f.sched.addVCpu(2, 0);
    f.sched.setBehavior(v, std::make_unique<SpinnerProgram>());
    f.sched.setBehavior(other, std::make_unique<SpinnerProgram>());
    f.sched.start();
    f.events.run(seconds(1));
    f.sched.retire(v);
    const SimTime at = f.sched.stats(v).runtime;
    f.events.run(seconds(2));
    EXPECT_EQ(f.sched.stats(v).runtime, at);
    // The survivor now owns the whole CPU.
    EXPECT_NEAR(toSeconds(f.sched.stats(other).runtime),
                0.5 + 1.0, 0.3);
}

TEST(SchedulerTest, RunHookReportsIntervals)
{
    SchedFixture f;
    const VCpuId v = f.sched.addVCpu(7, 0);
    SimTime total = 0;
    int count = 0;
    f.sched.setRunHook([&](VCpuId vcpu, DomainId dom, SimTime s,
                           SimTime e) {
        EXPECT_EQ(vcpu, v);
        EXPECT_EQ(dom, 7);
        EXPECT_LT(s, e);
        total += e - s;
        ++count;
    });
    f.sched.setBehavior(v, std::make_unique<CpuBoundProgram>(msec(100)));
    f.sched.start();
    f.events.run(seconds(1));
    EXPECT_GT(count, 0);
    EXPECT_EQ(total, msec(100));
}

TEST(SchedulerTest, PcpuBusyTimeTracksLoad)
{
    SchedFixture f;
    const VCpuId v = f.sched.addVCpu(1, 0);
    f.sched.setBehavior(v, std::make_unique<CpuBoundProgram>(msec(300)));
    f.sched.start();
    f.events.run(seconds(1));
    EXPECT_EQ(f.sched.pcpuBusyTime(0), msec(300));
}

TEST(SchedulerTest, MultiplePCpusIndependent)
{
    SchedFixture f;
    const int p1 = f.sched.addPCpu();
    const VCpuId a = f.sched.addVCpu(1, 0);
    const VCpuId b = f.sched.addVCpu(2, p1);
    f.sched.setBehavior(a, std::make_unique<SpinnerProgram>());
    f.sched.setBehavior(b, std::make_unique<SpinnerProgram>());
    f.sched.start();
    f.events.run(seconds(1));
    EXPECT_NEAR(toSeconds(f.sched.stats(a).runtime), 1.0, 0.01);
    EXPECT_NEAR(toSeconds(f.sched.stats(b).runtime), 1.0, 0.01);
}

TEST(SchedulerTest, AddVCpuRejectsBadPCpu)
{
    SchedFixture f;
    EXPECT_THROW(f.sched.addVCpu(1, 5), std::out_of_range);
    EXPECT_THROW(f.sched.addVCpu(1, -1), std::out_of_range);
}

} // namespace
} // namespace monatt::hypervisor
