#include "sim/checkpoint_policy.h"

#include <gtest/gtest.h>

#include "common/bytes.h"

namespace monatt::sim
{
namespace
{

Bytes
payload(std::size_t n)
{
    return Bytes(n, 0xab);
}

void
appendSynced(StableStore &store, std::size_t count, std::size_t bytes = 4)
{
    for (std::size_t i = 0; i < count; ++i)
        store.append(1, payload(bytes));
    store.sync();
}

TEST(CheckpointPolicyTest, CountTriggerMatchesLegacyBehavior)
{
    StableStore store("n");
    CheckpointPolicyConfig cfg;
    cfg.everyRecords = 4;
    CheckpointPolicy policy(cfg);

    appendSynced(store, 3);
    EXPECT_FALSE(policy.shouldCheckpoint(store, 0));
    appendSynced(store, 1);
    EXPECT_TRUE(policy.shouldCheckpoint(store, 0));

    store.checkpoint(payload(8));
    policy.noteCheckpoint();
    EXPECT_FALSE(policy.shouldCheckpoint(store, 0));
}

TEST(CheckpointPolicyTest, AllAxesZeroNeverTriggers)
{
    StableStore store("n");
    CheckpointPolicyConfig cfg;
    cfg.everyRecords = 0;
    CheckpointPolicy policy(cfg);
    appendSynced(store, 10000);
    EXPECT_FALSE(policy.shouldCheckpoint(store, minutes(60 * 24)));
}

TEST(CheckpointPolicyTest, SizeTriggerCountsJournalPayloadBytes)
{
    StableStore store("n");
    CheckpointPolicyConfig cfg;
    cfg.everyRecords = 0;
    cfg.everyBytes = 100;
    CheckpointPolicy policy(cfg);

    appendSynced(store, 3, 32); // 96 bytes
    EXPECT_FALSE(policy.shouldCheckpoint(store, 0));
    appendSynced(store, 1, 32); // 128 bytes
    EXPECT_TRUE(policy.shouldCheckpoint(store, 0));

    // The snapshot blob does not count toward the size trigger.
    store.checkpoint(payload(4096));
    policy.noteCheckpoint();
    EXPECT_FALSE(policy.shouldCheckpoint(store, 0));
}

TEST(CheckpointPolicyTest, AgeTriggerBoundsOldestRecord)
{
    StableStore store("n");
    CheckpointPolicyConfig cfg;
    cfg.everyRecords = 0;
    cfg.maxAge = seconds(10);
    CheckpointPolicy policy(cfg);

    // Journal empty: no baseline, no trigger.
    EXPECT_FALSE(policy.shouldCheckpoint(store, seconds(100)));

    appendSynced(store, 1);
    EXPECT_FALSE(policy.shouldCheckpoint(store, seconds(100)));
    EXPECT_FALSE(policy.shouldCheckpoint(store, seconds(109)));
    EXPECT_TRUE(policy.shouldCheckpoint(store, seconds(110)));
}

TEST(CheckpointPolicyTest, AgeBaselineResetsAfterCheckpoint)
{
    StableStore store("n");
    CheckpointPolicyConfig cfg;
    cfg.everyRecords = 0;
    cfg.maxAge = seconds(10);
    CheckpointPolicy policy(cfg);

    appendSynced(store, 1);
    EXPECT_FALSE(policy.shouldCheckpoint(store, seconds(5)));
    store.checkpoint(payload(8));
    policy.noteCheckpoint();

    // New records age from their own first-seen time, not the old
    // baseline.
    appendSynced(store, 1);
    EXPECT_FALSE(policy.shouldCheckpoint(store, seconds(20)));
    EXPECT_FALSE(policy.shouldCheckpoint(store, seconds(29)));
    EXPECT_TRUE(policy.shouldCheckpoint(store, seconds(30)));
}

TEST(CheckpointPolicyTest, EmptyJournalClearsStaleBaseline)
{
    StableStore store("n");
    CheckpointPolicyConfig cfg;
    cfg.everyRecords = 0;
    cfg.maxAge = seconds(10);
    CheckpointPolicy policy(cfg);

    appendSynced(store, 1);
    EXPECT_FALSE(policy.shouldCheckpoint(store, seconds(5)));

    // An out-of-band checkpoint (e.g. recovery) empties the journal
    // without the caller notifying the policy; observing the empty
    // journal must drop the stale baseline.
    store.checkpoint(payload(8));
    EXPECT_FALSE(policy.shouldCheckpoint(store, seconds(50)));
    appendSynced(store, 1);
    // Age runs from when the policy first observes the record (55),
    // not from the stale pre-checkpoint baseline.
    EXPECT_FALSE(policy.shouldCheckpoint(store, seconds(55)));
    EXPECT_FALSE(policy.shouldCheckpoint(store, seconds(64)));
    EXPECT_TRUE(policy.shouldCheckpoint(store, seconds(65)));
}

TEST(CheckpointPolicyTest, TriggersCombineAsAnyOf)
{
    StableStore store("n");
    CheckpointPolicyConfig cfg;
    cfg.everyRecords = 100;
    cfg.everyBytes = 64;
    cfg.maxAge = seconds(10);
    CheckpointPolicy policy(cfg);

    // Well under count, but over size.
    appendSynced(store, 2, 40);
    EXPECT_TRUE(policy.shouldCheckpoint(store, 0));

    store.checkpoint(payload(8));
    policy.noteCheckpoint();

    // Under count and size, but over age (baseline is the first
    // observation of the new record, at t=9).
    appendSynced(store, 1, 1);
    EXPECT_FALSE(policy.shouldCheckpoint(store, seconds(9)));
    EXPECT_FALSE(policy.shouldCheckpoint(store, seconds(18)));
    EXPECT_TRUE(policy.shouldCheckpoint(store, seconds(19)));
}

} // namespace
} // namespace monatt::sim
