/**
 * @file
 * Discrete-event kernel: ordering, FIFO tie-breaking, cancellation,
 * clock semantics.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"

namespace monatt::sim
{
namespace
{

TEST(EventQueueTest, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(usec(30), [&] { order.push_back(3); });
    q.schedule(usec(10), [&] { order.push_back(1); });
    q.schedule(usec(20), [&] { order.push_back(2); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), usec(30));
}

TEST(EventQueueTest, FifoAmongEqualTimestamps)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(usec(10), [&order, i] { order.push_back(i); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime)
{
    EventQueue q;
    SimTime firedAt = -1;
    q.schedule(usec(100), [&] {
        q.scheduleAfter(usec(50), [&] { firedAt = q.now(); });
    });
    q.runAll();
    EXPECT_EQ(firedAt, usec(150));
}

TEST(EventQueueTest, CancelPreventsExecution)
{
    EventQueue q;
    bool fired = false;
    const EventId id = q.schedule(usec(10), [&] { fired = true; });
    q.cancel(id);
    q.runAll();
    EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelIsIdempotentAndSelective)
{
    EventQueue q;
    int count = 0;
    const EventId a = q.schedule(usec(10), [&] { ++count; });
    q.schedule(usec(20), [&] { ++count; });
    q.cancel(a);
    q.cancel(a);
    q.runAll();
    EXPECT_EQ(count, 1);
}

TEST(EventQueueTest, RunUntilBoundary)
{
    EventQueue q;
    int count = 0;
    q.schedule(usec(10), [&] { ++count; });
    q.schedule(usec(20), [&] { ++count; });
    q.schedule(usec(30), [&] { ++count; });
    q.run(usec(20));
    EXPECT_EQ(count, 2); // Inclusive boundary.
    EXPECT_EQ(q.now(), usec(20));
    q.runAll();
    EXPECT_EQ(count, 3);
}

TEST(EventQueueTest, AdvanceMovesClockWithoutEvents)
{
    EventQueue q;
    q.advance(msec(5));
    EXPECT_EQ(q.now(), msec(5));
    EXPECT_THROW(q.advance(-1), std::invalid_argument);
}

TEST(EventQueueTest, SchedulingInThePastThrows)
{
    EventQueue q;
    q.advance(msec(1));
    EXPECT_THROW(q.schedule(usec(10), [] {}), std::invalid_argument);
}

TEST(EventQueueTest, NextEventTimeSkipsCancelled)
{
    EventQueue q;
    const EventId a = q.schedule(usec(10), [] {});
    q.schedule(usec(20), [] {});
    q.cancel(a);
    EXPECT_EQ(q.nextEventTime(), usec(20));
    q.runAll();
    EXPECT_EQ(q.nextEventTime(), kTimeNever);
}

TEST(EventQueueTest, PendingAndExecutedCounters)
{
    EventQueue q;
    q.schedule(usec(10), [] {});
    q.schedule(usec(20), [] {});
    EXPECT_EQ(q.pending(), 2u);
    q.runOne();
    EXPECT_EQ(q.pending(), 1u);
    EXPECT_EQ(q.executed(), 1u);
}

TEST(EventQueueTest, EventsCanScheduleEvents)
{
    EventQueue q;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 10)
            q.scheduleAfter(usec(1), chain);
    };
    q.scheduleAfter(usec(1), chain);
    q.runAll();
    EXPECT_EQ(depth, 10);
    EXPECT_EQ(q.now(), usec(10));
}

} // namespace
} // namespace monatt::sim
