/**
 * @file
 * Discrete-event kernel: ordering, FIFO tie-breaking, cancellation,
 * clock semantics.
 */

#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <vector>

#include "sim/event_queue.h"

namespace monatt::sim
{
namespace
{

TEST(EventQueueTest, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(usec(30), [&] { order.push_back(3); });
    q.schedule(usec(10), [&] { order.push_back(1); });
    q.schedule(usec(20), [&] { order.push_back(2); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), usec(30));
}

TEST(EventQueueTest, FifoAmongEqualTimestamps)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(usec(10), [&order, i] { order.push_back(i); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime)
{
    EventQueue q;
    SimTime firedAt = -1;
    q.schedule(usec(100), [&] {
        q.scheduleAfter(usec(50), [&] { firedAt = q.now(); });
    });
    q.runAll();
    EXPECT_EQ(firedAt, usec(150));
}

TEST(EventQueueTest, CancelPreventsExecution)
{
    EventQueue q;
    bool fired = false;
    const EventId id = q.schedule(usec(10), [&] { fired = true; });
    q.cancel(id);
    q.runAll();
    EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelIsIdempotentAndSelective)
{
    EventQueue q;
    int count = 0;
    const EventId a = q.schedule(usec(10), [&] { ++count; });
    q.schedule(usec(20), [&] { ++count; });
    q.cancel(a);
    q.cancel(a);
    q.runAll();
    EXPECT_EQ(count, 1);
}

TEST(EventQueueTest, RunUntilBoundary)
{
    EventQueue q;
    int count = 0;
    q.schedule(usec(10), [&] { ++count; });
    q.schedule(usec(20), [&] { ++count; });
    q.schedule(usec(30), [&] { ++count; });
    q.run(usec(20));
    EXPECT_EQ(count, 2); // Inclusive boundary.
    EXPECT_EQ(q.now(), usec(20));
    q.runAll();
    EXPECT_EQ(count, 3);
}

TEST(EventQueueTest, AdvanceMovesClockWithoutEvents)
{
    EventQueue q;
    q.advance(msec(5));
    EXPECT_EQ(q.now(), msec(5));
    EXPECT_THROW(q.advance(-1), std::invalid_argument);
}

TEST(EventQueueTest, SchedulingInThePastThrows)
{
    EventQueue q;
    q.advance(msec(1));
    EXPECT_THROW(q.schedule(usec(10), [] {}), std::invalid_argument);
}

TEST(EventQueueTest, NextEventTimeSkipsCancelled)
{
    EventQueue q;
    const EventId a = q.schedule(usec(10), [] {});
    q.schedule(usec(20), [] {});
    q.cancel(a);
    EXPECT_EQ(q.nextEventTime(), usec(20));
    q.runAll();
    EXPECT_EQ(q.nextEventTime(), kTimeNever);
}

TEST(EventQueueTest, PendingAndExecutedCounters)
{
    EventQueue q;
    q.schedule(usec(10), [] {});
    q.schedule(usec(20), [] {});
    EXPECT_EQ(q.pending(), 2u);
    q.runOne();
    EXPECT_EQ(q.pending(), 1u);
    EXPECT_EQ(q.executed(), 1u);
}

TEST(EventQueueTest, EventsCanScheduleEvents)
{
    EventQueue q;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 10)
            q.scheduleAfter(usec(1), chain);
    };
    q.scheduleAfter(usec(1), chain);
    q.runAll();
    EXPECT_EQ(depth, 10);
    EXPECT_EQ(q.now(), usec(10));
}

// --- Cancellation edge semantics (the generation-id contract) ----------

TEST(EventQueueTest, CancelAfterFireIsNoOp)
{
    EventQueue q;
    int count = 0;
    const EventId a = q.schedule(usec(10), [&] { ++count; });
    q.runAll();
    EXPECT_EQ(count, 1);

    // The id's slot may be reused by a later event; cancelling the
    // stale id must never touch the new occupant.
    q.cancel(a);
    int later = 0;
    q.schedule(usec(20), [&] { ++later; });
    q.cancel(a); // Stale id again, now pointing at a reused slot.
    q.runAll();
    EXPECT_EQ(later, 1);
}

TEST(EventQueueTest, SelfCancelDuringExecutionIsNoOp)
{
    EventQueue q;
    int count = 0;
    EventId self = 0;
    self = q.schedule(usec(10), [&] {
        q.cancel(self); // Defensive self-cancel: already firing.
        ++count;
        // The slot just freed may be handed to this schedule; the
        // stale `self` id must not cancel it.
        q.scheduleAfter(usec(1), [&] { ++count; });
        q.cancel(self);
    });
    q.runAll();
    EXPECT_EQ(count, 2);
}

TEST(EventQueueTest, CancelTwiceReleasesOnce)
{
    EventQueue q;
    bool fired = false;
    const EventId a = q.schedule(usec(10), [&] { fired = true; });
    q.schedule(usec(20), [] {});
    q.cancel(a);
    q.cancel(a); // Second cancel: slot already freed, must not double
                 // free or disturb other pending events.
    EXPECT_EQ(q.pending(), 1u);
    q.runAll();
    EXPECT_FALSE(fired);
    EXPECT_EQ(q.executed(), 1u);
}

TEST(EventQueueTest, CancelZeroAndNeverIssuedIdsAreNoOps)
{
    EventQueue q;
    int count = 0;
    q.schedule(usec(10), [&] { ++count; });
    q.cancel(0);                  // The "none pending" sentinel.
    q.cancel(0xffffffffffffffff); // Absurd slot index.
    q.cancel((1ull << 32) | 7);   // Plausible shape, never issued.
    q.runAll();
    EXPECT_EQ(count, 1);
}

TEST(EventQueueTest, FifoPreservedAcrossCancellationChurn)
{
    // Equal-timestamp FIFO must survive heap restructuring: interleave
    // cancellations between same-time schedules so nodes move through
    // swap-with-last removals, then check execution order.
    EventQueue q;
    std::vector<int> order;
    std::vector<EventId> doomed;
    for (int i = 0; i < 64; ++i) {
        q.schedule(usec(10), [&order, i] { order.push_back(i); });
        doomed.push_back(
            q.schedule(usec(10), [&order] { order.push_back(-1); }));
        if (i % 3 == 0)
            q.cancel(doomed.back());
    }
    for (std::size_t i = 0; i < doomed.size(); ++i) {
        if (i % 3 != 0)
            q.cancel(doomed[i]);
    }
    q.runAll();
    std::vector<int> expect;
    for (int i = 0; i < 64; ++i)
        expect.push_back(i);
    EXPECT_EQ(order, expect);
}

TEST(EventQueueTest, RunAllBackstopBoundsRunawayChains)
{
    EventQueue q;
    std::size_t fired = 0;
    std::function<void()> forever = [&] {
        ++fired;
        q.scheduleAfter(usec(1), forever);
    };
    q.scheduleAfter(usec(1), forever);
    const std::size_t ran = q.runAll(100);
    EXPECT_EQ(ran, 100u);
    EXPECT_EQ(fired, 100u);
    EXPECT_EQ(q.pending(), 1u); // The chain's next link survives.
}

TEST(EventQueueTest, IdsAreNeverReissued)
{
    // Slots are reused; ids are not. Churn one slot through many
    // schedule/fire cycles and check every issued id is distinct and
    // nonzero, and that slot storage stays at the concurrency
    // high-water mark instead of growing with cancel history.
    EventQueue q;
    std::vector<EventId> issued;
    for (int i = 0; i < 100; ++i) {
        const EventId id = q.schedule(q.now() + usec(1), [] {});
        issued.push_back(id);
        if (i % 2 == 0)
            q.cancel(id);
        q.runAll();
        q.cancel(id); // Post-fire cancels must not accumulate state.
    }
    std::set<EventId> unique(issued.begin(), issued.end());
    EXPECT_EQ(unique.size(), issued.size());
    EXPECT_EQ(unique.count(0), 0u);
    EXPECT_LE(q.slotCapacity(), 2u);
}

TEST(EventQueueTest, SlotTableBoundedByPeakNotHistory)
{
    // The tombstone-leak regression test: the old kernel grew its
    // cancelled-set forever under fire-then-cancel churn. The slot
    // table must stay at peak concurrent pending events.
    EventQueue q;
    for (int round = 0; round < 1000; ++round) {
        const EventId a = q.schedule(q.now() + usec(1), [] {});
        const EventId b = q.schedule(q.now() + usec(2), [] {});
        q.cancel(b);
        q.runAll();
        q.cancel(a); // Already fired.
        q.cancel(b); // Already cancelled.
    }
    EXPECT_LE(q.slotCapacity(), 2u);
    EXPECT_EQ(q.freeSlots(), q.slotCapacity());
    EXPECT_EQ(q.pending(), 0u);
}

} // namespace
} // namespace monatt::sim
