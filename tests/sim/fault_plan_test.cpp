/**
 * @file
 * FaultPlan: verdicts are pure functions of (seed, datagram identity,
 * simulated time) — no mutable state, no call-order sensitivity — and
 * the configured rates, windows, partitions and crash schedules behave
 * as documented.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/event_queue.h"
#include "sim/fault_plan.h"

namespace monatt::sim
{
namespace
{

FaultPlanConfig
dropConfig(double p, std::uint64_t seed = 7)
{
    FaultPlanConfig cfg;
    cfg.seed = seed;
    cfg.faults.dropProbability = p;
    return cfg;
}

TEST(FaultPlanTest, VerdictIsPureAndOrderIndependent)
{
    const FaultPlan plan(dropConfig(0.5));

    // Same datagram, asked many times and interleaved with other
    // datagrams: always the same verdict.
    const FaultDecision first = plan.decide("a", "b", "ch", 1, msec(10));
    for (std::uint64_t i = 0; i < 50; ++i) {
        plan.decide("x", "y", "other", i, msec(i));
        const FaultDecision again =
            plan.decide("a", "b", "ch", 1, msec(10));
        EXPECT_EQ(again.drop, first.drop);
        EXPECT_EQ(again.extraDelay, first.extraDelay);
        EXPECT_EQ(again.duplicates, first.duplicates);
    }

    // A second plan with the same seed agrees verdict-for-verdict.
    const FaultPlan twin(dropConfig(0.5));
    for (std::uint64_t i = 0; i < 200; ++i) {
        EXPECT_EQ(twin.decide("a", "b", "ch", i, msec(i)).drop,
                  plan.decide("a", "b", "ch", i, msec(i)).drop);
    }
}

TEST(FaultPlanTest, SeedChangesTheSchedule)
{
    const FaultPlan p1(dropConfig(0.5, 1));
    const FaultPlan p2(dropConfig(0.5, 2));
    int differing = 0;
    for (std::uint64_t i = 0; i < 200; ++i) {
        differing += p1.decide("a", "b", "ch", i, msec(i)).drop !=
                     p2.decide("a", "b", "ch", i, msec(i)).drop;
    }
    EXPECT_GT(differing, 0);
}

TEST(FaultPlanTest, DropRateTracksProbability)
{
    const FaultPlan plan(dropConfig(0.25));
    int dropped = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        dropped += plan.decide("a", "b", "data",
                               static_cast<std::uint64_t>(i), msec(i))
                       .drop;
    }
    const double rate = static_cast<double>(dropped) / n;
    EXPECT_NEAR(rate, 0.25, 0.03);
}

TEST(FaultPlanTest, ZeroConfigNeverInterferes)
{
    const FaultPlan plan(FaultPlanConfig{});
    for (std::uint64_t i = 0; i < 200; ++i) {
        const FaultDecision d = plan.decide("a", "b", "ch", i, msec(i));
        EXPECT_FALSE(d.drop);
        EXPECT_FALSE(d.partitioned);
        EXPECT_EQ(d.extraDelay, 0);
        EXPECT_EQ(d.duplicates, 0);
    }
}

TEST(FaultPlanTest, ActiveWindowGatesFaults)
{
    FaultPlanConfig cfg = dropConfig(1.0);
    cfg.activeFrom = seconds(1);
    cfg.activeUntil = seconds(2);
    const FaultPlan plan(cfg);
    EXPECT_FALSE(plan.decide("a", "b", "ch", 1, msec(500)).drop);
    EXPECT_TRUE(plan.decide("a", "b", "ch", 1, msec(1500)).drop);
    EXPECT_FALSE(plan.decide("a", "b", "ch", 1, msec(2500)).drop);
}

TEST(FaultPlanTest, PartitionCutsBothDirectionsWhileActive)
{
    FaultPlanConfig cfg;
    cfg.partitions.push_back(Partition{"a", "b", msec(100), msec(200)});
    const FaultPlan plan(cfg);
    EXPECT_FALSE(plan.decide("a", "b", "ch", 1, msec(50)).partitioned);
    EXPECT_TRUE(plan.decide("a", "b", "ch", 1, msec(150)).partitioned);
    EXPECT_TRUE(plan.decide("b", "a", "ch", 1, msec(150)).partitioned);
    EXPECT_FALSE(plan.decide("a", "c", "ch", 1, msec(150)).partitioned);
    EXPECT_FALSE(plan.decide("a", "b", "ch", 1, msec(250)).partitioned);
}

TEST(FaultPlanTest, DuplicationAndDelayAreBounded)
{
    FaultPlanConfig cfg;
    cfg.faults.duplicateProbability = 1.0;
    cfg.faults.extraDelayMax = msec(5);
    const FaultPlan plan(cfg);
    bool sawDelay = false;
    for (std::uint64_t i = 0; i < 200; ++i) {
        const FaultDecision d = plan.decide("a", "b", "ch", i, msec(i));
        EXPECT_EQ(d.duplicates, 1);
        EXPECT_GE(d.extraDelay, 0);
        EXPECT_LE(d.extraDelay, msec(5));
        sawDelay |= d.extraDelay > 0;
    }
    EXPECT_TRUE(sawDelay);
}

TEST(FaultPlanTest, BurstWindowsDropEverythingInside)
{
    FaultPlanConfig cfg;
    cfg.faults.burstProbability = 0.5;
    cfg.faults.burstWindow = msec(10);
    const FaultPlan plan(cfg);

    // Within one window every datagram shares the burst fate.
    int burstyWindows = 0;
    for (int w = 0; w < 100; ++w) {
        const SimTime base = msec(10) * w;
        const bool d0 =
            plan.decide("a", "b", "ch", static_cast<std::uint64_t>(w),
                        base)
                .drop;
        const bool d1 =
            plan.decide("a", "b", "ch", static_cast<std::uint64_t>(w),
                        base + msec(9))
                .drop;
        EXPECT_EQ(d0, d1);
        burstyWindows += d0;
    }
    EXPECT_GT(burstyWindows, 20);
    EXPECT_LT(burstyWindows, 80);
}

TEST(FaultPlanTest, CrashScheduleFiresCallbacks)
{
    EventQueue events;
    FaultPlanConfig cfg;
    cfg.crashes.push_back(CrashEvent{"server-1", msec(100), msec(300)});
    cfg.crashes.push_back(CrashEvent{"as-1", msec(200), kTimeNever});
    const FaultPlan plan(cfg);

    std::vector<std::string> crashed;
    std::vector<std::string> restarted;
    plan.installCrashSchedule(
        events,
        [&](const std::string &node) { crashed.push_back(node); },
        [&](const std::string &node) { restarted.push_back(node); });

    events.advance(msec(150));
    EXPECT_EQ(crashed, (std::vector<std::string>{"server-1"}));
    EXPECT_TRUE(restarted.empty());

    events.advance(msec(250));
    EXPECT_EQ(crashed,
              (std::vector<std::string>{"server-1", "as-1"}));
    EXPECT_EQ(restarted, (std::vector<std::string>{"server-1"}));
}

} // namespace
} // namespace monatt::sim
