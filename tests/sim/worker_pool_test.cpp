/**
 * @file
 * WorkerPool: deterministic fork/join semantics — submission-order
 * joins, exception handling independent of thread count, the
 * MONATT_THREADS override.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>

#include "sim/worker_pool.h"

namespace monatt::sim
{
namespace
{

TEST(WorkerPoolTest, SingleThreadRunsInline)
{
    WorkerPool pool(1);
    EXPECT_EQ(pool.threadCount(), 1u);
    std::vector<std::size_t> order;
    pool.parallelFor(5, [&](std::size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(WorkerPoolTest, ZeroSelectsHardwareConcurrency)
{
    WorkerPool pool(0);
    EXPECT_GE(pool.threadCount(), 1u);
}

TEST(WorkerPoolTest, MapJoinsInSubmissionOrder)
{
    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
        WorkerPool pool(threads);
        const auto out = pool.map<int>(
            100, [](std::size_t i) { return static_cast<int>(i * i); });
        ASSERT_EQ(out.size(), 100u);
        for (std::size_t i = 0; i < out.size(); ++i)
            EXPECT_EQ(out[i], static_cast<int>(i * i));
    }
}

TEST(WorkerPoolTest, EveryTaskRunsExactlyOnce)
{
    WorkerPool pool(4);
    std::atomic<int> runs{0};
    std::vector<std::atomic<int>> perIndex(64);
    pool.parallelFor(64, [&](std::size_t i) {
        ++runs;
        ++perIndex[i];
    });
    EXPECT_EQ(runs.load(), 64);
    for (const auto &c : perIndex)
        EXPECT_EQ(c.load(), 1);
}

TEST(WorkerPoolTest, LowestFailingIndexWinsAtAnyWidth)
{
    for (std::size_t threads : {1u, 4u}) {
        WorkerPool pool(threads);
        std::atomic<int> runs{0};
        try {
            pool.parallelFor(16, [&](std::size_t i) {
                ++runs;
                if (i == 3 || i == 11)
                    throw std::runtime_error("task " +
                                             std::to_string(i));
            });
            FAIL() << "expected an exception";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "task 3")
                << "the first failing index must win";
        }
        // All tasks still ran: the work done never depends on the
        // thread count, even in the failure path.
        EXPECT_EQ(runs.load(), 16);
    }
}

TEST(WorkerPoolTest, EmptyAndSingleItemJobs)
{
    WorkerPool pool(4);
    pool.parallelFor(0, [](std::size_t) { FAIL(); });
    int hits = 0;
    pool.parallelFor(1, [&](std::size_t) { ++hits; });
    EXPECT_EQ(hits, 1);
}

TEST(WorkerPoolTest, SequentialJobsReuseWorkers)
{
    WorkerPool pool(4);
    for (int job = 0; job < 50; ++job) {
        std::vector<int> out(8, 0);
        pool.parallelFor(8, [&](std::size_t i) {
            out[i] = static_cast<int>(i) + job;
        });
        for (std::size_t i = 0; i < out.size(); ++i)
            EXPECT_EQ(out[i], static_cast<int>(i) + job);
    }
}

TEST(WorkerPoolTest, ResolveThreadsHonorsEnvOverride)
{
    unsetenv("MONATT_THREADS");
    EXPECT_EQ(WorkerPool::resolveThreads(3), 3u);
    EXPECT_EQ(WorkerPool::resolveThreads(0), 0u);

    setenv("MONATT_THREADS", "6", 1);
    EXPECT_EQ(WorkerPool::resolveThreads(3), 6u);
    EXPECT_EQ(WorkerPool::resolveThreads(0), 6u);

    setenv("MONATT_THREADS", "garbage", 1);
    EXPECT_EQ(WorkerPool::resolveThreads(3), 3u);
    setenv("MONATT_THREADS", "0", 1);
    EXPECT_EQ(WorkerPool::resolveThreads(3), 3u);
    unsetenv("MONATT_THREADS");
}

TEST(WorkerPoolTest, ConfigureGlobalResizes)
{
    WorkerPool::configureGlobal(2);
    EXPECT_EQ(WorkerPool::global().threadCount(), 2u);
    WorkerPool::configureGlobal(1);
    EXPECT_EQ(WorkerPool::global().threadCount(), 1u);
}

} // namespace
} // namespace monatt::sim
