/**
 * @file
 * Stage timer: the Ceilometer-style instrumentation backing the
 * Figure 9/11 breakdowns.
 */

#include <gtest/gtest.h>

#include "sim/stage_timer.h"

namespace monatt::sim
{
namespace
{

TEST(StageTimerTest, SequentialStages)
{
    StageTimer t;
    t.beginStage("a", 0);
    t.beginStage("b", msec(10)); // Implicitly ends "a".
    t.endStage(msec(30));
    ASSERT_EQ(t.stages().size(), 2u);
    EXPECT_EQ(t.stages()[0].name, "a");
    EXPECT_EQ(t.stages()[0].duration(), msec(10));
    EXPECT_EQ(t.stages()[1].duration(), msec(20));
    EXPECT_EQ(t.total(), msec(30));
}

TEST(StageTimerTest, DurationOfSumsDuplicates)
{
    StageTimer t;
    t.record("attestation", 0, msec(5));
    t.record("spawn", msec(5), msec(9));
    t.record("attestation", msec(9), msec(12));
    EXPECT_EQ(t.durationOf("attestation"), msec(8));
    EXPECT_EQ(t.durationOf("spawn"), msec(4));
    EXPECT_EQ(t.durationOf("absent"), 0);
}

TEST(StageTimerTest, EndWithoutBeginIsNoop)
{
    StageTimer t;
    t.endStage(msec(10));
    EXPECT_TRUE(t.stages().empty());
}

TEST(StageTimerTest, ClearResets)
{
    StageTimer t;
    t.beginStage("a", 0);
    t.endStage(msec(1));
    t.clear();
    EXPECT_TRUE(t.stages().empty());
    EXPECT_EQ(t.total(), 0);
}

} // namespace
} // namespace monatt::sim
