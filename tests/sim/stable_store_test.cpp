/**
 * @file
 * StableStore: WAL semantics — un-synced tail records are lost on a
 * crash, synced records and checkpoints survive, replay preserves LSN
 * order, and the durable digest is a pure function of the operation
 * sequence.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "sim/stable_store.h"

namespace monatt::sim
{
namespace
{

Bytes
payload(const std::string &text)
{
    return toBytes(text);
}

TEST(StableStoreTest, AppendIsVolatileUntilSync)
{
    StableStore store("node-a");
    store.append(1, payload("one"));
    store.append(2, payload("two"));
    EXPECT_EQ(store.pendingRecords(), 2u);
    EXPECT_EQ(store.durableRecords(), 0u);
    EXPECT_TRUE(store.empty());

    store.sync();
    EXPECT_EQ(store.pendingRecords(), 0u);
    EXPECT_EQ(store.durableRecords(), 2u);
    EXPECT_FALSE(store.empty());
}

TEST(StableStoreTest, CrashDropsUnsyncedTail)
{
    StableStore store("node-a");
    store.append(1, payload("durable"));
    store.sync();
    store.append(2, payload("lost-1"));
    store.append(3, payload("lost-2"));

    store.crash();

    EXPECT_EQ(store.stats().recordsLost, 2u);
    auto image = store.replay();
    ASSERT_EQ(image.records.size(), 1u);
    EXPECT_EQ(image.records[0].type, 1);
    EXPECT_EQ(toString(image.records[0].payload), "durable");
}

TEST(StableStoreTest, LsnsAreMonotoneAcrossCrashes)
{
    StableStore store;
    EXPECT_EQ(store.append(1, payload("a")), 1u);
    EXPECT_EQ(store.append(1, payload("b")), 2u);
    store.crash(); // loses both, but LSNs never repeat
    EXPECT_EQ(store.append(1, payload("c")), 3u);
    store.sync();
    auto image = store.replay();
    ASSERT_EQ(image.records.size(), 1u);
    EXPECT_EQ(image.records[0].lsn, 3u);
}

TEST(StableStoreTest, CheckpointSupersedesJournal)
{
    StableStore store("node-b");
    store.append(7, payload("old"));
    store.sync();
    store.append(7, payload("buffered"));

    store.checkpoint(payload("snapshot-state"));

    EXPECT_EQ(store.durableRecords(), 0u);
    EXPECT_EQ(store.pendingRecords(), 0u);

    // A crash right after the checkpoint loses nothing.
    store.crash();
    auto image = store.replay();
    EXPECT_TRUE(image.hasSnapshot);
    EXPECT_EQ(toString(image.snapshot), "snapshot-state");
    EXPECT_TRUE(image.records.empty());
}

TEST(StableStoreTest, ReplayPreservesLsnOrderAfterCheckpoint)
{
    StableStore store;
    store.checkpoint(payload("base"));
    store.append(4, payload("r1"));
    store.append(5, payload("r2"));
    store.sync();
    store.append(6, payload("r3"));
    store.sync();

    auto image = store.replay();
    EXPECT_TRUE(image.hasSnapshot);
    ASSERT_EQ(image.records.size(), 3u);
    EXPECT_LT(image.records[0].lsn, image.records[1].lsn);
    EXPECT_LT(image.records[1].lsn, image.records[2].lsn);
    EXPECT_EQ(image.records[0].type, 4);
    EXPECT_EQ(image.records[2].type, 6);
    EXPECT_EQ(store.stats().recordsReplayed, 3u);
}

TEST(StableStoreTest, DigestIsDeterministicAndSensitive)
{
    auto run = [](bool mutate) {
        StableStore store("node-c");
        store.checkpoint(payload("snap"));
        store.append(1, payload(mutate ? "x" : "a"));
        store.append(2, payload("b"));
        store.sync();
        return store.digest();
    };
    EXPECT_EQ(run(false), run(false));
    EXPECT_NE(run(false), run(true));
}

TEST(StableStoreTest, DigestIgnoresVolatileTail)
{
    StableStore a("n"), b("n");
    a.append(1, payload("synced"));
    b.append(1, payload("synced"));
    a.sync();
    b.sync();
    b.append(9, payload("page-cache-only"));
    EXPECT_EQ(a.digest(), b.digest());
    b.crash();
    EXPECT_EQ(a.digest(), b.digest());
}

TEST(StableStoreTest, DurableBytesCountsSnapshotAndJournal)
{
    StableStore store;
    EXPECT_EQ(store.durableBytes(), 0u);
    store.checkpoint(payload("12345"));
    store.append(1, payload("abc"));
    EXPECT_EQ(store.durableBytes(), 5u); // tail not yet durable
    store.sync();
    EXPECT_EQ(store.durableBytes(), 8u);
}

// --- Bulk paths (appendMany / adoptMany / forEachDurableSince) ---------

TEST(StableStoreTest, AppendManyMatchesIndividualAppends)
{
    StableStore one("node-a");
    one.append(7, payload("alpha"));
    one.append(7, payload("beta"));
    one.append(7, payload("gamma"));
    one.sync();

    StableStore bulk("node-a");
    std::vector<Bytes> batch;
    batch.push_back(payload("alpha"));
    batch.push_back(payload("beta"));
    batch.push_back(payload("gamma"));
    const std::uint64_t last = bulk.appendMany(7, std::move(batch));
    bulk.sync();

    EXPECT_EQ(last, 3u);
    EXPECT_EQ(bulk.durableRecords(), 3u);
    EXPECT_EQ(bulk.digest(), one.digest()); // Byte-identical journal.
    EXPECT_EQ(bulk.stats().appends, 3u);
    EXPECT_EQ(bulk.stats().appendBatches, 1u);
}

TEST(StableStoreTest, AppendManyEmptyIsNoOp)
{
    StableStore store("node-a");
    EXPECT_EQ(store.appendMany(7, {}), 0u);
    EXPECT_EQ(store.pendingRecords(), 0u);
    store.append(1, payload("x"));
    EXPECT_EQ(store.appendMany(7, {}), 0u);
    EXPECT_EQ(store.pendingRecords(), 1u);
}

TEST(StableStoreTest, AppendManyInterleavesWithAppend)
{
    StableStore store("node-a");
    store.append(1, payload("head"));
    std::vector<Bytes> batch;
    batch.push_back(payload("mid-1"));
    batch.push_back(payload("mid-2"));
    EXPECT_EQ(store.appendMany(2, std::move(batch)), 3u);
    EXPECT_EQ(store.append(3, payload("tail")), 4u);
    store.sync();

    const auto records = store.durableSince(0);
    ASSERT_EQ(records.size(), 4u);
    for (std::size_t i = 0; i < records.size(); ++i)
        EXPECT_EQ(records[i].lsn, i + 1);
}

TEST(StableStoreTest, AdoptManyPreservesLeaderLsns)
{
    StableStore leader("leader");
    leader.append(1, payload("a"));
    leader.append(1, payload("b"));
    leader.append(1, payload("c"));
    leader.sync();

    StableStore follower("follower");
    follower.adoptMany(leader.durableSince(0));
    follower.sync();

    EXPECT_EQ(follower.lastDurableLsn(), 3u);
    EXPECT_EQ(follower.durableRecords(), 3u);
    // Appends after adoption continue from the leader's LSN sequence.
    EXPECT_EQ(follower.append(2, payload("d")), 4u);
}

TEST(StableStoreTest, ForEachDurableSinceStreamsTheSuffix)
{
    StableStore store("node-a");
    for (int i = 0; i < 10; ++i)
        store.append(1, payload("r" + std::to_string(i)));
    store.sync();

    std::vector<std::uint64_t> seen;
    store.forEachDurableSince(7, [&](const JournalRecord &rec) {
        seen.push_back(rec.lsn);
    });
    EXPECT_EQ(seen, (std::vector<std::uint64_t>{8, 9, 10}));

    seen.clear();
    store.forEachDurableSince(10, [&](const JournalRecord &rec) {
        seen.push_back(rec.lsn);
    });
    EXPECT_TRUE(seen.empty());

    // Visits must agree with the materializing path.
    const auto copy = store.durableSince(4);
    seen.clear();
    store.forEachDurableSince(4, [&](const JournalRecord &rec) {
        seen.push_back(rec.lsn);
    });
    ASSERT_EQ(seen.size(), copy.size());
    for (std::size_t i = 0; i < copy.size(); ++i)
        EXPECT_EQ(seen[i], copy[i].lsn);
}

} // namespace
} // namespace monatt::sim
