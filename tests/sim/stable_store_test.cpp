/**
 * @file
 * StableStore: WAL semantics — un-synced tail records are lost on a
 * crash, synced records and checkpoints survive, replay preserves LSN
 * order, and the durable digest is a pure function of the operation
 * sequence.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/bytes.h"
#include "sim/stable_store.h"

namespace monatt::sim
{
namespace
{

Bytes
payload(const std::string &text)
{
    return toBytes(text);
}

TEST(StableStoreTest, AppendIsVolatileUntilSync)
{
    StableStore store("node-a");
    store.append(1, payload("one"));
    store.append(2, payload("two"));
    EXPECT_EQ(store.pendingRecords(), 2u);
    EXPECT_EQ(store.durableRecords(), 0u);
    EXPECT_TRUE(store.empty());

    store.sync();
    EXPECT_EQ(store.pendingRecords(), 0u);
    EXPECT_EQ(store.durableRecords(), 2u);
    EXPECT_FALSE(store.empty());
}

TEST(StableStoreTest, CrashDropsUnsyncedTail)
{
    StableStore store("node-a");
    store.append(1, payload("durable"));
    store.sync();
    store.append(2, payload("lost-1"));
    store.append(3, payload("lost-2"));

    store.crash();

    EXPECT_EQ(store.stats().recordsLost, 2u);
    auto image = store.replay();
    ASSERT_EQ(image.records.size(), 1u);
    EXPECT_EQ(image.records[0].type, 1);
    EXPECT_EQ(toString(image.records[0].payload), "durable");
}

TEST(StableStoreTest, LsnsAreMonotoneAcrossCrashes)
{
    StableStore store;
    EXPECT_EQ(store.append(1, payload("a")), 1u);
    EXPECT_EQ(store.append(1, payload("b")), 2u);
    store.crash(); // loses both, but LSNs never repeat
    EXPECT_EQ(store.append(1, payload("c")), 3u);
    store.sync();
    auto image = store.replay();
    ASSERT_EQ(image.records.size(), 1u);
    EXPECT_EQ(image.records[0].lsn, 3u);
}

TEST(StableStoreTest, CheckpointSupersedesJournal)
{
    StableStore store("node-b");
    store.append(7, payload("old"));
    store.sync();
    store.append(7, payload("buffered"));

    store.checkpoint(payload("snapshot-state"));

    EXPECT_EQ(store.durableRecords(), 0u);
    EXPECT_EQ(store.pendingRecords(), 0u);

    // A crash right after the checkpoint loses nothing.
    store.crash();
    auto image = store.replay();
    EXPECT_TRUE(image.hasSnapshot);
    EXPECT_EQ(toString(image.snapshot), "snapshot-state");
    EXPECT_TRUE(image.records.empty());
}

TEST(StableStoreTest, ReplayPreservesLsnOrderAfterCheckpoint)
{
    StableStore store;
    store.checkpoint(payload("base"));
    store.append(4, payload("r1"));
    store.append(5, payload("r2"));
    store.sync();
    store.append(6, payload("r3"));
    store.sync();

    auto image = store.replay();
    EXPECT_TRUE(image.hasSnapshot);
    ASSERT_EQ(image.records.size(), 3u);
    EXPECT_LT(image.records[0].lsn, image.records[1].lsn);
    EXPECT_LT(image.records[1].lsn, image.records[2].lsn);
    EXPECT_EQ(image.records[0].type, 4);
    EXPECT_EQ(image.records[2].type, 6);
    EXPECT_EQ(store.stats().recordsReplayed, 3u);
}

TEST(StableStoreTest, DigestIsDeterministicAndSensitive)
{
    auto run = [](bool mutate) {
        StableStore store("node-c");
        store.checkpoint(payload("snap"));
        store.append(1, payload(mutate ? "x" : "a"));
        store.append(2, payload("b"));
        store.sync();
        return store.digest();
    };
    EXPECT_EQ(run(false), run(false));
    EXPECT_NE(run(false), run(true));
}

TEST(StableStoreTest, DigestIgnoresVolatileTail)
{
    StableStore a("n"), b("n");
    a.append(1, payload("synced"));
    b.append(1, payload("synced"));
    a.sync();
    b.sync();
    b.append(9, payload("page-cache-only"));
    EXPECT_EQ(a.digest(), b.digest());
    b.crash();
    EXPECT_EQ(a.digest(), b.digest());
}

TEST(StableStoreTest, DurableBytesCountsSnapshotAndJournal)
{
    StableStore store;
    EXPECT_EQ(store.durableBytes(), 0u);
    store.checkpoint(payload("12345"));
    store.append(1, payload("abc"));
    EXPECT_EQ(store.durableBytes(), 5u); // tail not yet durable
    store.sync();
    EXPECT_EQ(store.durableBytes(), 8u);
}

} // namespace
} // namespace monatt::sim
