/**
 * @file
 * StableStore: WAL semantics — un-synced tail records are lost on a
 * crash, synced records and checkpoints survive, replay preserves LSN
 * order, and the durable digest is a pure function of the operation
 * sequence.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "sim/stable_store.h"

namespace monatt::sim
{
namespace
{

Bytes
payload(const std::string &text)
{
    return toBytes(text);
}

TEST(StableStoreTest, AppendIsVolatileUntilSync)
{
    StableStore store("node-a");
    store.append(1, payload("one"));
    store.append(2, payload("two"));
    EXPECT_EQ(store.pendingRecords(), 2u);
    EXPECT_EQ(store.durableRecords(), 0u);
    EXPECT_TRUE(store.empty());

    store.sync();
    EXPECT_EQ(store.pendingRecords(), 0u);
    EXPECT_EQ(store.durableRecords(), 2u);
    EXPECT_FALSE(store.empty());
}

TEST(StableStoreTest, CrashDropsUnsyncedTail)
{
    StableStore store("node-a");
    store.append(1, payload("durable"));
    store.sync();
    store.append(2, payload("lost-1"));
    store.append(3, payload("lost-2"));

    store.crash();

    EXPECT_EQ(store.stats().recordsLost, 2u);
    auto image = store.replay();
    ASSERT_EQ(image.records.size(), 1u);
    EXPECT_EQ(image.records[0].type, 1);
    EXPECT_EQ(toString(image.records[0].payload), "durable");
}

TEST(StableStoreTest, LsnsAreMonotoneAcrossCrashes)
{
    StableStore store;
    EXPECT_EQ(store.append(1, payload("a")), 1u);
    EXPECT_EQ(store.append(1, payload("b")), 2u);
    store.crash(); // loses both, but LSNs never repeat
    EXPECT_EQ(store.append(1, payload("c")), 3u);
    store.sync();
    auto image = store.replay();
    ASSERT_EQ(image.records.size(), 1u);
    EXPECT_EQ(image.records[0].lsn, 3u);
}

TEST(StableStoreTest, CheckpointSupersedesJournal)
{
    StableStore store("node-b");
    store.append(7, payload("old"));
    store.sync();
    store.append(7, payload("buffered"));

    store.checkpoint(payload("snapshot-state"));

    EXPECT_EQ(store.durableRecords(), 0u);
    EXPECT_EQ(store.pendingRecords(), 0u);

    // A crash right after the checkpoint loses nothing.
    store.crash();
    auto image = store.replay();
    EXPECT_TRUE(image.hasSnapshot);
    EXPECT_EQ(toString(image.snapshot), "snapshot-state");
    EXPECT_TRUE(image.records.empty());
}

TEST(StableStoreTest, ReplayPreservesLsnOrderAfterCheckpoint)
{
    StableStore store;
    store.checkpoint(payload("base"));
    store.append(4, payload("r1"));
    store.append(5, payload("r2"));
    store.sync();
    store.append(6, payload("r3"));
    store.sync();

    auto image = store.replay();
    EXPECT_TRUE(image.hasSnapshot);
    ASSERT_EQ(image.records.size(), 3u);
    EXPECT_LT(image.records[0].lsn, image.records[1].lsn);
    EXPECT_LT(image.records[1].lsn, image.records[2].lsn);
    EXPECT_EQ(image.records[0].type, 4);
    EXPECT_EQ(image.records[2].type, 6);
    EXPECT_EQ(store.stats().recordsReplayed, 3u);
}

TEST(StableStoreTest, DigestIsDeterministicAndSensitive)
{
    auto run = [](bool mutate) {
        StableStore store("node-c");
        store.checkpoint(payload("snap"));
        store.append(1, payload(mutate ? "x" : "a"));
        store.append(2, payload("b"));
        store.sync();
        return store.digest();
    };
    EXPECT_EQ(run(false), run(false));
    EXPECT_NE(run(false), run(true));
}

TEST(StableStoreTest, DigestIgnoresVolatileTail)
{
    StableStore a("n"), b("n");
    a.append(1, payload("synced"));
    b.append(1, payload("synced"));
    a.sync();
    b.sync();
    b.append(9, payload("page-cache-only"));
    EXPECT_EQ(a.digest(), b.digest());
    b.crash();
    EXPECT_EQ(a.digest(), b.digest());
}

TEST(StableStoreTest, DurableBytesCountsSnapshotAndJournal)
{
    StableStore store;
    EXPECT_EQ(store.durableBytes(), 0u);
    store.checkpoint(payload("12345"));
    store.append(1, payload("abc"));
    EXPECT_EQ(store.durableBytes(), 5u); // tail not yet durable
    store.sync();
    EXPECT_EQ(store.durableBytes(), 8u);
}

// --- Bulk paths (appendMany / adoptMany / forEachDurableSince) ---------

TEST(StableStoreTest, AppendManyMatchesIndividualAppends)
{
    StableStore one("node-a");
    one.append(7, payload("alpha"));
    one.append(7, payload("beta"));
    one.append(7, payload("gamma"));
    one.sync();

    StableStore bulk("node-a");
    std::vector<Bytes> batch;
    batch.push_back(payload("alpha"));
    batch.push_back(payload("beta"));
    batch.push_back(payload("gamma"));
    const std::uint64_t last = bulk.appendMany(7, std::move(batch));
    bulk.sync();

    EXPECT_EQ(last, 3u);
    EXPECT_EQ(bulk.durableRecords(), 3u);
    EXPECT_EQ(bulk.digest(), one.digest()); // Byte-identical journal.
    EXPECT_EQ(bulk.stats().appends, 3u);
    EXPECT_EQ(bulk.stats().appendBatches, 1u);
}

TEST(StableStoreTest, AppendManyEmptyIsNoOp)
{
    StableStore store("node-a");
    EXPECT_EQ(store.appendMany(7, {}), 0u);
    EXPECT_EQ(store.pendingRecords(), 0u);
    store.append(1, payload("x"));
    EXPECT_EQ(store.appendMany(7, {}), 0u);
    EXPECT_EQ(store.pendingRecords(), 1u);
}

TEST(StableStoreTest, AppendManyInterleavesWithAppend)
{
    StableStore store("node-a");
    store.append(1, payload("head"));
    std::vector<Bytes> batch;
    batch.push_back(payload("mid-1"));
    batch.push_back(payload("mid-2"));
    EXPECT_EQ(store.appendMany(2, std::move(batch)), 3u);
    EXPECT_EQ(store.append(3, payload("tail")), 4u);
    store.sync();

    const auto records = store.durableSince(0);
    ASSERT_EQ(records.size(), 4u);
    for (std::size_t i = 0; i < records.size(); ++i)
        EXPECT_EQ(records[i].lsn, i + 1);
}

TEST(StableStoreTest, AdoptManyPreservesLeaderLsns)
{
    StableStore leader("leader");
    leader.append(1, payload("a"));
    leader.append(1, payload("b"));
    leader.append(1, payload("c"));
    leader.sync();

    StableStore follower("follower");
    follower.adoptMany(leader.durableSince(0));
    follower.sync();

    EXPECT_EQ(follower.lastDurableLsn(), 3u);
    EXPECT_EQ(follower.durableRecords(), 3u);
    // Appends after adoption continue from the leader's LSN sequence.
    EXPECT_EQ(follower.append(2, payload("d")), 4u);
}

TEST(StableStoreTest, ForEachDurableSinceStreamsTheSuffix)
{
    StableStore store("node-a");
    for (int i = 0; i < 10; ++i)
        store.append(1, payload("r" + std::to_string(i)));
    store.sync();

    std::vector<std::uint64_t> seen;
    store.forEachDurableSince(7, [&](const JournalRecord &rec) {
        seen.push_back(rec.lsn);
    });
    EXPECT_EQ(seen, (std::vector<std::uint64_t>{8, 9, 10}));

    seen.clear();
    store.forEachDurableSince(10, [&](const JournalRecord &rec) {
        seen.push_back(rec.lsn);
    });
    EXPECT_TRUE(seen.empty());

    // Visits must agree with the materializing path.
    const auto copy = store.durableSince(4);
    seen.clear();
    store.forEachDurableSince(4, [&](const JournalRecord &rec) {
        seen.push_back(rec.lsn);
    });
    ASSERT_EQ(seen.size(), copy.size());
    for (std::size_t i = 0; i < copy.size(); ++i)
        EXPECT_EQ(seen[i], copy[i].lsn);
}

// --- Crash-edge semantics ----------------------------------------------

TEST(StableStoreTest, ReplayOfFreshStoreIsEmptyAndClean)
{
    StableStore store("node-a");
    auto image = store.replay();
    EXPECT_FALSE(image.hasSnapshot);
    EXPECT_TRUE(image.records.empty());
    EXPECT_TRUE(image.clean);
    EXPECT_EQ(store.stats().recordsReplayed, 0u);
}

TEST(StableStoreTest, ReplayOfNeverSyncedStoreAfterCrashIsEmpty)
{
    StableStore store("node-a");
    store.append(1, payload("page-cache-only"));
    store.crash();
    auto image = store.replay();
    EXPECT_FALSE(image.hasSnapshot);
    EXPECT_TRUE(image.records.empty());
    EXPECT_TRUE(image.clean);
    EXPECT_EQ(store.stats().recordsLost, 1u);
}

TEST(StableStoreTest, CheckpointThenImmediateCrashLosesNothing)
{
    StableStore store("node-a");
    store.append(1, payload("a"));
    store.sync();
    store.checkpoint(payload("sealed"));
    store.crash();

    auto image = store.replay();
    EXPECT_TRUE(image.clean);
    ASSERT_TRUE(image.hasSnapshot);
    EXPECT_EQ(toString(image.snapshot), "sealed");
    EXPECT_TRUE(image.records.empty());
}

TEST(StableStoreTest, ForEachDurableSinceSpansCheckpointHorizon)
{
    StableStore store("node-a");
    store.append(1, payload("pre-1"));
    store.append(1, payload("pre-2"));
    store.sync();
    store.checkpoint(payload("snap")); // covers LSNs 1..2
    store.append(1, payload("post-3"));
    store.append(1, payload("post-4"));
    store.sync();

    // A follower acking the snapshot horizon gets exactly the
    // post-snapshot journal; asking from before the horizon cannot
    // resurrect checkpointed records.
    for (const std::uint64_t from : {std::uint64_t{0},
                                     store.snapshotLsn()}) {
        std::vector<std::uint64_t> seen;
        store.forEachDurableSince(from, [&](const JournalRecord &rec) {
            seen.push_back(rec.lsn);
        });
        EXPECT_EQ(seen, (std::vector<std::uint64_t>{3, 4}))
            << "from=" << from;
    }
}

// --- Storage faults and verifying replay -------------------------------

TEST(StableStoreTest, TornTailPersistsUnsyncedPrefix)
{
    StorageFaultConfig cfg;
    cfg.tornTailPersistProbability = 1.0;
    StorageFaultModel faults(7, cfg);

    StableStore store("node-a");
    store.setFaultModel(&faults);
    store.append(1, payload("a"));
    store.sync();
    store.append(1, payload("b"));
    store.append(1, payload("c"));
    store.crash(); // the whole un-synced tail reaches the platter

    EXPECT_EQ(store.stats().recordsTornPersisted, 2u);
    EXPECT_EQ(store.stats().recordsLost, 0u);
    auto image = store.replay();
    EXPECT_TRUE(image.clean);
    ASSERT_EQ(image.records.size(), 3u);
    EXPECT_EQ(toString(image.records[2].payload), "c");
}

TEST(StableStoreTest, HalfWrittenBoundaryIsQuarantined)
{
    StorageFaultConfig cfg;
    cfg.halfWriteProbability = 1.0;
    StorageFaultModel faults(7, cfg);

    StableStore store("node-a");
    store.setFaultModel(&faults);
    store.append(1, payload("durable"));
    store.sync();
    store.append(1, payload("torn-in-half"));
    store.append(1, payload("behind-the-tear"));
    store.crash(); // boundary lands half-written, the rest is lost

    EXPECT_EQ(store.stats().recordsHalfWritten, 1u);
    auto image = store.replay();
    EXPECT_FALSE(image.clean);
    EXPECT_EQ(image.quarantinedRecords, 1u);
    ASSERT_EQ(image.records.size(), 1u); // the synced prefix survives
    EXPECT_EQ(toString(image.records[0].payload), "durable");
    EXPECT_EQ(store.lastDurableLsn(), 1u);
    // LSNs burned by quarantined records are never reissued.
    EXPECT_EQ(store.append(1, payload("next")), 4u);
}

TEST(StableStoreTest, EmptyPayloadHalfWriteStillFailsVerification)
{
    StorageFaultConfig cfg;
    cfg.halfWriteProbability = 1.0;
    StorageFaultModel faults(7, cfg);

    StableStore store("node-a");
    store.setFaultModel(&faults);
    store.append(1, Bytes{}); // nothing to tear in the payload
    store.crash();

    ASSERT_EQ(store.durableRecords(), 1u);
    auto image = store.replay(); // the spoiled stored CRC catches it
    EXPECT_FALSE(image.clean);
    EXPECT_EQ(image.quarantinedRecords, 1u);
    EXPECT_TRUE(image.records.empty());
}

TEST(StableStoreTest, ReorderedOrphanLeavesUnbridgeableGap)
{
    StorageFaultConfig cfg;
    cfg.reorderPersistProbability = 1.0;
    StorageFaultModel faults(7, cfg);

    StableStore store("node-a");
    store.setFaultModel(&faults);
    store.append(1, payload("boundary-lost"));
    store.append(1, payload("orphan-1"));
    store.append(1, payload("orphan-2"));
    store.crash(); // LSN 1 lost; 2 and 3 persist past the gap

    EXPECT_EQ(store.stats().recordsLost, 1u);
    EXPECT_EQ(store.stats().recordsReordered, 2u);
    auto image = store.replay();
    EXPECT_FALSE(image.clean);
    // The orphan behind the gap is unusable (quarantined); the one
    // chained onto it is intact but stranded (truncated).
    EXPECT_EQ(image.quarantinedRecords, 1u);
    EXPECT_EQ(image.truncatedRecords, 1u);
    EXPECT_TRUE(image.records.empty());
    EXPECT_EQ(store.lastDurableLsn(), 0u);
}

TEST(StableStoreTest, BitRotQuarantinesDurableFrames)
{
    StorageFaultConfig cfg;
    cfg.bitRotProbability = 1.0;
    StorageFaultModel faults(7, cfg);

    StableStore store("node-a");
    store.setFaultModel(&faults);
    for (int i = 0; i < 5; ++i)
        store.append(1, payload("r" + std::to_string(i)));
    store.sync();
    store.crash(); // every durable frame rots over the outage

    EXPECT_EQ(store.stats().recordsRotted, 5u);
    auto image = store.replay();
    EXPECT_FALSE(image.clean);
    EXPECT_EQ(image.quarantinedRecords, 5u);
    EXPECT_TRUE(image.records.empty());
    // Verification healed the journal: the store is truthful about
    // holding nothing, and replication would re-stream from LSN 0.
    EXPECT_EQ(store.lastDurableLsn(), 0u);
    EXPECT_EQ(store.journalBytes(), 0u);
}

TEST(StableStoreTest, SecondCrashDoesNotUnrotFrames)
{
    StorageFaultConfig cfg;
    cfg.bitRotProbability = 1.0;
    StorageFaultModel faults(7, cfg);

    StableStore store("node-a");
    store.setFaultModel(&faults);
    store.append(1, payload("once"));
    store.sync();
    store.crash();
    store.crash(); // the rot verdict for (node, LSN) is unchanged; a
                   // second application would XOR the corruption out

    EXPECT_EQ(store.stats().recordsRotted, 1u);
    auto image = store.replay();
    EXPECT_FALSE(image.clean);
    EXPECT_EQ(image.quarantinedRecords, 1u);
}

TEST(StableStoreTest, SnapshotSealFailureDropsSnapshotAndJournal)
{
    StorageFaultConfig cfg;
    cfg.snapshotRotProbability = 1.0;
    StorageFaultModel faults(7, cfg);

    StableStore store("node-a");
    store.setFaultModel(&faults);
    store.append(1, payload("pre"));
    store.sync();
    store.checkpoint(payload("sealed-state"));
    store.append(1, payload("post-1"));
    store.append(1, payload("post-2"));
    store.sync();
    const std::uint64_t nextBefore = store.append(1, payload("probe"));
    store.crash(); // rots the snapshot; journal frames are intact

    EXPECT_EQ(store.stats().snapshotsRotted, 1u);
    auto image = store.replay();
    // The journal is a delta on a now-untrusted base: everything goes.
    EXPECT_FALSE(image.clean);
    EXPECT_TRUE(image.snapshotQuarantined);
    EXPECT_FALSE(image.hasSnapshot);
    EXPECT_TRUE(image.records.empty());
    EXPECT_EQ(image.truncatedRecords, 2u);
    EXPECT_TRUE(store.empty());
    EXPECT_EQ(store.lastDurableLsn(), 0u);
    // ...but the LSN clock still never regresses.
    EXPECT_GT(store.append(1, payload("after")), nextBefore);
}

TEST(StableStoreTest, VerifyDurableLowersReplicationAckHorizon)
{
    StorageFaultConfig cfg;
    cfg.bitRotProbability = 1.0;
    StorageFaultModel faults(7, cfg);

    // Same node id: digest() folds the id, and the replicas model one
    // logical journal anyway.
    StableStore leader("n");
    StableStore follower("n");
    follower.setFaultModel(&faults);
    for (int i = 0; i < 3; ++i)
        leader.append(1, payload("r" + std::to_string(i)));
    leader.sync();
    follower.adoptMany(leader.durableSince(0));
    follower.sync();
    ASSERT_EQ(follower.lastDurableLsn(), 3u);

    follower.crash(); // the whole mirror rots
    const auto healed = follower.verifyDurable();
    EXPECT_FALSE(healed.clean());
    EXPECT_EQ(healed.quarantinedRecords, 3u);
    EXPECT_EQ(follower.lastDurableLsn(), 0u);

    // Acking the healed horizon makes the leader re-stream the
    // damaged range through the normal replication path.
    follower.setFaultModel(nullptr);
    follower.adoptMany(leader.durableSince(follower.lastDurableLsn()));
    follower.sync();
    EXPECT_EQ(follower.lastDurableLsn(), 3u);
    EXPECT_EQ(follower.digest(), leader.digest());
}

TEST(StableStoreTest, JournalBytesTracksDurablePayloadIncrementally)
{
    StableStore store("node-a");
    EXPECT_EQ(store.journalBytes(), 0u);
    store.append(1, payload("1234"));
    EXPECT_EQ(store.journalBytes(), 0u); // still page cache
    store.sync();
    EXPECT_EQ(store.journalBytes(), 4u);
    store.append(1, payload("56"));
    store.sync();
    EXPECT_EQ(store.journalBytes(), 6u);
    store.truncateTo(1);
    EXPECT_EQ(store.journalBytes(), 4u);
    store.checkpoint(payload("snapshot-not-counted"));
    EXPECT_EQ(store.journalBytes(), 0u);
}

} // namespace
} // namespace monatt::sim
