#include "sim/rollback_faults.h"

#include <string>

#include <gtest/gtest.h>

namespace monatt::sim
{
namespace
{

std::string
node(int i)
{
    return "server-" + std::to_string(i);
}

TEST(RollbackFaultsTest, DisabledConfigArmsNothing)
{
    RollbackFaultConfig cfg;
    EXPECT_FALSE(cfg.any());
    RollbackFaultModel model(42, cfg);
    EXPECT_FALSE(model.enabled());
    for (int i = 1; i <= 100; ++i)
    {
        EXPECT_FALSE(model.rollsBack(node(i)));
        EXPECT_FALSE(model.replaysStale(node(i)));
    }
}

TEST(RollbackFaultsTest, CertaintyProbabilitiesAlwaysFire)
{
    RollbackFaultConfig cfg;
    cfg.rollbackProbability = 1.0;
    cfg.rollbackVersion = 7;
    RollbackFaultModel model(42, cfg);
    EXPECT_TRUE(model.enabled());
    EXPECT_EQ(model.rollbackVersion(), 7u);
    for (int i = 1; i <= 100; ++i)
        EXPECT_TRUE(model.rollsBack(node(i)));
}

TEST(RollbackFaultsTest, VerdictsArePureFunctions)
{
    RollbackFaultConfig cfg;
    cfg.rollbackProbability = 0.5;
    cfg.staleReplayProbability = 0.3;
    RollbackFaultModel a(7, cfg);
    RollbackFaultModel b(7, cfg);
    for (int i = 1; i <= 500; ++i)
    {
        EXPECT_EQ(a.rollsBack(node(i)), b.rollsBack(node(i)));
        EXPECT_EQ(a.replaysStale(node(i)), b.replaysStale(node(i)));
        // Re-asking the same model must never change the answer.
        EXPECT_EQ(a.rollsBack(node(i)), a.rollsBack(node(i)));
    }
}

TEST(RollbackFaultsTest, SeedAndNodeDecorrelateVerdicts)
{
    RollbackFaultConfig cfg;
    cfg.rollbackProbability = 0.5;
    RollbackFaultModel seedA(1, cfg);
    RollbackFaultModel seedB(2, cfg);

    int seedDiffers = 0;
    for (int i = 1; i <= 1000; ++i)
        if (seedA.rollsBack(node(i)) != seedB.rollsBack(node(i)))
            ++seedDiffers;
    // Independent fair-ish coins should disagree roughly half the
    // time; just assert they are not glued together.
    EXPECT_GT(seedDiffers, 250);
}

TEST(RollbackFaultsTest, AxesUseIndependentDraws)
{
    RollbackFaultConfig cfg;
    cfg.rollbackProbability = 0.5;
    cfg.staleReplayProbability = 0.5;
    RollbackFaultModel model(9, cfg);
    int differs = 0;
    for (int i = 1; i <= 1000; ++i)
        if (model.rollsBack(node(i)) != model.replaysStale(node(i)))
            ++differs;
    EXPECT_GT(differs, 250);
}

TEST(RollbackFaultsTest, RatesTrackProbability)
{
    RollbackFaultConfig cfg;
    cfg.rollbackProbability = 0.1;
    RollbackFaultModel model(1234, cfg);
    int hits = 0;
    const int n = 20000;
    for (int i = 1; i <= n; ++i)
        if (model.rollsBack(node(i)))
            ++hits;
    const double rate = static_cast<double>(hits) / n;
    EXPECT_GT(rate, 0.07);
    EXPECT_LT(rate, 0.13);
}

} // namespace
} // namespace monatt::sim
