/**
 * @file
 * InlineFunction: the event kernel's small-buffer callback type.
 * Inline/heap placement, move semantics, destruction counts, and the
 * capacity contract the kernel's no-allocation claim rests on.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>

#include "sim/inline_function.h"

namespace monatt::sim
{
namespace
{

/** Instrumented payload: counts live copies via a shared counter. */
struct Tracker
{
    int *live;
    explicit Tracker(int *counter) : live(counter) { ++*live; }
    Tracker(const Tracker &other) noexcept : live(other.live)
    {
        ++*live;
    }
    Tracker(Tracker &&other) noexcept : live(other.live) { ++*live; }
    ~Tracker() { --*live; }
};

TEST(InlineFunctionTest, SmallCaptureStaysInline)
{
    int hits = 0;
    InlineFunction<48> fn([&hits] { ++hits; });
    EXPECT_TRUE(fn.isInline());
    EXPECT_TRUE(static_cast<bool>(fn));
    fn();
    fn();
    EXPECT_EQ(hits, 2);
}

TEST(InlineFunctionTest, CodebaseTimerShapeStaysInline)
{
    // The hot-path shape: a `this` pointer plus a few 64-bit ids. The
    // kernel's no-allocation property depends on this fitting.
    std::uint64_t sink = 0;
    void *self = &sink;
    std::uint64_t a = 1, b = 2, c = 3, d = 4;
    InlineFunction<48> fn([self, a, b, c, d] {
        *static_cast<std::uint64_t *>(self) = a + b + c + d;
    });
    EXPECT_TRUE(fn.isInline());
    fn();
    EXPECT_EQ(sink, 10u);
}

TEST(InlineFunctionTest, OversizedCaptureFallsBackToHeap)
{
    struct Big
    {
        char bytes[96];
    };
    Big big{};
    big.bytes[0] = 42;
    char seen = 0;
    InlineFunction<48> fn([big, &seen] { seen = big.bytes[0]; });
    EXPECT_FALSE(fn.isInline());
    fn();
    EXPECT_EQ(seen, 42);
}

TEST(InlineFunctionTest, EmptyIsFalseAndResettable)
{
    InlineFunction<48> fn;
    EXPECT_FALSE(static_cast<bool>(fn));
    fn = [] {};
    EXPECT_TRUE(static_cast<bool>(fn));
    fn = nullptr;
    EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(InlineFunctionTest, MoveTransfersInlineCallable)
{
    int live = 0;
    int hits = 0;
    {
        InlineFunction<48> a([t = Tracker(&live), &hits] { ++hits; });
        EXPECT_TRUE(a.isInline());
        InlineFunction<48> b(std::move(a));
        EXPECT_FALSE(static_cast<bool>(a));
        b();
        EXPECT_EQ(hits, 1);

        InlineFunction<48> c;
        c = std::move(b);
        EXPECT_FALSE(static_cast<bool>(b));
        c();
        EXPECT_EQ(hits, 2);
    }
    EXPECT_EQ(live, 0); // Every Tracker copy destroyed exactly once.
}

TEST(InlineFunctionTest, MoveTransfersHeapCallable)
{
    struct Pad
    {
        char bytes[80] = {};
    };
    int live = 0;
    int hits = 0;
    {
        InlineFunction<48> a(
            [t = Tracker(&live), p = Pad{}, &hits] { ++hits; });
        EXPECT_FALSE(a.isInline());
        InlineFunction<48> b(std::move(a));
        EXPECT_FALSE(static_cast<bool>(a));
        b();
        EXPECT_EQ(hits, 1);
    }
    EXPECT_EQ(live, 0);
}

TEST(InlineFunctionTest, MoveAssignmentDestroysPreviousTarget)
{
    int liveA = 0;
    int liveB = 0;
    {
        InlineFunction<48> target([t = Tracker(&liveA)] {});
        EXPECT_EQ(liveA, 1);
        target = InlineFunction<48>([t = Tracker(&liveB)] {});
        EXPECT_EQ(liveA, 0); // Old callable destroyed on assignment.
        EXPECT_EQ(liveB, 1);
    }
    EXPECT_EQ(liveB, 0);
}

TEST(InlineFunctionTest, MoveOnlyCallablesAreAccepted)
{
    auto owned = std::make_unique<int>(7);
    int seen = 0;
    InlineFunction<48> fn(
        [p = std::move(owned), &seen] { seen = *p; });
    InlineFunction<48> moved(std::move(fn));
    moved();
    EXPECT_EQ(seen, 7);
}

TEST(InlineFunctionTest, FitsInlineMatchesPlacement)
{
    auto small = [] {};
    struct Fat
    {
        char bytes[64];
    };
    auto large = [f = Fat{}] { (void)f; };
    EXPECT_TRUE(InlineFunction<48>::fitsInline<decltype(small)>());
    EXPECT_FALSE(InlineFunction<48>::fitsInline<decltype(large)>());
}

} // namespace
} // namespace monatt::sim
