#include "sim/storage_faults.h"

#include <gtest/gtest.h>

namespace monatt::sim
{
namespace
{

TEST(StorageFaultsTest, DisabledConfigArmsNothing)
{
    StorageFaultConfig cfg;
    EXPECT_FALSE(cfg.any());
    StorageFaultModel model(42, cfg);
    EXPECT_FALSE(model.enabled());
    for (std::uint64_t lsn = 1; lsn <= 100; ++lsn)
    {
        EXPECT_FALSE(model.tailPersists("node", lsn));
        EXPECT_FALSE(model.halfWrites("node", lsn));
        EXPECT_FALSE(model.reorderPersists("node", lsn));
        EXPECT_FALSE(model.rots("node", lsn));
        EXPECT_FALSE(model.snapshotRots("node", lsn));
    }
}

TEST(StorageFaultsTest, CertaintyProbabilitiesAlwaysFire)
{
    StorageFaultConfig cfg;
    cfg.bitRotProbability = 1.0;
    StorageFaultModel model(42, cfg);
    EXPECT_TRUE(model.enabled());
    for (std::uint64_t lsn = 1; lsn <= 100; ++lsn)
        EXPECT_TRUE(model.rots("node", lsn));
}

TEST(StorageFaultsTest, VerdictsArePureFunctions)
{
    StorageFaultConfig cfg;
    cfg.tornTailPersistProbability = 0.5;
    cfg.bitRotProbability = 0.3;
    cfg.reorderPersistProbability = 0.2;
    StorageFaultModel a(7, cfg);
    StorageFaultModel b(7, cfg);
    for (std::uint64_t lsn = 1; lsn <= 500; ++lsn)
    {
        EXPECT_EQ(a.tailPersists("cc-0", lsn), b.tailPersists("cc-0", lsn));
        EXPECT_EQ(a.rots("cc-0", lsn), b.rots("cc-0", lsn));
        EXPECT_EQ(a.reorderPersists("cc-0", lsn),
                  b.reorderPersists("cc-0", lsn));
        // Re-asking the same model must never change the answer.
        EXPECT_EQ(a.rots("cc-0", lsn), a.rots("cc-0", lsn));
    }
}

TEST(StorageFaultsTest, SeedAndNodeDecorrelateVerdicts)
{
    StorageFaultConfig cfg;
    cfg.bitRotProbability = 0.5;
    StorageFaultModel seedA(1, cfg);
    StorageFaultModel seedB(2, cfg);

    int seedDiffers = 0, nodeDiffers = 0;
    for (std::uint64_t lsn = 1; lsn <= 1000; ++lsn)
    {
        if (seedA.rots("node", lsn) != seedB.rots("node", lsn))
            ++seedDiffers;
        if (seedA.rots("cc-0", lsn) != seedA.rots("as-0", lsn))
            ++nodeDiffers;
    }
    // Independent fair-ish coins should disagree roughly half the
    // time; just assert they are not glued together.
    EXPECT_GT(seedDiffers, 250);
    EXPECT_GT(nodeDiffers, 250);
}

TEST(StorageFaultsTest, AxesUseIndependentDraws)
{
    StorageFaultConfig cfg;
    cfg.tornTailPersistProbability = 0.5;
    cfg.bitRotProbability = 0.5;
    StorageFaultModel model(9, cfg);
    int differs = 0;
    for (std::uint64_t lsn = 1; lsn <= 1000; ++lsn)
        if (model.tailPersists("n", lsn) != model.rots("n", lsn))
            ++differs;
    EXPECT_GT(differs, 250);
}

TEST(StorageFaultsTest, RatesTrackProbability)
{
    StorageFaultConfig cfg;
    cfg.bitRotProbability = 0.1;
    StorageFaultModel model(1234, cfg);
    int hits = 0;
    const int n = 20000;
    for (int lsn = 1; lsn <= n; ++lsn)
        if (model.rots("node", static_cast<std::uint64_t>(lsn)))
            ++hits;
    const double rate = static_cast<double>(hits) / n;
    EXPECT_GT(rate, 0.07);
    EXPECT_LT(rate, 0.13);
}

TEST(StorageFaultsTest, CorruptByteStaysInRange)
{
    StorageFaultConfig cfg;
    cfg.bitRotProbability = 1.0;
    StorageFaultModel model(5, cfg);
    bool sawLow = false, sawHigh = false;
    for (std::uint64_t lsn = 1; lsn <= 1000; ++lsn)
    {
        const std::size_t idx = model.corruptByte("node", lsn, 16);
        EXPECT_LT(idx, 16u);
        if (idx < 8)
            sawLow = true;
        else
            sawHigh = true;
    }
    EXPECT_TRUE(sawLow);
    EXPECT_TRUE(sawHigh);
}

} // namespace
} // namespace monatt::sim
