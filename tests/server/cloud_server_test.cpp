/**
 * @file
 * CloudServer module tests driven over the real network: resource
 * accounting, launch/terminate/suspend/resume command handling,
 * authorization (commands only from the controller, measurement
 * requests only from the cluster attestor), and the Monitor Module's
 * static/windowed split.
 */

#include <gtest/gtest.h>

#include "core/cloud.h"
#include "crypto/sha256.h"
#include "server/monitor_module.h"
#include "workloads/programs.h"

namespace monatt::server
{
namespace
{

using proto::MessageKind;
using proto::SecurityProperty;

struct ServerFixture
{
    core::Cloud cloud;
    core::Customer &alice;
    std::string vid;
    CloudServer *host;

    ServerFixture() : alice(cloud.addCustomer("alice"))
    {
        auto launched = cloud.launchVm(alice, "vm", "fedora", "medium",
                                       proto::allProperties());
        if (!launched.isOk())
            throw std::runtime_error(launched.errorMessage());
        vid = launched.take();
        host = cloud.serverHosting(vid);
    }
};

TEST(CloudServerTest, ResourceAccountingAcrossLifecycle)
{
    ServerFixture f;
    const auto &flavor = server::flavor("medium");
    EXPECT_EQ(f.host->freeRamMb(),
              f.host->config().totalRamMb - flavor.ramMb);
    EXPECT_EQ(f.host->freeDiskGb(),
              f.host->config().totalDiskGb - flavor.diskGb);
    EXPECT_EQ(f.host->vm(f.vid).ramMb, flavor.ramMb);
    EXPECT_EQ(f.host->vmCount(), 1u);

    // Terminate through the controller path (response policy).
    f.cloud.controller().setResponsePolicy(
        f.vid, controller::ResponsePolicy::Terminate);
    f.host->guestOs(f.vid).injectHiddenMalware("rootkit");
    auto report = f.cloud.attestOnce(
        f.alice, f.vid, {SecurityProperty::RuntimeIntegrity});
    ASSERT_TRUE(report.isOk());
    ASSERT_TRUE(f.cloud.runUntil(
        [&] { return f.host->vmCount() == 0; }, seconds(60)));
    EXPECT_EQ(f.host->freeRamMb(), f.host->config().totalRamMb);
    EXPECT_EQ(f.host->freeDiskGb(), f.host->config().totalDiskGb);
}

TEST(CloudServerTest, UnknownVmAccessorsThrow)
{
    ServerFixture f;
    EXPECT_THROW(f.host->vm("no-such-vm"), std::out_of_range);
    EXPECT_THROW(f.host->domainOf("no-such-vm"), std::out_of_range);
    EXPECT_FALSE(f.host->hasVm("no-such-vm"));
}

TEST(CommandAuthorizationTest, ServerIgnoresForeignCommands)
{
    ServerFixture f;
    Rng rng(0xbad);
    const auto rogueKeys = crypto::rsaGenerateKeyPair(512, rng);
    f.cloud.directory().publish("rogue-node", rogueKeys.pub);
    net::SecureEndpoint rogue(f.cloud.network(), "rogue-node", rogueKeys,
                              f.cloud.directory(), toBytes("rogue-seed"));

    proto::VmCommand cmd;
    cmd.vid = f.vid;
    rogue.sendSecure(f.host->id(),
                     proto::packMessage(MessageKind::TerminateVm,
                                        cmd.encode()));
    proto::MeasureRequest mr;
    mr.requestId = 999;
    mr.vid = f.vid;
    mr.rm = {proto::MeasurementType::TaskListVmi};
    mr.nonce3 = {1, 2};
    rogue.sendSecure(f.host->id(),
                     proto::packMessage(MessageKind::MeasureRequest,
                                        mr.encode()));
    f.cloud.runFor(seconds(10));

    // The VM survives and no measurement response went anywhere.
    EXPECT_TRUE(f.host->hasVm(f.vid));
    EXPECT_EQ(rogue.stats().received, 0u);
}

TEST(MonitorModuleTest, StaticVsWindowedClassification)
{
    using proto::MeasurementType;
    EXPECT_FALSE(MonitorModule::isWindowed(MeasurementType::PlatformPcrs));
    EXPECT_FALSE(
        MonitorModule::isWindowed(MeasurementType::VmImageDigest));
    EXPECT_FALSE(MonitorModule::isWindowed(MeasurementType::TaskListVmi));
    EXPECT_FALSE(
        MonitorModule::isWindowed(MeasurementType::AuditLogDigest));
    EXPECT_TRUE(MonitorModule::isWindowed(
        MeasurementType::UsageIntervalHistogram));
    EXPECT_TRUE(MonitorModule::isWindowed(MeasurementType::CpuMeasure));
}

TEST(MonitorModuleTest, CollectStaticThroughServer)
{
    ServerFixture f;
    MonitorModule &monitor = f.host->monitorModule();
    const auto dom = f.host->domainOf(f.vid);

    auto pcrs = monitor.collectStatic(proto::MeasurementType::PlatformPcrs,
                                      dom);
    ASSERT_TRUE(pcrs.isOk());
    EXPECT_EQ(pcrs.value().digest.size(), 64u); // PCR0 || PCR1.
    EXPECT_EQ(pcrs.value().digest,
              core::expectedPlatformDigest(
                  f.cloud.config().hypervisorCode,
                  f.cloud.config().hostOsCode));

    auto image = monitor.collectStatic(
        proto::MeasurementType::VmImageDigest, dom);
    ASSERT_TRUE(image.isOk());
    EXPECT_EQ(image.value().digest,
              crypto::Sha256::hash(server::image("fedora").content));

    auto tasks = monitor.collectStatic(proto::MeasurementType::TaskListVmi,
                                       dom);
    ASSERT_TRUE(tasks.isOk());
    EXPECT_FALSE(tasks.value().strings.empty());

    // Windowed types are refused by the static path.
    EXPECT_FALSE(monitor
                     .collectStatic(proto::MeasurementType::CpuMeasure,
                                    dom)
                     .isOk());
    // Unknown domain.
    EXPECT_FALSE(monitor
                     .collectStatic(proto::MeasurementType::TaskListVmi,
                                    9999)
                     .isOk());
}

TEST(MonitorModuleTest, WindowedCollectionWritesTers)
{
    ServerFixture f;
    MonitorModule &monitor = f.host->monitorModule();
    const auto dom = f.host->domainOf(f.vid);
    f.host->hypervisor().setBehavior(
        dom, 0, std::make_unique<workloads::SpinnerProgram>());

    monitor.beginWindow(dom, f.cloud.events().now());
    f.cloud.runFor(seconds(3));
    auto cpu = monitor.finishWindow(proto::MeasurementType::CpuMeasure,
                                    dom, f.cloud.events().now());
    ASSERT_TRUE(cpu.isOk());
    ASSERT_EQ(cpu.value().values.size(), 1u);
    EXPECT_NEAR(toSeconds(static_cast<SimTime>(cpu.value().values[0])),
                3.0, 0.3);
    EXPECT_EQ(cpu.value().windowLength, seconds(3));

    // The value round-tripped through a Trust Evidence Register bank.
    const std::string bank = MonitorModule::bankName(
        proto::MeasurementType::CpuMeasure, dom);
    EXPECT_TRUE(f.host->trustModule().hasBank(bank));
    EXPECT_EQ(f.host->trustModule().readRegister(bank, 0),
              cpu.value().values[0]);
}

} // namespace
} // namespace monatt::server
