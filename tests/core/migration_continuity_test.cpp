/**
 * @file
 * Seamless monitoring across migration (§1: "A seamless monitoring
 * mechanism throughout the VMs' lifetime is therefore highly
 * desirable"): an active periodic attestation must follow the VM to
 * its new host and keep producing verified reports about the right
 * machine — including when the new host belongs to a different
 * attestation-server cluster.
 */

#include <gtest/gtest.h>

#include "core/cloud.h"
#include "workloads/programs.h"

namespace monatt::core
{
namespace
{

using proto::HealthStatus;
using proto::SecurityProperty;

TEST(MigrationContinuityTest, PeriodicAttestationFollowsTheVm)
{
    CloudConfig cfg;
    cfg.numServers = 2;
    Cloud cloud(cfg);
    Customer &alice = cloud.addCustomer("alice");
    auto launched = cloud.launchVm(alice, "vm", "cirros", "small",
                                   proto::allProperties());
    ASSERT_TRUE(launched.isOk());
    const std::string vid = launched.take();
    const std::string sourceId = cloud.serverHosting(vid)->id();

    // Periodic monitoring starts before the migration.
    const std::uint64_t req = alice.runtimeAttestPeriodic(
        vid, {SecurityProperty::RuntimeIntegrity}, seconds(10));
    ASSERT_TRUE(cloud.runUntil(
        [&] { return alice.reportsFor(req).size() >= 2; }, seconds(45)));

    // Compromise -> migrate policy moves the VM.
    cloud.controller().setResponsePolicy(
        vid, controller::ResponsePolicy::Migrate);
    cloud.serverHosting(vid)->guestOs(vid).injectHiddenMalware(
        "rootkit");
    ASSERT_TRUE(cloud.runUntil(
        [&] {
            const auto &log = cloud.controller().responseLog();
            return !log.empty() && log.front().completed &&
                   log.front().succeeded;
        },
        seconds(120)));
    server::CloudServer *newHost = cloud.serverHosting(vid);
    ASSERT_NE(newHost, nullptr);
    ASSERT_NE(newHost->id(), sourceId);
    // Stop further responses so the VM stays put while the periodic
    // stream is examined (otherwise the still-compromised reports
    // would keep migrating it back and forth).
    cloud.controller().setResponsePolicy(
        vid, controller::ResponsePolicy::None);

    // The rootkit travelled with the guest state (memory moves
    // verbatim); the stream keeps reporting — and keeps seeing the
    // rootkit — from the NEW server. A round that raced the move may
    // report Unknown; wait for the next definite verdict.
    const std::size_t atMigration = alice.reportsFor(req).size();
    const auto definiteAfter = [&](std::size_t from)
        -> const VerifiedReport * {
        for (std::size_t i = from; i < alice.reportsFor(req).size();
             ++i) {
            const auto *r = alice.reportsFor(req)[i];
            if (r->report.results[0].status != HealthStatus::Unknown)
                return r;
        }
        return nullptr;
    };
    ASSERT_TRUE(cloud.runUntil(
        [&] { return definiteAfter(atMigration) != nullptr; },
        seconds(90)));
    const VerifiedReport *fresh = definiteAfter(atMigration);
    EXPECT_EQ(fresh->report.results[0].status,
              HealthStatus::Compromised);
    EXPECT_NE(fresh->report.results[0].detail.find("rootkit"),
              std::string::npos);

    // Clean the guest on the new host: the same stream turns healthy,
    // proving measurements now come from the new server's monitors.
    for (const auto &proc : newHost->guestOs(vid).processes()) {
        if (proc.name == "rootkit") {
            newHost->guestOs(vid).killProcess(proc.pid);
            break;
        }
    }
    const std::size_t beforeClean = alice.reportsFor(req).size();
    ASSERT_TRUE(cloud.runUntil(
        [&] { return alice.reportsFor(req).size() > beforeClean; },
        seconds(45)));
    EXPECT_EQ(alice.reportsFor(req).back()->report.results[0].status,
              HealthStatus::Healthy);
}

TEST(MigrationContinuityTest, WorksAcrossAttestationClusters)
{
    // Two servers in two different AS clusters: the migration moves
    // the VM to the other cluster's attestor; the stale task on the
    // old attestor is stopped.
    CloudConfig cfg;
    cfg.numServers = 2;
    cfg.numAttestationServers = 2;
    Cloud cloud(cfg);
    Customer &alice = cloud.addCustomer("alice");
    auto launched = cloud.launchVm(alice, "vm", "cirros", "small",
                                   proto::allProperties());
    ASSERT_TRUE(launched.isOk());
    const std::string vid = launched.take();

    const std::uint64_t req = alice.runtimeAttestPeriodic(
        vid, {SecurityProperty::RuntimeIntegrity}, seconds(10));
    ASSERT_TRUE(cloud.runUntil(
        [&] { return alice.reportsFor(req).size() >= 1; }, seconds(45)));
    const std::size_t tasksBefore =
        cloud.attestationServer(0).activePeriodicTasks() +
        cloud.attestationServer(1).activePeriodicTasks();
    EXPECT_EQ(tasksBefore, 1u);

    cloud.controller().setResponsePolicy(
        vid, controller::ResponsePolicy::Migrate);
    cloud.serverHosting(vid)->guestOs(vid).injectHiddenMalware(
        "rootkit");
    ASSERT_TRUE(cloud.runUntil(
        [&] {
            const auto &log = cloud.controller().responseLog();
            return !log.empty() && log.front().completed &&
                   log.front().succeeded;
        },
        seconds(120)));
    cloud.controller().setResponsePolicy(
        vid, controller::ResponsePolicy::None);

    // Let the retarget + stop settle; exactly one active task remains
    // across both attestors, and fresh reports still flow.
    cloud.runFor(seconds(15));
    EXPECT_EQ(cloud.attestationServer(0).activePeriodicTasks() +
                  cloud.attestationServer(1).activePeriodicTasks(),
              1u);
    const std::size_t before = alice.reportsFor(req).size();
    ASSERT_TRUE(cloud.runUntil(
        [&] { return alice.reportsFor(req).size() > before; },
        seconds(45)));
}

} // namespace
} // namespace monatt::core
