/**
 * @file
 * TCB/firmware rollback attacks against the minimum-TCB policy
 * (DESIGN.md §18). Four attack scenarios plus a chaos sweep:
 *
 *  - Mid-fleet firmware rollback: seeded attacker downgrades a subset
 *    of hosts; every VM on a downgraded host must end in a terminal
 *    TcbRollback verdict, the host must be quarantined, and the VM
 *    force-migrated onto an honest server that then attests Healthy.
 *
 *  - Stale-quote replay: a compromised host answers a fresh challenge
 *    with stashed measurements re-signed under the current session
 *    key. Signature and quote verify; only the N3 freshness check can
 *    catch it — and must, ending in eviction.
 *
 *  - Rollback mid-attestation: the downgrade lands while the
 *    measurement request is already in flight; the verdict must still
 *    be TcbRollback (measurements are evaluated at collection time).
 *
 *  - Rollback on a shard leader's host: the quarantine decision and
 *    forced migration are journaled, so they must survive the leader
 *    crashing and a follower taking over.
 *
 *  - Chaos sweep: rollback + stale replay under 0–30% message loss
 *    must stay bit-identical at MONATT_THREADS 1 and 8 and reach a
 *    terminal verdict for every request.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/cloud.h"
#include "crypto/sha256.h"
#include "sim/rollback_faults.h"

namespace monatt::core
{
namespace
{

void
absorbU64(crypto::Sha256 &digest, std::uint64_t v)
{
    Bytes b;
    for (int i = 0; i < 8; ++i)
        b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    digest.update(b);
}

std::string
serverName(int i)
{
    return "server-" + std::to_string(i);
}

/** Properties whose clean-run appraisal is deterministically Healthy
 * (the windowed detectors report Unknown until their sample window
 * fills, which would muddy the healthy-vs-rollback contrast). */
std::vector<proto::SecurityProperty>
integrityProps()
{
    return {proto::SecurityProperty::StartupIntegrity,
            proto::SecurityProperty::RuntimeIntegrity};
}

/** True when every result in the report carries `status`. */
bool
allResultsAre(const proto::AttestationReport &report,
              proto::HealthStatus status)
{
    if (report.results.empty())
        return false;
    for (const proto::PropertyResult &pr : report.results) {
        if (pr.status != status)
            return false;
    }
    return true;
}

TEST(TcbRollbackTest, FirmwareRollbackMidFleetQuarantinesAndMigrates)
{
    CloudConfig cfg;
    cfg.numServers = 4;
    cfg.seed = 93001;
    cfg.computeThreads = 1;
    cfg.minimumTcbVersion = 2; // == serverFirmwareVersion: floor passes
                               // until the attacker downgrades a host.
    Cloud cloud(cfg);
    Customer &customer = cloud.addCustomer("alice");

    std::vector<std::string> vids;
    for (int i = 0; i < 4; ++i) {
        auto vid = cloud.launchVm(customer, "vm-" + std::to_string(i),
                                  "cirros", "small",
                                  proto::allProperties());
        ASSERT_TRUE(vid.isOk()) << vid.errorMessage();
        vids.push_back(vid.take());
    }

    sim::FaultPlanConfig plan;
    plan.seed = 0x7CB1;
    plan.rollback.rollbackProbability = 0.5;
    plan.rollback.rollbackVersion = 1;
    plan.activeFrom = cloud.events().now();

    // The verdicts are pure functions of (seed, node): probe the model
    // directly for the expected affected set instead of seed-hunting.
    const sim::RollbackFaultModel model(plan.seed, plan.rollback);
    std::vector<std::string> rolled, honest;
    for (int i = 1; i <= cfg.numServers; ++i) {
        (model.rollsBack(serverName(i)) ? rolled : honest)
            .push_back(serverName(i));
    }
    ASSERT_GE(rolled.size(), 1u) << "seed must downgrade some host";
    ASSERT_GE(honest.size(), 1u) << "seed must leave some host honest";
    const auto isRolled = [&](const std::string &id) {
        return model.rollsBack(id);
    };

    std::map<std::string, std::string> hostBefore;
    for (const std::string &vid : vids)
        hostBefore[vid] =
            cloud.controllerFor(vid).database().vm(vid)->serverId;

    cloud.installFaultPlan(plan);
    auto results =
        cloud.attestMany(customer, vids, integrityProps());

    std::size_t attacked = 0;
    for (std::size_t i = 0; i < vids.size(); ++i) {
        ASSERT_TRUE(results[i].isOk()) << results[i].errorMessage();
        const VerifiedReport &r = results[i].value();
        if (isRolled(hostBefore[vids[i]])) {
            ++attacked;
            EXPECT_TRUE(allResultsAre(r.report,
                                      proto::HealthStatus::TcbRollback))
                << vids[i] << " on downgraded host "
                << hostBefore[vids[i]];
            EXPECT_NE(r.report.results.front().detail.find(
                          "below minimum"),
                      std::string::npos);
            EXPECT_EQ(customer.outcomeFor(r.requestId).state,
                      AttestationOutcome::TcbRollback);
        } else {
            EXPECT_TRUE(r.report.allHealthy())
                << vids[i] << " on honest host " << hostBefore[vids[i]];
        }
    }
    ASSERT_GE(attacked, 1u);

    // Every attacked VM is force-migrated off the quarantined host.
    for (const std::string &vid : vids) {
        if (!isRolled(hostBefore[vid]))
            continue;
        EXPECT_TRUE(cloud.runUntil(
            [&] {
                const controller::VmRecord *rec =
                    cloud.controllerFor(vid).database().vm(vid);
                return rec != nullptr &&
                       rec->status == controller::VmStatus::Running &&
                       rec->serverId != hostBefore[vid];
            },
            seconds(120)))
            << vid << " was not migrated off " << hostBefore[vid];
    }

    auto &cc = cloud.controller();
    EXPECT_GE(cc.stats().tcbRollbackReports, attacked);
    EXPECT_GE(cc.stats().serversQuarantined, 1u);
    EXPECT_GE(cloud.attestationServer().stats().tcbRollbackVerdicts,
              attacked);

    for (const std::string &vid : vids) {
        if (!isRolled(hostBefore[vid]))
            continue;
        // The downgraded source is quarantined; the target is not.
        const controller::ServerRecord *src =
            cc.database().server(hostBefore[vid]);
        ASSERT_NE(src, nullptr);
        EXPECT_TRUE(src->quarantined);
        const controller::VmRecord *rec =
            cloud.controllerFor(vid).database().vm(vid);
        const controller::ServerRecord *dst =
            cc.database().server(rec->serverId);
        ASSERT_NE(dst, nullptr);
        EXPECT_FALSE(dst->quarantined);

        // The response log shows a completed forced migration.
        bool migrated = false;
        for (const controller::ResponseRecord &log :
             cloud.controllerFor(vid).responseLog()) {
            migrated |= log.vid == vid &&
                        log.action == controller::ResponsePolicy::Migrate &&
                        log.detail.find("tcb rollback") !=
                            std::string::npos &&
                        log.completed && log.succeeded;
        }
        EXPECT_TRUE(migrated) << vid;
    }
    for (const std::string &id : honest)
        EXPECT_FALSE(cc.database().server(id)->quarantined) << id;

    // A migrated VM now sitting on an honest host attests Healthy:
    // the eviction actually restored the customer's trust chain.
    std::size_t reattested = 0;
    for (const std::string &vid : vids) {
        if (!isRolled(hostBefore[vid]))
            continue;
        const std::string nowOn =
            cloud.controllerFor(vid).database().vm(vid)->serverId;
        if (isRolled(nowOn))
            continue; // Landed on a not-yet-attested downgraded host.
        auto again =
            cloud.attestOnce(customer, vid, integrityProps());
        ASSERT_TRUE(again.isOk()) << again.errorMessage();
        EXPECT_TRUE(again.value().report.allHealthy()) << vid;
        ++reattested;
    }
    EXPECT_GE(reattested, 1u)
        << "no attacked VM landed on an honest host";
}

TEST(TcbRollbackTest, StaleQuoteReplayWithValidSignatureIsEvicted)
{
    CloudConfig cfg;
    cfg.numServers = 2;
    cfg.seed = 93002;
    cfg.computeThreads = 1;
    cfg.minimumTcbVersion = 2;
    Cloud cloud(cfg);
    Customer &customer = cloud.addCustomer("alice");

    auto vidR = cloud.launchVm(customer, "vm-0", "cirros", "small",
                               proto::allProperties());
    ASSERT_TRUE(vidR.isOk()) << vidR.errorMessage();
    const std::string vid = vidR.take();
    const std::string firstHost =
        cloud.controllerFor(vid).database().vm(vid)->serverId;

    // Every host replays: the stash from the (honest) startup
    // attestation answers the next fresh challenge, re-signed under
    // the current session key so signature and quote checks pass.
    sim::FaultPlanConfig plan;
    plan.seed = 0x57A1E;
    plan.rollback.staleReplayProbability = 1.0;
    plan.activeFrom = cloud.events().now();
    cloud.installFaultPlan(plan);

    auto r = cloud.attestOnce(customer, vid, integrityProps());
    ASSERT_TRUE(r.isOk()) << r.errorMessage();
    EXPECT_TRUE(allResultsAre(r.value().report,
                              proto::HealthStatus::TcbRollback));
    EXPECT_EQ(r.value().report.results.front().detail,
              "stale quote replayed for fresh challenge");
    EXPECT_EQ(customer.outcomeFor(r.value().requestId).state,
              AttestationOutcome::TcbRollback);
    EXPECT_GE(cloud.attestationServer().stats().staleReplaysDetected, 1u);

    // Evicted onto the other server...
    ASSERT_TRUE(cloud.runUntil(
        [&] {
            const controller::VmRecord *rec =
                cloud.controllerFor(vid).database().vm(vid);
            return rec->status == controller::VmStatus::Running &&
                   rec->serverId != firstHost;
        },
        seconds(120)));
    EXPECT_TRUE(
        cloud.controller().database().server(firstHost)->quarantined);

    // ...where no stale stash exists for this VM yet, so the next
    // challenge is answered honestly and the floor passes.
    auto again = cloud.attestOnce(customer, vid, integrityProps());
    ASSERT_TRUE(again.isOk()) << again.errorMessage();
    EXPECT_TRUE(again.value().report.allHealthy());
}

TEST(TcbRollbackTest, RollbackDuringInFlightAttestationIsCaught)
{
    CloudConfig cfg;
    cfg.numServers = 2;
    cfg.seed = 93003;
    cfg.computeThreads = 1;
    cfg.minimumTcbVersion = 2;
    Cloud cloud(cfg);
    Customer &customer = cloud.addCustomer("alice");

    auto vidR = cloud.launchVm(customer, "vm-0", "cirros", "small",
                               proto::allProperties());
    ASSERT_TRUE(vidR.isOk()) << vidR.errorMessage();
    const std::string vid = vidR.take();
    const std::string firstHost =
        cloud.controllerFor(vid).database().vm(vid)->serverId;

    // The downgrade lands while the challenge is already travelling:
    // the request leaves now, the attack window opens 300us later,
    // and the measurement is collected after that. TcbVersion is
    // evaluated at collection time, so the verdict must catch it.
    sim::FaultPlanConfig plan;
    plan.seed = 0xF00D;
    plan.rollback.rollbackProbability = 1.0;
    plan.rollback.rollbackVersion = 1;
    plan.activeFrom = cloud.events().now() + usec(300);
    cloud.installFaultPlan(plan);

    auto r = cloud.attestOnce(customer, vid, proto::allProperties());
    ASSERT_TRUE(r.isOk()) << r.errorMessage();
    EXPECT_TRUE(allResultsAre(r.value().report,
                              proto::HealthStatus::TcbRollback));

    ASSERT_TRUE(cloud.runUntil(
        [&] {
            const controller::VmRecord *rec =
                cloud.controllerFor(vid).database().vm(vid);
            return rec->status == controller::VmStatus::Running &&
                   rec->serverId != firstHost;
        },
        seconds(120)));
    EXPECT_TRUE(
        cloud.controller().database().server(firstHost)->quarantined);
}

TEST(TcbRollbackTest, QuarantineAndMigrationSurviveLeaderFailover)
{
    CloudConfig cfg;
    cfg.numServers = 3;
    cfg.seed = 93004;
    cfg.computeThreads = 1;
    cfg.controllerShards = 1;
    cfg.controllerReplicas = 3;
    cfg.minimumTcbVersion = 2;
    Cloud cloud(cfg);
    Customer &customer = cloud.addCustomer("alice");

    auto vidR = cloud.launchVm(customer, "vm-0", "cirros", "small",
                               proto::allProperties());
    ASSERT_TRUE(vidR.isOk()) << vidR.errorMessage();
    const std::string vid = vidR.take();
    auto &fab = cloud.controllerFabric();
    const std::string firstHost =
        fab.ownerOf(vid).database().vm(vid)->serverId;

    sim::FaultPlanConfig plan;
    plan.seed = 0x1EAD;
    plan.rollback.rollbackProbability = 1.0;
    plan.rollback.rollbackVersion = 1;
    plan.activeFrom = cloud.events().now();
    cloud.installFaultPlan(plan);

    auto r = cloud.attestOnce(customer, vid, proto::allProperties());
    ASSERT_TRUE(r.isOk()) << r.errorMessage();
    EXPECT_TRUE(allResultsAre(r.value().report,
                              proto::HealthStatus::TcbRollback));

    // Kill the round-1 leader right after the verdict: the quarantine
    // and the forced migration live in the replicated journal, so the
    // promoted follower must finish the eviction (re-sending the
    // migration command if its ack died with the old leader).
    ASSERT_TRUE(cloud.crashNode("cloud-controller").isOk());

    ASSERT_TRUE(cloud.runUntil(
        [&] {
            controller::CloudController &leader = fab.leaderOf(0);
            if (leader.electionRound() < 2)
                return false;
            const controller::VmRecord *rec = leader.database().vm(vid);
            return rec != nullptr &&
                   rec->status == controller::VmStatus::Running &&
                   rec->serverId != firstHost;
        },
        seconds(120)))
        << "promoted follower did not finish the forced migration";

    controller::CloudController &leader = fab.leaderOf(0);
    EXPECT_NE(leader.id(), "cloud-controller");
    const controller::ServerRecord *src =
        leader.database().server(firstHost);
    ASSERT_NE(src, nullptr);
    EXPECT_TRUE(src->quarantined)
        << "quarantine decision lost across failover";

    bool migrated = false;
    for (const controller::ResponseRecord &log : leader.responseLog()) {
        migrated |= log.vid == vid &&
                    log.action == controller::ResponsePolicy::Migrate &&
                    log.completed && log.succeeded;
    }
    EXPECT_TRUE(migrated)
        << "replicated response log lost the migration record";
}

// --- Chaos sweep -------------------------------------------------------

struct RollbackChaosTrace
{
    std::string digest;
    std::size_t okCount = 0;
    std::size_t settled = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t rollbackVerdicts = 0;
    std::size_t eventsExecuted = 0;
    SimTime endTime = 0;
};

RollbackChaosTrace
runRollbackChaos(std::size_t computeThreads, double drop)
{
    CloudConfig cfg;
    cfg.numServers = 4;
    cfg.numAttestationServers = 2;
    cfg.seed = 93005;
    cfg.computeThreads = computeThreads;
    cfg.cryptoBatchWindow = usec(200);
    cfg.minimumTcbVersion = 2;
    Cloud cloud(cfg);
    Customer &customer = cloud.addCustomer("alice");

    std::vector<std::string> vids;
    for (int i = 0; i < 4; ++i) {
        auto vid = cloud.launchVm(customer, "vm-" + std::to_string(i),
                                  "cirros", "small",
                                  proto::allProperties());
        EXPECT_TRUE(vid.isOk()) << vid.errorMessage();
        if (vid.isOk())
            vids.push_back(vid.take());
    }

    std::map<std::string, std::string> hostBefore;
    for (const std::string &vid : vids)
        hostBefore[vid] =
            cloud.controllerFor(vid).database().vm(vid)->serverId;

    // Both attacker axes plus a lossy wire: the detection and the
    // eviction must stay deterministic under retransmission chaos.
    sim::FaultPlanConfig plan;
    plan.seed = 0x7CB5;
    plan.rollback.rollbackProbability = 0.5;
    plan.rollback.rollbackVersion = 1;
    plan.rollback.staleReplayProbability = 0.25;
    plan.faults.dropProbability = drop;
    plan.activeFrom = cloud.events().now();
    cloud.installFaultPlan(plan);

    std::vector<std::string> many;
    for (int i = 0; i < 12; ++i)
        many.push_back(vids[static_cast<std::size_t>(i) % vids.size()]);
    auto results = cloud.attestMany(customer, many,
                                    proto::allProperties(), seconds(600));
    // Let the triggered evictions drain (on a clean wire they all
    // complete; under loss whatever state remains must be identical
    // across pool widths).
    cloud.runFor(seconds(60));

    RollbackChaosTrace trace;
    crypto::Sha256 digest;
    for (const auto &r : results) {
        if (r.isOk()) {
            ++trace.okCount;
            ++trace.settled;
            digest.update(r.value().report.encode());
            absorbU64(digest,
                      static_cast<std::uint64_t>(r.value().receivedAt));
        } else {
            trace.settled += r.errorMessage() != "attestation timed out";
            digest.update(toBytes(r.errorMessage()));
        }
    }

    // Fold the final control-plane state into the digest: placements,
    // VM status, quarantine flags, response log shape.
    auto &cc = cloud.controller();
    for (const std::string &vid : vids) {
        const controller::VmRecord *rec =
            cloud.controllerFor(vid).database().vm(vid);
        digest.update(toBytes(vid + "@" + rec->serverId));
        absorbU64(digest, static_cast<std::uint64_t>(rec->status));
    }
    for (int i = 1; i <= cfg.numServers; ++i) {
        const controller::ServerRecord *srv =
            cc.database().server(serverName(i));
        absorbU64(digest, srv->quarantined ? 1 : 0);
        trace.quarantined += srv->quarantined;
    }
    for (const controller::ResponseRecord &log : cc.responseLog()) {
        digest.update(toBytes(log.vid + "->" + log.targetServer));
        absorbU64(digest, static_cast<std::uint64_t>(log.action));
        absorbU64(digest, log.completed);
        absorbU64(digest, log.succeeded);
    }
    for (std::size_t a = 0; a < cloud.numAttestationServers(); ++a)
        trace.rollbackVerdicts +=
            cloud.attestationServer(a).stats().tcbRollbackVerdicts;
    trace.digest = toHex(digest.digest());
    trace.eventsExecuted = cloud.events().executed();
    trace.endTime = cloud.events().now();
    return trace;
}

TEST(TcbRollbackTest, ChaosSweepSettlesAndIsBitIdentical)
{
    for (const double drop : {0.0, 0.1, 0.3}) {
        const RollbackChaosTrace serial = runRollbackChaos(1, drop);
        const RollbackChaosTrace wide = runRollbackChaos(8, drop);

        for (const RollbackChaosTrace *t : {&serial, &wide}) {
            EXPECT_EQ(t->settled, 12u)
                << "every request needs a terminal verdict, drop="
                << drop;
            // The attacker axes actually fired and were caught.
            EXPECT_GE(t->rollbackVerdicts, 1u) << "drop=" << drop;
            EXPECT_GE(t->quarantined, 1u) << "drop=" << drop;
            if (drop == 0.0) {
                // Clean wire: every report verifies end to end.
                EXPECT_EQ(t->okCount, 12u);
            }
        }

        // Bit-identical across pool widths, per drop rate.
        EXPECT_EQ(serial.digest, wide.digest) << "drop=" << drop;
        EXPECT_EQ(serial.settled, wide.settled) << "drop=" << drop;
        EXPECT_EQ(serial.quarantined, wide.quarantined)
            << "drop=" << drop;
        EXPECT_EQ(serial.eventsExecuted, wide.eventsExecuted)
            << "drop=" << drop;
        EXPECT_EQ(serial.endTime, wide.endTime) << "drop=" << drop;
    }
}

} // namespace
} // namespace monatt::core
