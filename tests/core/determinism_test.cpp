/**
 * @file
 * Compute-plane determinism: the same seeded deployment must produce
 * byte-identical attestation reports and an identical event-execution
 * count whether the worker pool runs serial (computeThreads = 1) or
 * wide (computeThreads = 8). The scenario deliberately crosses every
 * batched path — VM launches with startup attestation, a concurrent
 * attestMany fan-out, and a covert-channel round whose usage
 * histograms are sensitive to any scheduling perturbation.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/cloud.h"
#include "crypto/sha256.h"
#include "workloads/attacks.h"
#include "workloads/programs.h"

namespace monatt::core
{
namespace
{

/** Everything observable about one scenario run. */
struct Trace
{
    std::vector<std::string> vids;
    std::string reportDigest; //!< SHA-256 over all verified reports.
    std::size_t reportCount = 0;
    std::size_t eventsExecuted = 0;
    SimTime endTime = 0;
};

void
absorbTime(crypto::Sha256 &digest, SimTime t)
{
    Bytes b;
    for (int i = 0; i < 8; ++i)
        b.push_back(static_cast<std::uint8_t>(
            static_cast<std::uint64_t>(t) >> (8 * i)));
    digest.update(b);
}

Trace
runScenario(std::size_t computeThreads)
{
    CloudConfig cfg;
    cfg.numServers = 4;
    cfg.seed = 424242;
    cfg.computeThreads = computeThreads;
    cfg.cryptoBatchWindow = usec(200);
    Cloud cloud(cfg);
    Customer &customer = cloud.addCustomer("alice");

    Trace trace;
    for (int i = 0; i < 3; ++i) {
        auto vid = cloud.launchVm(customer, "vm-" + std::to_string(i),
                                  "cirros", "small",
                                  proto::allProperties());
        EXPECT_TRUE(vid.isOk()) << vid.errorMessage();
        if (vid.isOk())
            trace.vids.push_back(vid.take());
    }

    // Concurrent fan-out: exercises AIK prep, pCA certification,
    // quote signing, verification and relay batches all at once.
    for (auto &r :
         cloud.attestMany(customer, trace.vids, proto::allProperties()))
        EXPECT_TRUE(r.isOk()) << r.errorMessage();

    // Covert-channel round: a co-resident sender next to the first
    // VM; its interval structure must be bit-identical too.
    server::CloudServer *host = cloud.serverHosting(trace.vids[0]);
    EXPECT_NE(host, nullptr);
    if (host != nullptr) {
        auto &hv = host->hypervisor();
        hv.setBehavior(host->domainOf(trace.vids[0]), 0,
                       std::make_unique<workloads::SpinnerProgram>());
        const auto senderDomain = hv.createDomain(
            "covert-sender", 2, /*pcpu=*/0, toBytes("attacker-image"),
            1024);
        auto message = std::make_shared<workloads::CovertMessage>();
        Rng bitRng(7);
        for (int i = 0; i < 512; ++i)
            message->bits.push_back(bitRng.nextBool());
        workloads::installCovertSender(
            hv, senderDomain, message,
            workloads::CovertChannelParams::detectPreset());
    }
    cloud.runFor(seconds(2));
    for (auto &r :
         cloud.attestMany(customer, trace.vids, proto::allProperties()))
        EXPECT_TRUE(r.isOk()) << r.errorMessage();

    crypto::Sha256 digest;
    for (const VerifiedReport &r : customer.reports()) {
        digest.update(r.report.encode());
        absorbTime(digest, r.receivedAt);
    }
    trace.reportDigest = toHex(digest.digest());
    trace.reportCount = customer.reports().size();
    trace.eventsExecuted = cloud.events().executed();
    trace.endTime = cloud.events().now();
    return trace;
}

TEST(DeterminismTest, SerialAndWidePoolsAreBitIdentical)
{
    const Trace serial = runScenario(1);
    const Trace wide = runScenario(8);

    EXPECT_EQ(serial.vids, wide.vids);
    ASSERT_GT(serial.reportCount, 0u);
    EXPECT_EQ(serial.reportCount, wide.reportCount);
    EXPECT_EQ(serial.reportDigest, wide.reportDigest)
        << "verified attestation reports must be byte-identical at "
           "any pool width";
    EXPECT_EQ(serial.eventsExecuted, wide.eventsExecuted)
        << "the pool must never change what the event loop executes";
    EXPECT_EQ(serial.endTime, wide.endTime);
}

TEST(DeterminismTest, OddPoolWidthMatchesToo)
{
    // A width that does not divide the batch sizes exercises the
    // work-stealing boundaries of parallelFor.
    const Trace serial = runScenario(1);
    const Trace odd = runScenario(3);
    EXPECT_EQ(serial.reportDigest, odd.reportDigest);
    EXPECT_EQ(serial.eventsExecuted, odd.eventsExecuted);
}

} // namespace
} // namespace monatt::core
