/**
 * @file
 * Compute-plane determinism: the same seeded deployment must produce
 * byte-identical attestation reports and an identical event-execution
 * count whether the worker pool runs serial (computeThreads = 1) or
 * wide (computeThreads = 8). The scenario deliberately crosses every
 * batched path — VM launches with startup attestation, a concurrent
 * attestMany fan-out, and a covert-channel round whose usage
 * histograms are sensitive to any scheduling perturbation.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/cloud.h"
#include "crypto/sha256.h"
#include "workloads/attacks.h"
#include "workloads/programs.h"

namespace monatt::core
{
namespace
{

/** Everything observable about one scenario run. */
struct Trace
{
    std::vector<std::string> vids;
    std::string reportDigest; //!< SHA-256 over all verified reports.
    std::size_t reportCount = 0;
    std::size_t eventsExecuted = 0;
    SimTime endTime = 0;
};

void
absorbTime(crypto::Sha256 &digest, SimTime t)
{
    Bytes b;
    for (int i = 0; i < 8; ++i)
        b.push_back(static_cast<std::uint8_t>(
            static_cast<std::uint64_t>(t) >> (8 * i)));
    digest.update(b);
}

Trace
runScenario(std::size_t computeThreads)
{
    CloudConfig cfg;
    cfg.numServers = 4;
    cfg.seed = 424242;
    cfg.computeThreads = computeThreads;
    cfg.cryptoBatchWindow = usec(200);
    Cloud cloud(cfg);
    Customer &customer = cloud.addCustomer("alice");

    Trace trace;
    for (int i = 0; i < 3; ++i) {
        auto vid = cloud.launchVm(customer, "vm-" + std::to_string(i),
                                  "cirros", "small",
                                  proto::allProperties());
        EXPECT_TRUE(vid.isOk()) << vid.errorMessage();
        if (vid.isOk())
            trace.vids.push_back(vid.take());
    }

    // Concurrent fan-out: exercises AIK prep, pCA certification,
    // quote signing, verification and relay batches all at once.
    for (auto &r :
         cloud.attestMany(customer, trace.vids, proto::allProperties()))
        EXPECT_TRUE(r.isOk()) << r.errorMessage();

    // Covert-channel round: a co-resident sender next to the first
    // VM; its interval structure must be bit-identical too.
    server::CloudServer *host = cloud.serverHosting(trace.vids[0]);
    EXPECT_NE(host, nullptr);
    if (host != nullptr) {
        auto &hv = host->hypervisor();
        hv.setBehavior(host->domainOf(trace.vids[0]), 0,
                       std::make_unique<workloads::SpinnerProgram>());
        const auto senderDomain = hv.createDomain(
            "covert-sender", 2, /*pcpu=*/0, toBytes("attacker-image"),
            1024);
        auto message = std::make_shared<workloads::CovertMessage>();
        Rng bitRng(7);
        for (int i = 0; i < 512; ++i)
            message->bits.push_back(bitRng.nextBool());
        workloads::installCovertSender(
            hv, senderDomain, message,
            workloads::CovertChannelParams::detectPreset());
    }
    cloud.runFor(seconds(2));
    for (auto &r :
         cloud.attestMany(customer, trace.vids, proto::allProperties()))
        EXPECT_TRUE(r.isOk()) << r.errorMessage();

    crypto::Sha256 digest;
    for (const VerifiedReport &r : customer.reports()) {
        digest.update(r.report.encode());
        absorbTime(digest, r.receivedAt);
    }
    trace.reportDigest = toHex(digest.digest());
    trace.reportCount = customer.reports().size();
    trace.eventsExecuted = cloud.events().executed();
    trace.endTime = cloud.events().now();
    return trace;
}

TEST(DeterminismTest, SerialAndWidePoolsAreBitIdentical)
{
    const Trace serial = runScenario(1);
    const Trace wide = runScenario(8);

    EXPECT_EQ(serial.vids, wide.vids);
    ASSERT_GT(serial.reportCount, 0u);
    EXPECT_EQ(serial.reportCount, wide.reportCount);
    EXPECT_EQ(serial.reportDigest, wide.reportDigest)
        << "verified attestation reports must be byte-identical at "
           "any pool width";
    EXPECT_EQ(serial.eventsExecuted, wide.eventsExecuted)
        << "the pool must never change what the event loop executes";
    EXPECT_EQ(serial.endTime, wide.endTime);
}

TEST(DeterminismTest, OddPoolWidthMatchesToo)
{
    // A width that does not divide the batch sizes exercises the
    // work-stealing boundaries of parallelFor.
    const Trace serial = runScenario(1);
    const Trace odd = runScenario(3);
    EXPECT_EQ(serial.reportDigest, odd.reportDigest);
    EXPECT_EQ(serial.eventsExecuted, odd.eventsExecuted);
}

// --- Chaos determinism -------------------------------------------------
//
// The reliability layer under an active fault plan must stay as
// deterministic as the fault-free path: retry timers, failover and
// dedup decisions all key off simulated time and seeded randomness, so
// the exact same verdicts — down to report bytes and event counts —
// must come out at any pool width.

struct ChaosTrace
{
    std::string digest; //!< Over every request's terminal outcome.
    std::size_t okCount = 0;
    std::size_t settled = 0;
    std::size_t duplicateReports = 0;
    std::size_t eventsExecuted = 0;
    SimTime endTime = 0;
};

ChaosTrace
runChaosScenario(std::size_t computeThreads, double drop, bool crash,
                 bool installPlan = true)
{
    CloudConfig cfg;
    cfg.numServers = 4;
    cfg.numAttestationServers = 2;
    cfg.seed = 31337;
    cfg.computeThreads = computeThreads;
    cfg.cryptoBatchWindow = usec(200);
    Cloud cloud(cfg);
    Customer &customer = cloud.addCustomer("alice");

    // Provision fault-free, then switch the faults on.
    std::vector<std::string> vids;
    for (int i = 0; i < 5; ++i) {
        auto vid = cloud.launchVm(customer, "vm-" + std::to_string(i),
                                  "cirros", "small",
                                  proto::allProperties());
        EXPECT_TRUE(vid.isOk()) << vid.errorMessage();
        if (vid.isOk())
            vids.push_back(vid.take());
    }

    if (installPlan) {
        sim::FaultPlanConfig plan;
        plan.seed = 0xC0FFEE;
        plan.faults.dropProbability = drop;
        plan.activeFrom = cloud.events().now();
        if (crash) {
            // Take the primary Attestation Server down mid-protocol
            // and bring it back much later: forces controller failover
            // to the second cluster.
            plan.crashes.push_back(sim::CrashEvent{
                "attestation-server", cloud.events().now() + msec(800),
                cloud.events().now() + seconds(12)});
        }
        cloud.installFaultPlan(plan);
    }

    std::vector<std::string> many;
    for (int i = 0; i < 50; ++i)
        many.push_back(vids[static_cast<std::size_t>(i) % vids.size()]);
    auto results = cloud.attestMany(customer, many,
                                    proto::allProperties(), seconds(600));

    ChaosTrace trace;
    crypto::Sha256 digest;
    for (auto &r : results) {
        if (r.isOk()) {
            ++trace.okCount;
            ++trace.settled;
            digest.update(r.value().report.encode());
            absorbTime(digest, r.value().receivedAt);
        } else {
            trace.settled += r.errorMessage() != "attestation timed out";
            digest.update(toBytes(r.errorMessage()));
        }
    }
    trace.digest = toHex(digest.digest());

    // No request may ever yield two verified reports (retransmission
    // dedup at every hop prevents double-executed quotes).
    std::map<std::uint64_t, std::size_t> perRequest;
    for (const VerifiedReport &r : customer.reports())
        ++perRequest[r.requestId];
    for (const auto &[id, count] : perRequest) {
        (void)id;
        if (count > 1)
            trace.duplicateReports += count - 1;
    }

    trace.eventsExecuted = cloud.events().executed();
    trace.endTime = cloud.events().now();
    return trace;
}

TEST(ChaosDeterminismTest, FaultSweepSettlesAndIsBitIdentical)
{
    for (const double drop : {0.0, 0.01, 0.1, 0.3}) {
        const bool crash = drop >= 0.1;
        const ChaosTrace serial = runChaosScenario(1, drop, crash);
        const ChaosTrace wide = runChaosScenario(8, drop, crash);

        // Every request reaches a definitive verdict — success,
        // Unreachable or Failed — never a hang.
        EXPECT_EQ(serial.settled, 50u) << "drop=" << drop;
        EXPECT_EQ(wide.settled, 50u) << "drop=" << drop;
        EXPECT_EQ(serial.duplicateReports, 0u) << "drop=" << drop;
        EXPECT_EQ(wide.duplicateReports, 0u) << "drop=" << drop;

        // Bit-identical across pool widths, faults and all.
        EXPECT_EQ(serial.digest, wide.digest) << "drop=" << drop;
        EXPECT_EQ(serial.okCount, wide.okCount) << "drop=" << drop;
        EXPECT_EQ(serial.eventsExecuted, wide.eventsExecuted)
            << "drop=" << drop;
        EXPECT_EQ(serial.endTime, wide.endTime) << "drop=" << drop;

        // A clean wire with the reliability layer armed loses nothing.
        if (drop == 0.0) {
            EXPECT_EQ(serial.okCount, 50u);
        }
    }
}

// --- Controller crash / recovery ---------------------------------------
//
// The controller is the one entity whose loss used to forfeit all
// protocol state. With the write-ahead journal it must come back from
// a mid-protocol crash with every VmRecord intact, every accepted
// attestation re-armed to a terminal verdict, and no double-issued
// report — and the whole recovery must be bit-identical across pool
// widths.

struct RecoveryTrace
{
    std::string digest;
    std::size_t okCount = 0;
    std::size_t settled = 0;
    std::size_t duplicateReports = 0;
    std::size_t lostVmRecords = 0;
    std::uint64_t recoveries = 0;
    std::size_t eventsExecuted = 0;
    SimTime endTime = 0;
};

RecoveryTrace
runControllerCrashScenario(std::size_t computeThreads, double drop)
{
    CloudConfig cfg;
    cfg.numServers = 4;
    cfg.numAttestationServers = 2;
    cfg.seed = 98765;
    cfg.computeThreads = computeThreads;
    cfg.cryptoBatchWindow = usec(200);
    Cloud cloud(cfg);
    Customer &customer = cloud.addCustomer("alice");

    // Provision fault-free, then crash the controller mid-protocol.
    std::vector<std::string> vids;
    for (int i = 0; i < 4; ++i) {
        auto vid = cloud.launchVm(customer, "vm-" + std::to_string(i),
                                  "cirros", "small",
                                  proto::allProperties());
        EXPECT_TRUE(vid.isOk()) << vid.errorMessage();
        if (vid.isOk())
            vids.push_back(vid.take());
    }

    sim::FaultPlanConfig plan;
    plan.seed = 0xDEADBEA7;
    plan.faults.dropProbability = drop;
    plan.activeFrom = cloud.events().now();
    // Down after the AttestRequests are accepted (and journaled), back
    // well before the customers' retry budgets run out.
    plan.crashes.push_back(sim::CrashEvent{
        "cloud-controller", cloud.events().now() + msec(800),
        cloud.events().now() + seconds(4)});
    cloud.installFaultPlan(plan);

    std::vector<std::string> many;
    for (int i = 0; i < 30; ++i)
        many.push_back(vids[static_cast<std::size_t>(i) % vids.size()]);
    auto results = cloud.attestMany(customer, many,
                                    proto::allProperties(), seconds(600));

    RecoveryTrace trace;
    crypto::Sha256 digest;
    for (auto &r : results) {
        if (r.isOk()) {
            ++trace.okCount;
            ++trace.settled;
            digest.update(r.value().report.encode());
            absorbTime(digest, r.value().receivedAt);
        } else {
            trace.settled += r.errorMessage() != "attestation timed out";
            digest.update(toBytes(r.errorMessage()));
        }
    }
    trace.digest = toHex(digest.digest());

    for (const std::string &vid : vids) {
        if (cloud.controller().database().vm(vid) == nullptr)
            ++trace.lostVmRecords;
    }

    std::map<std::uint64_t, std::size_t> perRequest;
    for (const VerifiedReport &r : customer.reports())
        ++perRequest[r.requestId];
    for (const auto &[id, count] : perRequest) {
        (void)id;
        if (count > 1)
            trace.duplicateReports += count - 1;
    }

    trace.recoveries = cloud.controller().stats().recoveries;
    trace.eventsExecuted = cloud.events().executed();
    trace.endTime = cloud.events().now();
    return trace;
}

TEST(ControllerRecoveryDeterminismTest, CrashSweepIsBitIdentical)
{
    for (const double drop : {0.0, 0.1}) {
        const RecoveryTrace serial = runControllerCrashScenario(1, drop);
        const RecoveryTrace wide = runControllerCrashScenario(8, drop);

        for (const RecoveryTrace *t : {&serial, &wide}) {
            EXPECT_EQ(t->recoveries, 1u) << "drop=" << drop;
            EXPECT_EQ(t->lostVmRecords, 0u)
                << "journaled VmRecords must survive the crash, drop="
                << drop;
            EXPECT_EQ(t->settled, 30u)
                << "every accepted request must reach a terminal "
                   "verdict, drop=" << drop;
            EXPECT_EQ(t->duplicateReports, 0u) << "drop=" << drop;
        }

        EXPECT_EQ(serial.digest, wide.digest) << "drop=" << drop;
        EXPECT_EQ(serial.okCount, wide.okCount) << "drop=" << drop;
        EXPECT_EQ(serial.eventsExecuted, wide.eventsExecuted)
            << "drop=" << drop;
        EXPECT_EQ(serial.endTime, wide.endTime) << "drop=" << drop;
    }
}

// --- Shard chaos ------------------------------------------------------
//
// Sharded control plane under fire: one controller shard crashes and
// recovers mid-fan-out while the wire drops packets. Fault isolation
// must hold — only VMs owned by the crashed shard wait out its
// recovery, every other shard keeps answering at normal latency — and
// the whole run must stay bit-identical at any pool width.

struct ShardChaosTrace
{
    std::string digest;
    std::string crashedShard;
    std::size_t okCount = 0;
    std::size_t settled = 0;
    SimTime restartAt = 0;
    SimTime maxCrashedShardLatency = 0; //!< Latest receivedAt, owned VMs.
    SimTime maxOtherShardLatency = 0;   //!< Latest receivedAt, the rest.
    std::uint64_t crashedRecoveries = 0;
    std::uint64_t otherRecoveries = 0;
    std::size_t eventsExecuted = 0;
    SimTime endTime = 0;
};

ShardChaosTrace
runShardChaosScenario(std::size_t computeThreads, double drop)
{
    CloudConfig cfg;
    cfg.numServers = 4;
    cfg.numAttestationServers = 2;
    cfg.seed = 55001;
    cfg.computeThreads = computeThreads;
    cfg.cryptoBatchWindow = usec(200);
    cfg.controllerShards = 4;
    Cloud cloud(cfg);
    Customer &customer = cloud.addCustomer("alice");

    std::vector<std::string> vids;
    for (int i = 0; i < 8; ++i) {
        auto vid = cloud.launchVm(customer, "vm-" + std::to_string(i),
                                  "cirros", "small",
                                  proto::allProperties());
        EXPECT_TRUE(vid.isOk()) << vid.errorMessage();
        if (vid.isOk())
            vids.push_back(vid.take());
    }

    ShardChaosTrace trace;
    // Crash the shard owning the first VM: deterministic for the fixed
    // seed, and guaranteed to have at least one VM to isolate.
    const controller::HashRing &ring = cloud.controllerFabric().ring();
    trace.crashedShard = ring.owner(vids[0]);

    sim::FaultPlanConfig plan;
    plan.seed = 0x5AAD;
    plan.faults.dropProbability = drop;
    plan.activeFrom = cloud.events().now();
    // Down before the first fan-out answers come back, up well before
    // the customers' retry budgets run out.
    trace.restartAt = cloud.events().now() + seconds(4);
    plan.crashes.push_back(sim::CrashEvent{
        trace.crashedShard, cloud.events().now() + msec(300),
        trace.restartAt});
    cloud.installFaultPlan(plan);

    std::vector<std::string> many;
    for (int i = 0; i < 32; ++i)
        many.push_back(vids[static_cast<std::size_t>(i) % vids.size()]);
    auto results = cloud.attestMany(customer, many,
                                    proto::allProperties(), seconds(600));

    crypto::Sha256 digest;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        const bool onCrashed = ring.owner(many[i]) == trace.crashedShard;
        if (r.isOk()) {
            ++trace.okCount;
            ++trace.settled;
            digest.update(r.value().report.encode());
            absorbTime(digest, r.value().receivedAt);
            SimTime &slot = onCrashed ? trace.maxCrashedShardLatency
                                      : trace.maxOtherShardLatency;
            slot = std::max(slot, r.value().receivedAt);
        } else {
            trace.settled += r.errorMessage() != "attestation timed out";
            digest.update(toBytes(r.errorMessage()));
        }
    }
    trace.digest = toHex(digest.digest());

    for (std::size_t k = 0; k < cloud.controllerFabric().numShards();
         ++k) {
        const auto &shard = cloud.controllerFabric().shard(k);
        if (shard.id() == trace.crashedShard)
            trace.crashedRecoveries += shard.stats().recoveries;
        else
            trace.otherRecoveries += shard.stats().recoveries;
    }
    trace.eventsExecuted = cloud.events().executed();
    trace.endTime = cloud.events().now();
    return trace;
}

TEST(ShardChaosDeterminismTest, CrashedShardIsIsolatedAndBitIdentical)
{
    for (const double drop : {0.0, 0.1, 0.3}) {
        const ShardChaosTrace serial = runShardChaosScenario(1, drop);
        const ShardChaosTrace wide = runShardChaosScenario(8, drop);

        for (const ShardChaosTrace *t : {&serial, &wide}) {
            EXPECT_EQ(t->settled, 32u) << "drop=" << drop;
            EXPECT_EQ(t->crashedRecoveries, 1u)
                << "the crashed shard must replay its journal, drop="
                << drop;
            EXPECT_EQ(t->otherRecoveries, 0u)
                << "no other shard may even notice, drop=" << drop;
        }

        // Fault isolation on a clean wire: every VM on a surviving
        // shard is answered before the crashed shard even comes back;
        // the crashed shard's VMs pay its recovery latency.
        if (drop == 0.0) {
            EXPECT_EQ(serial.okCount, 32u);
            EXPECT_GT(serial.maxOtherShardLatency, 0);
            EXPECT_LT(serial.maxOtherShardLatency, serial.restartAt)
                << "surviving shards must keep normal latency";
            EXPECT_GT(serial.maxCrashedShardLatency, serial.restartAt)
                << "crashed shard's VMs wait out its recovery";
        }

        EXPECT_EQ(serial.crashedShard, wide.crashedShard);
        EXPECT_EQ(serial.digest, wide.digest) << "drop=" << drop;
        EXPECT_EQ(serial.okCount, wide.okCount) << "drop=" << drop;
        EXPECT_EQ(serial.eventsExecuted, wide.eventsExecuted)
            << "drop=" << drop;
        EXPECT_EQ(serial.endTime, wide.endTime) << "drop=" << drop;
    }
}

TEST(ChaosDeterminismTest, ZeroRateFaultPlanIsInert)
{
    // Installing an all-zero plan must not perturb the simulation at
    // all: same digest, same event count, same end time as no plan.
    const ChaosTrace without = runChaosScenario(1, 0.0, false, false);
    const ChaosTrace with = runChaosScenario(1, 0.0, false, true);
    EXPECT_EQ(without.digest, with.digest);
    EXPECT_EQ(without.okCount, 50u);
    EXPECT_EQ(with.okCount, 50u);
    EXPECT_EQ(without.endTime, with.endTime);
}

} // namespace
} // namespace monatt::core
