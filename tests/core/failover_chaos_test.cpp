/**
 * @file
 * Replicated control plane under fire. Two scenarios:
 *
 *  - Dual leader kill: every shard leader crashes mid-fan-out while
 *    the wire drops packets. A follower must win the election, replay
 *    the mirrored journal, and finish the outstanding attestations —
 *    every request reaches a terminal verdict, no VmRecord is lost,
 *    and the whole run is bit-identical at any pool width.
 *
 *  - Majority loss: with two of three replicas down the surviving
 *    leader must refuse to expose any externally visible effect; the
 *    gated work drains the moment a follower returns and majority
 *    commit resumes.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/cloud.h"
#include "crypto/sha256.h"

namespace monatt::core
{
namespace
{

void
absorbTime(crypto::Sha256 &digest, SimTime t)
{
    Bytes b;
    for (int i = 0; i < 8; ++i)
        b.push_back(static_cast<std::uint8_t>(
            static_cast<std::uint64_t>(t) >> (8 * i)));
    digest.update(b);
}

struct FailoverTrace
{
    std::string digest;
    std::size_t okCount = 0;
    std::size_t settled = 0;
    std::size_t lostRecords = 0;
    std::vector<std::string> leaders; //!< Post-failover, per shard.
    std::vector<std::uint64_t> rounds;
    std::size_t eventsExecuted = 0;
    SimTime endTime = 0;
};

FailoverTrace
runDualLeaderKill(std::size_t computeThreads, double drop)
{
    CloudConfig cfg;
    cfg.numServers = 4;
    cfg.numAttestationServers = 2;
    cfg.seed = 91001;
    cfg.computeThreads = computeThreads;
    cfg.cryptoBatchWindow = usec(200);
    cfg.controllerShards = 2;
    cfg.controllerReplicas = 3;
    Cloud cloud(cfg);
    Customer &customer = cloud.addCustomer("alice");

    std::vector<std::string> vids;
    for (int i = 0; i < 4; ++i) {
        auto vid = cloud.launchVm(customer, "vm-" + std::to_string(i),
                                  "cirros", "small",
                                  proto::allProperties());
        EXPECT_TRUE(vid.isOk()) << vid.errorMessage();
        if (vid.isOk())
            vids.push_back(vid.take());
    }
    EXPECT_EQ(vids.size(), 4u);

    // Both shard leaders die shortly after the fan-out starts and stay
    // dead long past the elections, so the answers can only come from
    // promoted followers. The old leaders rejoin near the end as
    // followers and must not disturb the terminal verdicts.
    sim::FaultPlanConfig plan;
    plan.seed = 0xFA11;
    plan.faults.dropProbability = drop;
    plan.activeFrom = cloud.events().now();
    const SimTime crashAt = cloud.events().now() + msec(300);
    const SimTime restartAt = cloud.events().now() + seconds(20);
    plan.crashes.push_back(
        sim::CrashEvent{"cloud-controller", crashAt, restartAt});
    plan.crashes.push_back(
        sim::CrashEvent{"controller-shard-1", crashAt, restartAt});
    cloud.installFaultPlan(plan);

    std::vector<std::string> many;
    for (int i = 0; i < 16; ++i)
        many.push_back(vids[static_cast<std::size_t>(i) % vids.size()]);
    auto results = cloud.attestMany(customer, many,
                                    proto::allProperties(), seconds(600));

    FailoverTrace trace;
    crypto::Sha256 digest;
    for (const auto &r : results) {
        if (r.isOk()) {
            ++trace.okCount;
            ++trace.settled;
            digest.update(r.value().report.encode());
            absorbTime(digest, r.value().receivedAt);
        } else {
            trace.settled += r.errorMessage() != "attestation timed out";
            digest.update(toBytes(r.errorMessage()));
        }
    }
    trace.digest = toHex(digest.digest());

    auto &fab = cloud.controllerFabric();
    for (std::size_t k = 0; k < fab.numShards(); ++k) {
        const auto &leader = fab.leaderOf(k);
        trace.leaders.push_back(leader.id());
        trace.rounds.push_back(leader.electionRound());
    }
    // Zero VmRecords lost: every launched VM is still known to the
    // current leader of its owning shard.
    for (const std::string &v : vids)
        trace.lostRecords += fab.ownerOf(v).database().vm(v) == nullptr;
    trace.eventsExecuted = cloud.events().executed();
    trace.endTime = cloud.events().now();
    return trace;
}

TEST(FailoverChaosTest, DualLeaderKillSettlesAndIsBitIdentical)
{
    for (const double drop : {0.0, 0.1, 0.3}) {
        const FailoverTrace serial = runDualLeaderKill(1, drop);
        const FailoverTrace wide = runDualLeaderKill(8, drop);

        for (const FailoverTrace *t : {&serial, &wide}) {
            EXPECT_EQ(t->settled, 16u)
                << "every request needs a terminal verdict, drop="
                << drop;
            EXPECT_EQ(t->lostRecords, 0u) << "drop=" << drop;
            ASSERT_EQ(t->leaders.size(), 2u);
            // A follower won each shard: the promoted leader carries a
            // later round than the bootstrap reign it replaced.
            for (std::size_t k = 0; k < t->rounds.size(); ++k)
                EXPECT_GE(t->rounds[k], 2u)
                    << "shard " << k << " leader " << t->leaders[k]
                    << " drop=" << drop;
        }
        // Clean wire additionally verifies everything.
        if (drop == 0.0) {
            EXPECT_EQ(serial.okCount, 16u);
            EXPECT_EQ(wide.okCount, 16u);
        }

        // Bit-identical across pool widths, per drop rate.
        EXPECT_EQ(serial.digest, wide.digest) << "drop=" << drop;
        EXPECT_EQ(serial.settled, wide.settled) << "drop=" << drop;
        EXPECT_EQ(serial.eventsExecuted, wide.eventsExecuted)
            << "drop=" << drop;
        EXPECT_EQ(serial.endTime, wide.endTime) << "drop=" << drop;
        EXPECT_EQ(serial.leaders, wide.leaders) << "drop=" << drop;
    }
}

TEST(FailoverChaosTest, MajorityLossGatesCommitsUntilAFollowerReturns)
{
    CloudConfig cfg;
    cfg.numServers = 2;
    cfg.seed = 91002;
    cfg.computeThreads = 1;
    cfg.controllerShards = 1;
    cfg.controllerReplicas = 3;
    Cloud cloud(cfg);
    Customer &customer = cloud.addCustomer("alice");

    // Both followers die before any work arrives; the leader survives
    // but holds only 1 of 3 journal copies.
    sim::FaultPlanConfig plan;
    plan.seed = 0xBEEF;
    const SimTime crashAt = cloud.events().now() + msec(100);
    const SimTime restartAt = cloud.events().now() + seconds(10);
    plan.crashes.push_back(sim::CrashEvent{
        "cloud-controller-replica-1", crashAt, restartAt});
    plan.crashes.push_back(sim::CrashEvent{
        "cloud-controller-replica-2", crashAt, restartAt});
    cloud.installFaultPlan(plan);
    cloud.runFor(msec(200));

    // The launch can only finish after a follower returns: every
    // externally visible step (the LaunchVm command itself) stays in
    // the leader's output gate while the majority is lost.
    auto vid = cloud.launchVm(customer, "vm-stall", "cirros", "small",
                              proto::allProperties());
    ASSERT_TRUE(vid.isOk()) << vid.errorMessage();
    EXPECT_GT(cloud.events().now(), restartAt)
        << "launch must not complete while 2 of 3 replicas are down";

    // The survivor never lost its reign — two dead followers cannot
    // elect anyone, and the leader itself has no one to lose quorum
    // to. Once majority is back the record is fully committed.
    auto &fab = cloud.controllerFabric();
    EXPECT_EQ(fab.leaderOf(0).id(), "cloud-controller");
    EXPECT_EQ(fab.leaderOf(0).electionRound(), 1u);
    EXPECT_NE(fab.ownerOf(vid.value()).database().vm(vid.value()),
              nullptr);
}

} // namespace
} // namespace monatt::core
