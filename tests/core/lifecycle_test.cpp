/**
 * @file
 * Lifecycle and deployment-shape tests: multi-VM placement, resource
 * exhaustion, customer isolation, attestation-server clusters
 * (§3.2.3), suspension auto-recheck/resume (§5.2 #2), and random
 * periodic intervals (Table 1's "or at random intervals").
 */

#include <gtest/gtest.h>

#include "core/cloud.h"
#include "workloads/programs.h"

namespace monatt::core
{
namespace
{

using proto::HealthStatus;
using proto::SecurityProperty;

TEST(PlacementTest, SpreadsVmsAcrossServers)
{
    CloudConfig cfg;
    cfg.numServers = 3;
    Cloud cloud(cfg);
    Customer &alice = cloud.addCustomer("alice");

    // The default OpenStack spread policy: each launch lands on the
    // emptiest server.
    for (int i = 0; i < 3; ++i) {
        auto vid = cloud.launchVm(alice, "vm" + std::to_string(i),
                                  "cirros", "small",
                                  proto::allProperties());
        ASSERT_TRUE(vid.isOk()) << vid.errorMessage();
    }
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(cloud.server(i).vmCount(), 1u);
}

TEST(PlacementTest, ResourceExhaustionFailsCleanly)
{
    CloudConfig cfg;
    cfg.numServers = 1;
    Cloud cloud(cfg);
    Customer &alice = cloud.addCustomer("alice");

    // 32 GB / 2 GB(large) = 16 VMs; disk 500/40 = 12 VMs -> disk is
    // the binding constraint.
    int launched = 0;
    Result<std::string> last = Result<std::string>::error("none");
    for (int i = 0; i < 14; ++i) {
        last = cloud.launchVm(alice, "vm" + std::to_string(i), "cirros",
                              "large", {});
        if (!last.isOk())
            break;
        ++launched;
    }
    EXPECT_EQ(launched, 12);
    EXPECT_FALSE(last.isOk());
    EXPECT_NE(last.errorMessage().find("no qualified server"),
              std::string::npos);
}

TEST(PlacementTest, PropertyFilterRejectsIncapableCloud)
{
    CloudConfig cfg;
    cfg.serverCapabilities = {SecurityProperty::StartupIntegrity};
    Cloud cloud(cfg);
    Customer &alice = cloud.addCustomer("alice");
    auto vid = cloud.launchVm(
        alice, "vm", "cirros", "small",
        {SecurityProperty::CovertChannelFreedom});
    ASSERT_FALSE(vid.isOk());
    EXPECT_NE(vid.errorMessage().find("no qualified server"),
              std::string::npos);
}

TEST(PlacementTest, UnknownFlavorAndImage)
{
    Cloud cloud;
    Customer &alice = cloud.addCustomer("alice");
    auto vid = cloud.launchVmWithImage(alice, "vm", "cirros",
                                       "gigantic", {}, toBytes("img"),
                                       25);
    ASSERT_FALSE(vid.isOk());
    EXPECT_NE(vid.errorMessage().find("unknown flavor"),
              std::string::npos);
    EXPECT_THROW((void)cloud.launchVm(alice, "vm", "no-such-image",
                                      "small", {}),
                 std::out_of_range);
}

TEST(IsolationTest, CustomerCannotAttestForeignVm)
{
    Cloud cloud;
    Customer &alice = cloud.addCustomer("alice");
    Customer &mallory = cloud.addCustomer("mallory");

    auto vid = cloud.launchVm(alice, "alice-vm", "cirros", "small",
                              proto::allProperties());
    ASSERT_TRUE(vid.isOk());

    // Mallory asks for a report on Alice's VM: the controller checks
    // ownership and ignores the request.
    auto report = cloud.attestOnce(mallory, vid.value(),
                                   {SecurityProperty::RuntimeIntegrity},
                                   seconds(20));
    EXPECT_FALSE(report.isOk());
    EXPECT_EQ(mallory.stats().reportsVerified, 0u);

    // Alice still can.
    auto own = cloud.attestOnce(alice, vid.value(),
                                {SecurityProperty::RuntimeIntegrity});
    EXPECT_TRUE(own.isOk());
}

TEST(ClusterTest, MultipleAttestationServersShareTheLoad)
{
    CloudConfig cfg;
    cfg.numServers = 4;
    cfg.numAttestationServers = 2;
    Cloud cloud(cfg);
    ASSERT_EQ(cloud.numAttestationServers(), 2u);
    Customer &alice = cloud.addCustomer("alice");

    // Four VMs spread over four servers; servers are assigned to the
    // two attestors round robin, so attesting all VMs exercises both.
    std::vector<std::string> vids;
    for (int i = 0; i < 4; ++i) {
        auto vid = cloud.launchVm(alice, "vm" + std::to_string(i),
                                  "cirros", "small",
                                  proto::allProperties());
        ASSERT_TRUE(vid.isOk()) << vid.errorMessage();
        vids.push_back(vid.take());
    }
    for (const std::string &vid : vids) {
        auto report = cloud.attestOnce(
            alice, vid, {SecurityProperty::RuntimeIntegrity});
        ASSERT_TRUE(report.isOk()) << report.errorMessage();
        EXPECT_EQ(report.value().report.results[0].status,
                  HealthStatus::Healthy);
    }

    // Both clusters did real work (launch attestations + runtime).
    EXPECT_GT(cloud.attestationServer(0).stats().reportsIssued, 0u);
    EXPECT_GT(cloud.attestationServer(1).stats().reportsIssued, 0u);
    EXPECT_EQ(cloud.attestationServer(0).stats().verificationFailures,
              0u);
    EXPECT_EQ(cloud.attestationServer(1).stats().verificationFailures,
              0u);
}

TEST(SuspendRecheckTest, ResumesWhenHealthRecovers)
{
    Cloud cloud;
    Customer &alice = cloud.addCustomer("alice");
    auto launched = cloud.launchVm(alice, "vm", "cirros", "small",
                                   proto::allProperties());
    ASSERT_TRUE(launched.isOk());
    const std::string vid = launched.take();

    cloud.controller().setResponsePolicy(
        vid, controller::ResponsePolicy::Suspend);
    server::CloudServer *host = cloud.serverHosting(vid);
    const auto pid = host->guestOs(vid).injectHiddenMalware("rootkit");

    auto report = cloud.attestOnce(alice, vid,
                                   {SecurityProperty::RuntimeIntegrity});
    ASSERT_TRUE(report.isOk());
    ASSERT_TRUE(cloud.runUntil(
        [&] {
            const auto &log = cloud.controller().responseLog();
            return !log.empty() && log.front().completed;
        },
        seconds(60)));
    EXPECT_EQ(cloud.controller().database().vm(vid)->status,
              controller::VmStatus::Suspended);

    // The first recheck (30 s later) still sees the rootkit: stays
    // suspended.
    cloud.runFor(seconds(40));
    EXPECT_EQ(cloud.controller().database().vm(vid)->status,
              controller::VmStatus::Suspended);

    // Clean the VM; the next recheck resumes it.
    host->guestOs(vid).killProcess(pid);
    ASSERT_TRUE(cloud.runUntil(
        [&] {
            return cloud.controller().database().vm(vid)->status ==
                   controller::VmStatus::Running;
        },
        seconds(120)));
    EXPECT_TRUE(cloud.controller().responseLog().front()
                    .resumedAfterRecheck);
    // The domain is actually executing again.
    ASSERT_TRUE(cloud.runUntil(
        [&] {
            return host->hypervisor()
                .domain(host->domainOf(vid))
                .running;
        },
        seconds(30)));
}

TEST(PeriodicTest, RandomIntervalsDeliverFreshReports)
{
    // Table 1: periodic attestation "at the frequency of freq or at
    // random intervals" — period <= 0 selects randomized intervals.
    CloudConfig cfg;
    Cloud cloud(cfg);
    Customer &alice = cloud.addCustomer("alice");
    auto launched = cloud.launchVm(alice, "vm", "cirros", "small",
                                   proto::allProperties());
    ASSERT_TRUE(launched.isOk());
    const std::string vid = launched.take();

    const std::uint64_t req = alice.runtimeAttestPeriodic(
        vid, {SecurityProperty::RuntimeIntegrity}, /*period=*/0);
    cloud.runFor(minutes(4));
    const auto reports = alice.reportsFor(req);
    // Random periods are uniform in [5 s, 60 s] => expect roughly
    // 4-48 rounds in 4 minutes; definitely more than one, and the
    // gaps should not all be identical.
    ASSERT_GE(reports.size(), 3u);
    std::set<SimTime> gaps;
    for (std::size_t i = 1; i < reports.size(); ++i)
        gaps.insert(reports[i]->receivedAt - reports[i - 1]->receivedAt);
    EXPECT_GT(gaps.size(), 1u) << "intervals should vary";
}

TEST(LaunchTimingTest, StageDurationsMatchTimingModel)
{
    Cloud cloud;
    Customer &alice = cloud.addCustomer("alice");
    auto vid = cloud.launchVm(alice, "vm", "fedora", "medium",
                              proto::allProperties());
    ASSERT_TRUE(vid.isOk());
    const auto *rec = cloud.controller().database().vm(vid.value());
    const proto::TimingModel &t = cloud.config().timing;

    EXPECT_EQ(rec->launchTimer.durationOf("networking"), t.networking);
    EXPECT_EQ(rec->launchTimer.durationOf("mapping"),
              t.mappingTime(rec->diskGb));
    // Spawning includes the LaunchVm command round trip; duration is
    // at least the server-side spawn time.
    EXPECT_GE(rec->launchTimer.durationOf("spawning"),
              t.spawnTime(rec->imageSizeMb, rec->ramMb));
    EXPECT_GT(rec->launchTimer.durationOf("attestation"), 0);
}

} // namespace
} // namespace monatt::core
