/**
 * @file
 * The audit-log-integrity extension property, unit level and end to
 * end: hash-chain mechanics in the guest OS, the history-sensitive
 * interpreter, and rollback detection through the full protocol under
 * periodic attestation.
 */

#include <gtest/gtest.h>

#include "attestation/interpreters.h"
#include "core/cloud.h"
#include "hypervisor/domain.h"

namespace monatt::core
{
namespace
{

using proto::HealthStatus;
using proto::SecurityProperty;

TEST(AuditLogTest, HashChainGrowsDeterministically)
{
    hypervisor::GuestOs a, b;
    EXPECT_EQ(a.auditLogHead(), Bytes(32, 0x00));
    a.appendAuditEvent("login root");
    a.appendAuditEvent("apt install nginx");
    b.appendAuditEvent("login root");
    b.appendAuditEvent("apt install nginx");
    EXPECT_EQ(a.auditLogHead(), b.auditLogHead());
    EXPECT_EQ(a.auditLogLength(), 2u);

    b.appendAuditEvent("rm -rf /var/log");
    EXPECT_NE(a.auditLogHead(), b.auditLogHead());
}

TEST(AuditLogTest, OrderMatters)
{
    hypervisor::GuestOs a, b;
    a.appendAuditEvent("x");
    a.appendAuditEvent("y");
    b.appendAuditEvent("y");
    b.appendAuditEvent("x");
    EXPECT_NE(a.auditLogHead(), b.auditLogHead());
}

TEST(AuditLogTest, TruncationChangesHeadAndCount)
{
    hypervisor::GuestOs os;
    for (int i = 0; i < 10; ++i)
        os.appendAuditEvent("event " + std::to_string(i));
    const Bytes headAt10 = os.auditLogHead();
    os.truncateAuditLog(6);
    EXPECT_EQ(os.auditLogLength(), 6u);
    EXPECT_NE(os.auditLogHead(), headAt10);
    os.truncateAuditLog(100); // No-op when keep >= size.
    EXPECT_EQ(os.auditLogLength(), 6u);
}

proto::MeasurementSet
auditMeasurement(std::uint64_t count, const Bytes &head)
{
    proto::MeasurementSet set;
    proto::Measurement m;
    m.type = proto::MeasurementType::AuditLogDigest;
    m.values = {count};
    m.digest = head;
    set.items.push_back(m);
    return set;
}

TEST(AuditLogInterpreterTest, BaselineThenGrowthHealthy)
{
    attestation::AuditLogIntegrityInterpreter interp;
    const auto first = auditMeasurement(5, Bytes(32, 0x11));
    attestation::InterpretationContext noHistory;
    EXPECT_EQ(interp.interpret(first, noHistory).status,
              HealthStatus::Healthy);

    const auto second = auditMeasurement(9, Bytes(32, 0x22));
    attestation::InterpretationContext ctx;
    ctx.previous = &first;
    EXPECT_EQ(interp.interpret(second, ctx).status,
              HealthStatus::Healthy);
}

TEST(AuditLogInterpreterTest, TruncationCompromised)
{
    attestation::AuditLogIntegrityInterpreter interp;
    const auto prev = auditMeasurement(9, Bytes(32, 0x22));
    const auto now = auditMeasurement(4, Bytes(32, 0x33));
    attestation::InterpretationContext ctx;
    ctx.previous = &prev;
    const auto r = interp.interpret(now, ctx);
    EXPECT_EQ(r.status, HealthStatus::Compromised);
    EXPECT_NE(r.detail.find("truncated"), std::string::npos);
}

TEST(AuditLogInterpreterTest, RewriteAtConstantLengthCompromised)
{
    attestation::AuditLogIntegrityInterpreter interp;
    const auto prev = auditMeasurement(9, Bytes(32, 0x22));
    const auto now = auditMeasurement(9, Bytes(32, 0x99));
    attestation::InterpretationContext ctx;
    ctx.previous = &prev;
    const auto r = interp.interpret(now, ctx);
    EXPECT_EQ(r.status, HealthStatus::Compromised);
    EXPECT_NE(r.detail.find("rewritten"), std::string::npos);
}

TEST(AuditLogInterpreterTest, IdenticalRepeatHealthy)
{
    attestation::AuditLogIntegrityInterpreter interp;
    const auto prev = auditMeasurement(9, Bytes(32, 0x22));
    attestation::InterpretationContext ctx;
    ctx.previous = &prev;
    EXPECT_EQ(interp.interpret(prev, ctx).status,
              HealthStatus::Healthy);
}

TEST(AuditLogEndToEndTest, RollbackDetectedUnderPeriodicAttestation)
{
    Cloud cloud;
    Customer &alice = cloud.addCustomer("alice");
    auto launched = cloud.launchVm(
        alice, "vm", "cirros", "small",
        {SecurityProperty::AuditLogIntegrity});
    ASSERT_TRUE(launched.isOk()) << launched.errorMessage();
    const std::string vid = launched.take();
    server::CloudServer *host = cloud.serverHosting(vid);
    hypervisor::GuestOs &os = host->guestOs(vid);
    for (int i = 0; i < 20; ++i)
        os.appendAuditEvent("syslog entry " + std::to_string(i));

    const std::uint64_t req = alice.runtimeAttestPeriodic(
        vid, {SecurityProperty::AuditLogIntegrity}, seconds(10));

    // Two healthy rounds while the log grows.
    ASSERT_TRUE(cloud.runUntil(
        [&] { return alice.reportsFor(req).size() >= 2; }, seconds(60)));
    for (const auto *r : alice.reportsFor(req)) {
        EXPECT_EQ(r->report.results[0].status, HealthStatus::Healthy)
            << r->report.results[0].detail;
    }
    os.appendAuditEvent("normal growth");

    // Malware covers its tracks: truncates the audit log.
    os.truncateAuditLog(3);
    const std::size_t healthyReports = alice.reportsFor(req).size();
    ASSERT_TRUE(cloud.runUntil(
        [&] { return alice.reportsFor(req).size() > healthyReports; },
        seconds(60)));
    const auto *detection = alice.reportsFor(req).back();
    EXPECT_EQ(detection->report.results[0].status,
              HealthStatus::Compromised);
    EXPECT_NE(detection->report.results[0].detail.find("truncated"),
              std::string::npos);
}

TEST(AuditLogEndToEndTest, OneShotBaselineIsHealthy)
{
    Cloud cloud;
    Customer &alice = cloud.addCustomer("alice");
    auto launched = cloud.launchVm(
        alice, "vm", "cirros", "small",
        {SecurityProperty::AuditLogIntegrity});
    ASSERT_TRUE(launched.isOk());
    auto report = cloud.attestOnce(
        alice, launched.value(), {SecurityProperty::AuditLogIntegrity});
    ASSERT_TRUE(report.isOk());
    EXPECT_EQ(report.value().report.results[0].status,
              HealthStatus::Healthy);
    EXPECT_NE(report.value().report.results[0].detail.find("baseline"),
              std::string::npos);
}

} // namespace
} // namespace monatt::core
