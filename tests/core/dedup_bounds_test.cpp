/**
 * @file
 * Receive-side dedup caches must stay bounded: the controller's relay
 * cache, the Attestation Server's report cache and the pCA's
 * issued-certificate cache all evict FIFO at their configured
 * capacity, in deterministic insertion order — a long-running cloud
 * never grows them without bound, and which retransmissions can still
 * be answered idempotently is a pure function of the request history.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/cloud.h"

namespace monatt::core
{
namespace
{

TEST(DedupCacheBoundsTest, AllCachesEvictFifoAtConfiguredCapacity)
{
    constexpr std::size_t kCap = 4;
    CloudConfig cfg;
    cfg.numServers = 2;
    cfg.seed = 654321;
    cfg.computeThreads = 1;
    cfg.aikReuseLimit = 1; // Fresh pCA certification per round.
    cfg.dedupCacheCapacity = kCap;
    Cloud cloud(cfg);
    Customer &customer = cloud.addCustomer("alice");

    auto vid = cloud.launchVm(customer, "vm-0", "cirros", "small",
                              proto::allProperties());
    ASSERT_TRUE(vid.isOk()) << vid.errorMessage();
    const std::string v = vid.take();

    // Far more one-shot rounds than any cache can hold.
    for (int i = 0; i < 3 * static_cast<int>(kCap); ++i) {
        auto r = cloud.attestOnce(customer, v, proto::allProperties());
        ASSERT_TRUE(r.isOk()) << r.errorMessage();
    }

    // Controller relay cache: capped, FIFO, strictly increasing
    // customer request ids — i.e. exactly the most recent requests.
    const auto relayIds = cloud.controller().relayCacheRequestIds();
    EXPECT_EQ(cloud.controller().relayCacheSize(), kCap);
    ASSERT_EQ(relayIds.size(), kCap);
    EXPECT_TRUE(std::is_sorted(relayIds.begin(), relayIds.end()));
    EXPECT_LT(relayIds.front(), relayIds.back());

    // AS report cache: same bound and ordering over attest ids.
    const auto reportIds =
        cloud.attestationServer().reportCacheRequestIds();
    EXPECT_EQ(cloud.attestationServer().reportCacheSize(), kCap);
    ASSERT_EQ(reportIds.size(), kCap);
    EXPECT_TRUE(std::is_sorted(reportIds.begin(), reportIds.end()));

    // pCA issued-cert cache: capped, and with one fresh session per
    // round the retained labels are the most recent sessions.
    const auto labels = cloud.privacyCa().issuedCacheLabels();
    EXPECT_EQ(cloud.privacyCa().issuedCacheSize(), kCap);
    ASSERT_EQ(labels.size(), kCap);
    EXPECT_EQ(std::set<std::string>(labels.begin(), labels.end()).size(),
              kCap)
        << "evicted labels must not linger";
}

TEST(DedupCacheBoundsTest, EvictionOrderIsDeterministic)
{
    auto run = [] {
        CloudConfig cfg;
        cfg.numServers = 2;
        cfg.seed = 654321;
        cfg.computeThreads = 1;
        cfg.aikReuseLimit = 1;
        cfg.dedupCacheCapacity = 3;
        Cloud cloud(cfg);
        Customer &customer = cloud.addCustomer("alice");
        auto vid = cloud.launchVm(customer, "vm-0", "cirros", "small",
                                  proto::allProperties());
        EXPECT_TRUE(vid.isOk());
        const std::string v = vid.take();
        for (int i = 0; i < 9; ++i) {
            auto r =
                cloud.attestOnce(customer, v, proto::allProperties());
            EXPECT_TRUE(r.isOk()) << r.errorMessage();
        }
        return std::tuple{cloud.controller().relayCacheRequestIds(),
                          cloud.attestationServer()
                              .reportCacheRequestIds(),
                          cloud.privacyCa().issuedCacheLabels()};
    };
    EXPECT_EQ(run(), run());
}

} // namespace
} // namespace monatt::core
