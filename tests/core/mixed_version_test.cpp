/**
 * @file
 * Mixed-version wire conformance, end to end: fleets where nodes emit
 * different wire formats (legacy fixed-width vs tagged) must agree on
 * every attestation verdict, because frames self-describe and quote
 * preimages are defined over the legacy bytes regardless of transport
 * encoding. Covers both directions (old controller + new AS, new
 * controller + old AS), a simulated rolling upgrade that flips a node
 * mid-attestation, tagged-journal crash recovery, and compute-plane
 * determinism of the all-tagged fleet.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/cloud.h"
#include "crypto/sha256.h"

namespace monatt::core
{
namespace
{

const proto::WireContext kTagged{proto::WireFormat::Tagged,
                                 proto::kWireVersionLatest};
const proto::WireContext kTaggedV1{proto::WireFormat::Tagged,
                                   proto::kWireV1};
const proto::WireContext kLegacy{};

CloudConfig
baseConfig()
{
    CloudConfig cfg;
    cfg.numServers = 2;
    cfg.seed = 20260808;
    return cfg;
}

/** Launch one VM and return its vid (asserts success). */
std::string
launchOne(Cloud &cloud, Customer &customer, const std::string &name)
{
    auto vid = cloud.launchVm(customer, name, "cirros", "small",
                              proto::allProperties());
    EXPECT_TRUE(vid.isOk()) << vid.errorMessage();
    return vid.isOk() ? vid.take() : std::string{};
}

/** One full attestation; returns the verified report's legacy bytes. */
Bytes
attestBytes(Cloud &cloud, Customer &customer, const std::string &vid)
{
    auto rep = cloud.attestOnce(customer, vid, proto::allProperties());
    EXPECT_TRUE(rep.isOk()) << rep.errorMessage();
    if (!rep.isOk())
        return {};
    return rep.value().report.encode();
}

TEST(MixedVersionTest, AllTaggedFleetReachesSameVerdicts)
{
    // Baseline legacy fleet vs an all-tagged fleet: identical
    // verdicts and identical report payloads (the report content is
    // simulation-time dependent, so timings must agree too — wire
    // sizes differ, which shifts transfer delays, so we compare the
    // health verdicts and vid assignment, not raw timestamps).
    CloudConfig legacyCfg = baseConfig();
    Cloud legacyCloud(legacyCfg);
    Customer &lc = legacyCloud.addCustomer("alice");
    const std::string lvid = launchOne(legacyCloud, lc, "vm-a");

    CloudConfig taggedCfg = baseConfig();
    taggedCfg.wire = kTagged;
    Cloud taggedCloud(taggedCfg);
    Customer &tc = taggedCloud.addCustomer("alice");
    const std::string tvid = launchOne(taggedCloud, tc, "vm-a");

    EXPECT_EQ(lvid, tvid); // placement must not depend on the codec

    const Bytes lrep = attestBytes(legacyCloud, lc, lvid);
    const Bytes trep = attestBytes(taggedCloud, tc, tvid);
    ASSERT_FALSE(lrep.empty());
    ASSERT_FALSE(trep.empty());

    // Same vid, same per-property verdicts.
    auto l = proto::AttestationReport::decode(lrep);
    auto t = proto::AttestationReport::decode(trep);
    ASSERT_TRUE(l.isOk());
    ASSERT_TRUE(t.isOk());
    EXPECT_EQ(l.value().vid, t.value().vid);
    ASSERT_EQ(l.value().results.size(), t.value().results.size());
    for (std::size_t i = 0; i < l.value().results.size(); ++i) {
        EXPECT_EQ(l.value().results[i].property,
                  t.value().results[i].property);
        EXPECT_EQ(l.value().results[i].status,
                  t.value().results[i].status);
    }
}

TEST(MixedVersionTest, OldControllerTalksToNewAttestationServer)
{
    // Direction 1: legacy (old-schema) controller shard, tagged
    // (new-schema) AS + servers. Every hop self-describes, so the
    // attestation chain completes and verifies end to end.
    Cloud cloud(baseConfig());
    Customer &customer = cloud.addCustomer("alice");
    const std::string vid = launchOne(cloud, customer, "vm-b");

    ASSERT_TRUE(cloud.setNodeWireContext(
        cloud.attestationServer().id(), kTagged));
    for (std::size_t i = 0; i < cloud.numServers(); ++i)
        ASSERT_TRUE(
            cloud.setNodeWireContext(cloud.server(i).id(), kTagged));

    EXPECT_FALSE(attestBytes(cloud, customer, vid).empty());
    EXPECT_EQ(customer.stats().reportsRejected, 0u);
}

TEST(MixedVersionTest, NewControllerTalksToOldAttestationServer)
{
    // Direction 2: tagged controller + customer, legacy AS + servers.
    CloudConfig cfg = baseConfig();
    cfg.wire = kTagged;
    Cloud cloud(cfg);
    Customer &customer = cloud.addCustomer("alice");
    ASSERT_TRUE(cloud.setNodeWireContext(
        cloud.attestationServer().id(), kLegacy));
    for (std::size_t i = 0; i < cloud.numServers(); ++i)
        ASSERT_TRUE(
            cloud.setNodeWireContext(cloud.server(i).id(), kLegacy));
    ASSERT_TRUE(cloud.setNodeWireContext("privacy-ca", kLegacy));

    const std::string vid = launchOne(cloud, customer, "vm-c");
    EXPECT_FALSE(attestBytes(cloud, customer, vid).empty());
    EXPECT_EQ(customer.stats().reportsRejected, 0u);
}

TEST(MixedVersionTest, RollingUpgradeMidAttestation)
{
    // Simulated rolling upgrade: an old-schema (legacy) controller
    // shard is mid-attestation — the AttestForward is already in
    // flight — when the AS and servers flip to the new schema. The
    // in-flight exchange must still settle: the AS decodes the legacy
    // forward (frames self-describe), answers in tagged, and the
    // controller decodes that reply by its frame marker. Then the
    // controller itself upgrades and a second attestation completes
    // all-tagged.
    Cloud cloud(baseConfig());
    Customer &customer = cloud.addCustomer("alice");
    const std::string vid = launchOne(cloud, customer, "vm-d");

    const std::uint64_t requestId =
        customer.runtimeAttestCurrent(vid, proto::allProperties());
    // Let the request reach the controller and the forward leave for
    // the AS, but flip codecs before the report comes back.
    cloud.runFor(msec(50));
    ASSERT_TRUE(cloud.setNodeWireContext(
        cloud.attestationServer().id(), kTagged));
    for (std::size_t i = 0; i < cloud.numServers(); ++i)
        ASSERT_TRUE(
            cloud.setNodeWireContext(cloud.server(i).id(), kTagged));
    ASSERT_TRUE(cloud.setNodeWireContext("privacy-ca", kTagged));

    const bool settled = cloud.runUntil(
        [&] {
            return customer.outcomeFor(requestId).state !=
                   AttestationOutcome::Pending;
        },
        seconds(120));
    ASSERT_TRUE(settled);
    const AttestationOutcome state = customer.outcomeFor(requestId).state;
    EXPECT_TRUE(state == AttestationOutcome::Verified ||
                state == AttestationOutcome::Degraded)
        << "report must verify end to end across the codec flip, got "
        << static_cast<int>(state) << " ("
        << customer.outcomeFor(requestId).reason << ")";

    // Finish the upgrade (controller shard + customer) and attest
    // again: the whole chain now runs tagged.
    ASSERT_TRUE(
        cloud.setNodeWireContext(cloud.controller().id(), kTagged));
    customer.setWireContext(kTagged);
    EXPECT_FALSE(attestBytes(cloud, customer, vid).empty());
    EXPECT_EQ(customer.stats().reportsRejected, 0u);
}

TEST(MixedVersionTest, V1PeerInteroperatesWithV2Fleet)
{
    // Schema-version skew on top of format skew: a v1 tagged AS
    // (never emits senderBuild) inside a v2 tagged fleet.
    CloudConfig cfg = baseConfig();
    cfg.wire = kTagged;
    Cloud cloud(cfg);
    Customer &customer = cloud.addCustomer("alice");
    ASSERT_TRUE(cloud.setNodeWireContext(
        cloud.attestationServer().id(), kTaggedV1));

    const std::string vid = launchOne(cloud, customer, "vm-e");
    EXPECT_FALSE(attestBytes(cloud, customer, vid).empty());
    EXPECT_EQ(customer.stats().reportsRejected, 0u);
}

TEST(MixedVersionTest, V2PeerInteroperatesWithTcbPolicy)
{
    // Schema skew across the TCB axis: a v2 tagged server (pre-TCB
    // schema, never emits the field-9 mirror) inside a v3 fleet whose
    // AS runs the minimum-TCB floor. The TcbVersion *measurement*
    // travels inside the measurement set — plain data, not a schema
    // field — so the floor still sees the honest version and passes.
    const proto::WireContext kTaggedV2{proto::WireFormat::Tagged,
                                       proto::kWireV2};
    CloudConfig cfg = baseConfig();
    cfg.wire = kTagged;
    cfg.minimumTcbVersion = 2;
    Cloud cloud(cfg);
    Customer &customer = cloud.addCustomer("alice");
    const std::string vid = launchOne(cloud, customer, "vm-g");
    ASSERT_TRUE(cloud.setNodeWireContext(
        cloud.serverHosting(vid)->id(), kTaggedV2));

    auto rep = cloud.attestOnce(
        customer, vid, {proto::SecurityProperty::RuntimeIntegrity});
    ASSERT_TRUE(rep.isOk()) << rep.errorMessage();
    EXPECT_TRUE(rep.value().report.allHealthy())
        << "v2 peer must still satisfy the v3 minimum-TCB floor";
    EXPECT_EQ(customer.stats().reportsRejected, 0u);
}

TEST(MixedVersionTest, RollbackVerdictsAgreeAcrossCodecs)
{
    // Codec parity for the rollback axis: the same seeded downgrade
    // attack against a legacy fleet and an all-tagged v3 fleet must
    // produce identical per-property TcbRollback verdicts — the
    // attack and its detection live above the transport encoding.
    auto verdictsFor = [](const proto::WireContext &wire) {
        CloudConfig cfg = baseConfig();
        cfg.wire = wire;
        cfg.minimumTcbVersion = 2;
        Cloud cloud(cfg);
        Customer &customer = cloud.addCustomer("alice");
        const std::string vid = launchOne(cloud, customer, "vm-h");
        sim::FaultPlanConfig plan;
        plan.seed = 0x7CB7;
        plan.rollback.rollbackProbability = 1.0;
        plan.rollback.rollbackVersion = 1;
        plan.activeFrom = cloud.events().now();
        cloud.installFaultPlan(plan);
        auto rep = cloud.attestOnce(
            customer, vid,
            {proto::SecurityProperty::StartupIntegrity,
             proto::SecurityProperty::RuntimeIntegrity});
        EXPECT_TRUE(rep.isOk()) << rep.errorMessage();
        std::vector<std::pair<proto::SecurityProperty,
                              proto::HealthStatus>> verdicts;
        if (rep.isOk()) {
            for (const proto::PropertyResult &pr :
                 rep.value().report.results)
                verdicts.emplace_back(pr.property, pr.status);
        }
        return verdicts;
    };

    const auto legacy = verdictsFor(kLegacy);
    const auto tagged = verdictsFor(kTagged);
    ASSERT_FALSE(legacy.empty());
    EXPECT_EQ(legacy, tagged);
    for (const auto &[property, status] : legacy)
        EXPECT_EQ(status, proto::HealthStatus::TcbRollback)
            << proto::propertyName(property);
}

TEST(MixedVersionTest, TaggedJournalSurvivesCrashRecovery)
{
    // A tagged-format controller journals tagged payloads (record
    // type carries kTaggedJournalBit). After a crash + replay it must
    // still know the VM and answer attestations — and the journal
    // replay must work even though recovery runs before any frame
    // arrives to hint at the format.
    CloudConfig cfg = baseConfig();
    cfg.wire = kTagged;
    Cloud cloud(cfg);
    Customer &customer = cloud.addCustomer("alice");
    const std::string vid = launchOne(cloud, customer, "vm-f");
    EXPECT_FALSE(attestBytes(cloud, customer, vid).empty());

    ASSERT_TRUE(cloud.crashNode(cloud.controller().id()));
    cloud.runFor(seconds(1));
    ASSERT_TRUE(cloud.restartNode(cloud.controller().id()));
    cloud.runFor(seconds(1));

    // Same channel semantics as legacy recovery (see recovery_test):
    // the first post-outage request rides the pre-crash secure channel
    // the controller no longer holds, fails, and resets the channel.
    auto stale = cloud.attestOnce(customer, vid, proto::allProperties(),
                                  seconds(300));
    EXPECT_FALSE(stale.isOk());

    // The retry handshakes fresh and must verify end to end — proof
    // the tagged journal replayed the VM record and counters.
    auto retried = cloud.attestOnce(customer, vid,
                                    proto::allProperties(), seconds(300));
    EXPECT_TRUE(retried.isOk()) << retried.errorMessage();
    EXPECT_EQ(customer.stats().reportsRejected, 0u);
}

TEST(MixedVersionTest, TaggedFleetIsDeterministicAcrossPoolWidths)
{
    // The tagged codec sits on the simulated wire, so its byte sizes
    // feed transfer-time arithmetic: the all-tagged fleet must be as
    // bit-deterministic across worker-pool widths as the legacy one.
    auto digestFor = [](std::size_t threads) {
        CloudConfig cfg = baseConfig();
        cfg.wire = kTagged;
        cfg.computeThreads = threads;
        cfg.cryptoBatchWindow = usec(200);
        Cloud cloud(cfg);
        Customer &customer = cloud.addCustomer("alice");
        std::vector<std::string> vids;
        for (int i = 0; i < 2; ++i)
            vids.push_back(launchOne(cloud, customer,
                                     "vm-" + std::to_string(i)));
        for (auto &r :
             cloud.attestMany(customer, vids, proto::allProperties()))
            EXPECT_TRUE(r.isOk()) << r.errorMessage();
        crypto::Sha256 digest;
        for (const VerifiedReport &r : customer.reports())
            digest.update(r.report.encode());
        return std::pair<std::string, std::size_t>{
            toHex(digest.digest()), cloud.events().executed()};
    };

    const auto serial = digestFor(1);
    const auto wide = digestFor(8);
    EXPECT_EQ(serial.first, wide.first);
    EXPECT_EQ(serial.second, wide.second);
}

} // namespace
} // namespace monatt::core
