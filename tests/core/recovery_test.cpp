/**
 * @file
 * Durable control-plane recovery: scripted crash/restart of the
 * controller and pCA against the write-ahead journal, plus the
 * clean-wire A/B — a fault-free run with durability enabled must be
 * byte-identical to one with it disabled, because journal appends
 * cost zero simulated time and recovery code only runs after a crash.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/cloud.h"
#include "crypto/sha256.h"

namespace monatt::core
{
namespace
{

struct CleanTrace
{
    std::string digest;
    std::size_t reportCount = 0;
    std::size_t eventsExecuted = 0;
    SimTime endTime = 0;
};

CleanTrace
runCleanScenario(bool durable)
{
    CloudConfig cfg;
    cfg.numServers = 3;
    cfg.seed = 555777;
    cfg.computeThreads = 1;
    cfg.durableControlPlane = durable;
    Cloud cloud(cfg);
    Customer &customer = cloud.addCustomer("alice");

    std::vector<std::string> vids;
    for (int i = 0; i < 3; ++i) {
        auto vid = cloud.launchVm(customer, "vm-" + std::to_string(i),
                                  "cirros", "small",
                                  proto::allProperties());
        EXPECT_TRUE(vid.isOk()) << vid.errorMessage();
        if (vid.isOk())
            vids.push_back(vid.take());
    }
    for (auto &r :
         cloud.attestMany(customer, vids, proto::allProperties()))
        EXPECT_TRUE(r.isOk()) << r.errorMessage();
    cloud.runFor(seconds(1));

    crypto::Sha256 digest;
    for (const VerifiedReport &r : customer.reports())
        digest.update(r.report.encode());
    CleanTrace trace;
    trace.digest = toHex(digest.digest());
    trace.reportCount = customer.reports().size();
    trace.eventsExecuted = cloud.events().executed();
    trace.endTime = cloud.events().now();
    return trace;
}

TEST(RecoveryTest, CleanWireByteIdenticalWithDurabilityOnOrOff)
{
    const CleanTrace durable = runCleanScenario(true);
    const CleanTrace volatileOnly = runCleanScenario(false);
    ASSERT_GT(durable.reportCount, 0u);
    EXPECT_EQ(durable.digest, volatileOnly.digest)
        << "journaling must not perturb fault-free behavior";
    EXPECT_EQ(durable.reportCount, volatileOnly.reportCount);
    EXPECT_EQ(durable.eventsExecuted, volatileOnly.eventsExecuted);
    EXPECT_EQ(durable.endTime, volatileOnly.endTime);
}

TEST(RecoveryTest, ControllerRestartPreservesDatabase)
{
    CloudConfig cfg;
    cfg.numServers = 3;
    cfg.seed = 20260806;
    cfg.computeThreads = 1;
    Cloud cloud(cfg);
    Customer &customer = cloud.addCustomer("alice");

    std::vector<std::string> vids;
    for (int i = 0; i < 2; ++i) {
        auto vid = cloud.launchVm(customer, "vm-" + std::to_string(i),
                                  "cirros", "small",
                                  proto::allProperties());
        ASSERT_TRUE(vid.isOk()) << vid.errorMessage();
        vids.push_back(vid.take());
    }
    const auto &db = cloud.controller().database();
    std::uint64_t allocatedBefore = 0;
    for (const std::string &id : db.serverIds())
        allocatedBefore += db.server(id)->allocatedRamMb;

    cloud.crashNode("cloud-controller");
    cloud.runFor(seconds(1));
    cloud.restartNode("cloud-controller");

    EXPECT_EQ(cloud.controller().stats().recoveries, 1u);
    for (const std::string &vid : vids) {
        const controller::VmRecord *rec = db.vm(vid);
        ASSERT_NE(rec, nullptr)
            << "journaled VmRecord lost across restart: " << vid;
        EXPECT_EQ(rec->status, controller::VmStatus::Running) << vid;
        EXPECT_FALSE(rec->serverId.empty()) << vid;
    }
    std::uint64_t allocatedAfter = 0;
    for (const std::string &id : db.serverIds())
        allocatedAfter += db.server(id)->allocatedRamMb;
    EXPECT_EQ(allocatedBefore, allocatedAfter)
        << "placement accounting must replay exactly";

    // The customer's first request after the outage still rides the
    // pre-crash channel the controller no longer holds; it burns its
    // retry budget, turns terminally Unreachable and resets the
    // channel. The next request handshakes fresh and succeeds — the
    // recovered controller serves attestations normally.
    auto first = cloud.attestOnce(customer, vids[0],
                                  proto::allProperties(), seconds(300));
    EXPECT_FALSE(first.isOk());
    auto second = cloud.attestOnce(customer, vids[0],
                                   proto::allProperties(), seconds(300));
    EXPECT_TRUE(second.isOk()) << second.errorMessage();
}

TEST(RecoveryTest, PrivacyCaRestartKeepsSerialsMonotone)
{
    CloudConfig cfg;
    cfg.numServers = 2;
    cfg.seed = 777333;
    cfg.computeThreads = 1;
    cfg.aikReuseLimit = 1; // Fresh AVK session (and cert) per round.
    Cloud cloud(cfg);
    Customer &customer = cloud.addCustomer("alice");

    auto vid = cloud.launchVm(customer, "vm-0", "cirros", "small",
                              proto::allProperties());
    ASSERT_TRUE(vid.isOk()) << vid.errorMessage();
    const std::string v = vid.take();
    for (int i = 0; i < 2; ++i) {
        auto r = cloud.attestOnce(customer, v, proto::allProperties());
        ASSERT_TRUE(r.isOk()) << r.errorMessage();
    }
    const std::uint64_t issuedBefore = cloud.privacyCa().issued();
    ASSERT_GT(issuedBefore, 0u);

    cloud.crashNode("privacy-ca");
    cloud.runFor(seconds(1));
    cloud.restartNode("privacy-ca");

    EXPECT_EQ(cloud.privacyCa().issued(), issuedBefore)
        << "the serial counter must replay from the journal, never "
           "restart from zero";

    // The next attestation needs a fresh certificate. The server's
    // first cert request rides its stale channel; only once the cert
    // retry budget is exhausted (well after the AS has already given
    // up on the measurement) does the server reset the channel, so
    // drain simulated time between rounds until a post-crash serial
    // appears. It must within a few rounds — and strictly above the
    // pre-crash ones.
    bool minted = false;
    for (int round = 0; round < 4 && !minted; ++round) {
        (void)cloud.attestOnce(customer, v, proto::allProperties(),
                               seconds(300));
        cloud.runFor(seconds(60)); // Let cert retries exhaust + reset.
        minted = cloud.privacyCa().issued() > issuedBefore;
    }
    EXPECT_TRUE(minted)
        << "restarted pCA never certified a fresh session";
    auto after = cloud.attestOnce(customer, v, proto::allProperties(),
                                  seconds(300));
    ASSERT_TRUE(after.isOk()) << after.errorMessage();
    EXPECT_GT(cloud.privacyCa().issued(), issuedBefore);
}

} // namespace
} // namespace monatt::core
