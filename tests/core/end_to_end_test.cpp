/**
 * @file
 * End-to-end tests of the full CloudMonatt deployment: VM launch with
 * startup attestation, the four Table-1 APIs, property monitoring of
 * all four case studies including live attacks, and the §5 responses.
 */

#include <gtest/gtest.h>

#include "core/cloud.h"
#include "server/catalog.h"
#include "workloads/attacks.h"
#include "workloads/programs.h"

namespace monatt::core
{
namespace
{

using proto::HealthStatus;
using proto::SecurityProperty;

std::vector<SecurityProperty>
allProps()
{
    return proto::allProperties();
}

TEST(CloudLaunchTest, LaunchSucceedsWithStartupAttestation)
{
    Cloud cloud;
    Customer &customer = cloud.addCustomer("alice");
    auto vid = cloud.launchVm(customer, "web-vm", "cirros", "small",
                              allProps());
    ASSERT_TRUE(vid.isOk()) << vid.errorMessage();

    // The VM is recorded, running, and hosted on a real server.
    const auto *rec = cloud.controller().database().vm(vid.value());
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->status, controller::VmStatus::Running);
    server::CloudServer *host = cloud.serverHosting(vid.value());
    ASSERT_NE(host, nullptr);
    EXPECT_EQ(host->id(), rec->serverId);

    // Launch went through all five stages (Figure 9).
    const auto &stages = rec->launchTimer.stages();
    ASSERT_EQ(stages.size(), 5u);
    EXPECT_EQ(stages[0].name, "scheduling");
    EXPECT_EQ(stages[1].name, "networking");
    EXPECT_EQ(stages[2].name, "mapping");
    EXPECT_EQ(stages[3].name, "spawning");
    EXPECT_EQ(stages[4].name, "attestation");
    for (const auto &stage : stages)
        EXPECT_GT(stage.duration(), 0) << stage.name;
}

TEST(CloudLaunchTest, TamperedImageIsRejected)
{
    Cloud cloud;
    Customer &customer = cloud.addCustomer("alice");
    // §4.2.1: "the VM image could have been compromised, with malware
    // inserted."
    Bytes tampered = server::image("cirros").content;
    tampered.push_back(0xEE);
    auto vid = cloud.launchVmWithImage(customer, "evil-vm", "cirros",
                                       "small", allProps(), tampered,
                                       25);
    ASSERT_FALSE(vid.isOk());
    EXPECT_NE(vid.errorMessage().find("image"), std::string::npos);
    EXPECT_EQ(cloud.controller().stats().launchesRejected, 1u);
    // The rogue VM was torn down everywhere.
    cloud.runFor(seconds(5));
    EXPECT_EQ(cloud.server(0).vmCount() + cloud.server(1).vmCount(), 0u);
}

TEST(CloudLaunchTest, CompromisedPlatformTriggersReschedule)
{
    CloudConfig cfg;
    cfg.numServers = 2;
    Cloud cloud(cfg);
    // server-2 has more free RAM? Both equal; scheduler picks
    // deterministically (tie-break by id => server-1). Corrupt
    // server-1's platform before boot measurements... boot already
    // happened in the constructor, so corrupt its measured PCRs by
    // re-extending: simplest honest attack here is a *reference*
    // mismatch: corrupt the hypervisor code and re-measure.
    cloud.server(0).hypervisor().corruptHypervisorCode();
    cloud.server(0).trustModule().tpmDevice().reset();
    hypervisor::IntegrityMeasurementUnit imu(
        cloud.server(0).trustModule().tpmDevice());
    imu.measureBoot(cloud.server(0).hypervisor().hypervisorCode(),
                    cloud.server(0).hypervisor().hostOsCode());

    Customer &customer = cloud.addCustomer("alice");
    auto vid = cloud.launchVm(customer, "picky-vm", "cirros", "small",
                              allProps());
    ASSERT_TRUE(vid.isOk()) << vid.errorMessage();
    // §5.1: "If the platform's integrity is compromised, CloudMonatt
    // will select another qualified server for hosting this VM."
    EXPECT_GE(cloud.controller().stats().launchesRescheduled, 1u);
    const auto *rec = cloud.controller().database().vm(vid.value());
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->serverId, "server-2");
}

struct RuntimeFixture
{
    Cloud cloud;
    Customer &customer;
    std::string vid;

    RuntimeFixture() : customer(cloud.addCustomer("alice"))
    {
        auto launched = cloud.launchVm(customer, "app-vm", "fedora",
                                       "medium", allProps());
        if (!launched.isOk())
            throw std::runtime_error(launched.errorMessage());
        vid = launched.take();
    }

    server::CloudServer &
    host()
    {
        return *cloud.serverHosting(vid);
    }
};

TEST(CloudRuntimeTest, RuntimeIntegrityHealthyByDefault)
{
    RuntimeFixture f;
    auto report = f.cloud.attestOnce(
        f.customer, f.vid, {SecurityProperty::RuntimeIntegrity});
    ASSERT_TRUE(report.isOk()) << report.errorMessage();
    const auto *pr = report.value().report.find(
        SecurityProperty::RuntimeIntegrity);
    ASSERT_NE(pr, nullptr);
    EXPECT_EQ(pr->status, HealthStatus::Healthy) << pr->detail;
}

TEST(CloudRuntimeTest, HiddenMalwareDetectedByVmi)
{
    RuntimeFixture f;
    // §4.3.1: malware gets root and hides itself from the guest OS.
    f.host().guestOs(f.vid).injectHiddenMalware("rootkit-svc");

    auto report = f.cloud.attestOnce(
        f.customer, f.vid, {SecurityProperty::RuntimeIntegrity});
    ASSERT_TRUE(report.isOk()) << report.errorMessage();
    const auto *pr = report.value().report.find(
        SecurityProperty::RuntimeIntegrity);
    ASSERT_NE(pr, nullptr);
    EXPECT_EQ(pr->status, HealthStatus::Compromised);
    EXPECT_NE(pr->detail.find("rootkit-svc"), std::string::npos);
}

TEST(CloudRuntimeTest, StartupAttestationOnDemand)
{
    RuntimeFixture f;
    const std::uint64_t id = f.customer.startupAttestCurrent(
        f.vid, {SecurityProperty::StartupIntegrity});
    ASSERT_TRUE(f.cloud.runUntil(
        [&] { return !f.customer.reportsFor(id).empty(); },
        seconds(60)));
    const auto *pr = f.customer.reportsFor(id).front()->report.find(
        SecurityProperty::StartupIntegrity);
    ASSERT_NE(pr, nullptr);
    EXPECT_EQ(pr->status, HealthStatus::Healthy) << pr->detail;
}

TEST(CloudRuntimeTest, CovertChannelDetectedThroughFullProtocol)
{
    RuntimeFixture f;
    server::CloudServer &host = f.host();
    auto &hv = host.hypervisor();
    const auto victimDomain = host.domainOf(f.vid);
    // Pin a receiver-style spinner inside the victim VM so the sender
    // pattern shows up as interval structure on the shared pCPU.
    const int pcpu = 0;
    (void)pcpu;
    hv.setBehavior(victimDomain, 0,
                   std::make_unique<workloads::SpinnerProgram>());

    // Co-resident attacker VM runs the covert-channel sender on the
    // same pCPU as the victim's vCPU 0.
    const auto senderDomain = hv.createDomain(
        "covert-sender", 2,
        /*pcpu=*/0, toBytes("attacker-image"), 1024);
    auto message = std::make_shared<workloads::CovertMessage>();
    Rng bitRng(7);
    for (int i = 0; i < 4096; ++i)
        message->bits.push_back(bitRng.nextBool());
    workloads::installCovertSender(
        hv, senderDomain, message,
        workloads::CovertChannelParams::detectPreset());

    // Note: the monitored VM here is the *sender* (the paper monitors
    // the VM exhibiting covert-channel activity). Register it as a
    // hosted VM view through the hypervisor: the customer attests its
    // own VM, but the measured usage intervals of the sender leak into
    // the victim's domain pattern. For the direct check, attest the
    // victim with the availability property and the sender via the
    // covert property using the host-side monitor.
    // Simplest faithful check: the host measures the sender domain.
    host.monitorModule().beginWindow(senderDomain,
                                     f.cloud.events().now());
    f.cloud.runFor(seconds(8));
    auto m = host.monitorModule().finishWindow(
        proto::MeasurementType::UsageIntervalHistogram, senderDomain,
        f.cloud.events().now());
    ASSERT_TRUE(m.isOk()) << m.errorMessage();

    attestation::CovertChannelInterpreter detector;
    std::string why;
    EXPECT_TRUE(detector.looksCovert(m.value().values, &why)) << why;
}

TEST(CloudRuntimeTest, CpuAvailabilityCompromisedUnderAttack)
{
    RuntimeFixture f;
    server::CloudServer &host = f.host();
    auto &hv = host.hypervisor();
    const auto victimDomain = host.domainOf(f.vid);
    hv.setBehavior(victimDomain, 0,
                   std::make_unique<workloads::SpinnerProgram>());

    // Healthy first: full CPU to itself.
    auto healthy = f.cloud.attestOnce(
        f.customer, f.vid, {SecurityProperty::CpuAvailability});
    ASSERT_TRUE(healthy.isOk()) << healthy.errorMessage();
    EXPECT_EQ(healthy.value().report.results[0].status,
              HealthStatus::Healthy)
        << healthy.value().report.results[0].detail;

    // Launch the availability attacker next to the victim's pCPU 0.
    const auto attacker = hv.createDomain("rfa-attacker", 2, /*pcpu=*/0,
                                          toBytes("attacker-image"));
    workloads::installAvailabilityAttack(hv, attacker);
    f.cloud.runFor(seconds(2)); // Let the attack reach steady state.

    auto report = f.cloud.attestOnce(
        f.customer, f.vid, {SecurityProperty::CpuAvailability});
    ASSERT_TRUE(report.isOk()) << report.errorMessage();
    const auto &pr = report.value().report.results[0];
    EXPECT_EQ(pr.status, HealthStatus::Compromised) << pr.detail;
}

TEST(CloudRuntimeTest, PeriodicAttestationDeliversAndStops)
{
    RuntimeFixture f;
    const std::uint64_t id = f.customer.runtimeAttestPeriodic(
        f.vid, {SecurityProperty::RuntimeIntegrity}, seconds(10));
    f.cloud.runFor(seconds(55));
    const auto received = f.customer.reportsFor(id).size();
    EXPECT_GE(received, 4u);
    EXPECT_LE(received, 7u);
    EXPECT_EQ(f.cloud.attestationServer().activePeriodicTasks(), 1u);

    f.customer.stopAttestPeriodic(f.vid,
                                  {SecurityProperty::RuntimeIntegrity});
    f.cloud.runFor(seconds(15));
    EXPECT_EQ(f.cloud.attestationServer().activePeriodicTasks(), 0u);
    const auto afterStop = f.customer.reportsFor(id).size();
    f.cloud.runFor(seconds(30));
    EXPECT_EQ(f.customer.reportsFor(id).size(), afterStop);
}

TEST(CloudResponseTest, TerminationOnCompromise)
{
    RuntimeFixture f;
    f.cloud.controller().setResponsePolicy(
        f.vid, controller::ResponsePolicy::Terminate);
    f.host().guestOs(f.vid).injectHiddenMalware("rootkit");

    auto report = f.cloud.attestOnce(
        f.customer, f.vid, {SecurityProperty::RuntimeIntegrity});
    ASSERT_TRUE(report.isOk());
    EXPECT_EQ(report.value().report.results[0].status,
              HealthStatus::Compromised);

    ASSERT_TRUE(f.cloud.runUntil(
        [&] {
            const auto &log = f.cloud.controller().responseLog();
            return !log.empty() && log.front().completed;
        },
        seconds(60)));
    const auto &rec = f.cloud.controller().responseLog().front();
    EXPECT_EQ(rec.action, controller::ResponsePolicy::Terminate);
    EXPECT_TRUE(rec.succeeded);
    EXPECT_EQ(f.cloud.controller().database().vm(f.vid)->status,
              controller::VmStatus::Terminated);
    EXPECT_EQ(f.cloud.serverHosting(f.vid), nullptr);
}

TEST(CloudResponseTest, SuspensionOnCompromise)
{
    RuntimeFixture f;
    f.cloud.controller().setResponsePolicy(
        f.vid, controller::ResponsePolicy::Suspend);
    f.host().guestOs(f.vid).injectHiddenMalware("rootkit");

    auto report = f.cloud.attestOnce(
        f.customer, f.vid, {SecurityProperty::RuntimeIntegrity});
    ASSERT_TRUE(report.isOk());
    ASSERT_TRUE(f.cloud.runUntil(
        [&] {
            const auto &log = f.cloud.controller().responseLog();
            return !log.empty() && log.front().completed;
        },
        seconds(60)));
    EXPECT_EQ(f.cloud.controller().database().vm(f.vid)->status,
              controller::VmStatus::Suspended);
    // The domain exists but is paused.
    server::CloudServer *host = f.cloud.serverHosting(f.vid);
    ASSERT_NE(host, nullptr);
    EXPECT_FALSE(
        host->hypervisor().domain(host->domainOf(f.vid)).running);
}

TEST(CloudResponseTest, MigrationOnCompromise)
{
    RuntimeFixture f;
    const std::string sourceId = f.host().id();
    f.cloud.controller().setResponsePolicy(
        f.vid, controller::ResponsePolicy::Migrate);
    f.host().guestOs(f.vid).injectHiddenMalware("rootkit");

    auto report = f.cloud.attestOnce(
        f.customer, f.vid, {SecurityProperty::RuntimeIntegrity});
    ASSERT_TRUE(report.isOk());
    ASSERT_TRUE(f.cloud.runUntil(
        [&] {
            const auto &log = f.cloud.controller().responseLog();
            return !log.empty() && log.front().completed;
        },
        seconds(120)));
    const auto &rec = f.cloud.controller().responseLog().front();
    EXPECT_TRUE(rec.succeeded) << rec.detail;
    server::CloudServer *newHost = f.cloud.serverHosting(f.vid);
    ASSERT_NE(newHost, nullptr);
    EXPECT_NE(newHost->id(), sourceId);
    EXPECT_EQ(f.cloud.controller().database().vm(f.vid)->serverId,
              newHost->id());
    EXPECT_EQ(f.cloud.controller().database().vm(f.vid)->status,
              controller::VmStatus::Running);
    // The guest's process state survived (§5.3 + carried tasks).
    EXPECT_FALSE(newHost->guestOs(f.vid).memoryTruthTasks().empty());
}

} // namespace
} // namespace monatt::core
