/**
 * @file
 * Full-stack security tests against the active Dolev-Yao network
 * attacker of §3.3: "The adversary is able to eavesdrop as well as
 * falsify the attestation messages, trying to make the customer
 * receive a forged attestation report without detecting anything
 * suspicious."
 *
 * Every test installs an attacker on the real simulated wire under a
 * live attestation and asserts the end-to-end guarantee: the customer
 * either receives a correctly verified report or nothing — never a
 * forged one.
 */

#include <gtest/gtest.h>

#include "core/cloud.h"

namespace monatt::core
{
namespace
{

using net::Envelope;
using proto::HealthStatus;
using proto::SecurityProperty;

struct SecurityFixture
{
    Cloud cloud;
    Customer &customer;
    std::string vid;

    SecurityFixture() : customer(cloud.addCustomer("alice"))
    {
        auto launched = cloud.launchVm(customer, "vm", "cirros", "small",
                                       proto::allProperties());
        if (!launched.isOk())
            throw std::runtime_error(launched.errorMessage());
        vid = launched.take();
    }
};

TEST(SecurityTest, PassiveEavesdropperLearnsNoPayloads)
{
    SecurityFixture f;
    std::vector<Bytes> wiretap;
    f.cloud.network().setAdversary([&](const Envelope &env) {
        wiretap.push_back(env.payload);
        return env;
    });

    // Inject a recognizable marker: the guest task list will contain
    // this process name, which travels inside M and R.
    f.cloud.serverHosting(f.vid)->guestOs(f.vid).startProcess(
        "super-secret-service-xyzzy");
    auto report = f.cloud.attestOnce(
        f.customer, f.vid, {SecurityProperty::RuntimeIntegrity});
    ASSERT_TRUE(report.isOk());

    ASSERT_FALSE(wiretap.empty());
    for (const Bytes &payload : wiretap) {
        EXPECT_EQ(toString(payload).find("xyzzy"), std::string::npos)
            << "measurement payload leaked in cleartext";
    }
}

TEST(SecurityTest, TamperedWireBlocksButNeverForges)
{
    SecurityFixture f;
    // Flip a byte in every data record on the wire.
    f.cloud.network().setAdversary([](const Envelope &env) {
        Envelope out = env;
        if (out.channel.rfind("data", 0) == 0 && !out.payload.empty())
            out.payload[out.payload.size() / 2] ^= 0x01;
        return std::optional<Envelope>{out};
    });

    auto report = f.cloud.attestOnce(
        f.customer, f.vid, {SecurityProperty::RuntimeIntegrity},
        seconds(30));
    EXPECT_FALSE(report.isOk()) << "no report can get through";
    EXPECT_EQ(f.customer.stats().reportsVerified, 0u);

    // The attacker leaves; service recovers on fresh requests.
    f.cloud.network().setAdversary(nullptr);
    auto clean = f.cloud.attestOnce(
        f.customer, f.vid, {SecurityProperty::RuntimeIntegrity});
    ASSERT_TRUE(clean.isOk());
    EXPECT_EQ(clean.value().report.results[0].status,
              HealthStatus::Healthy);
}

TEST(SecurityTest, ReportSubstitutionIsDetected)
{
    // The attacker records the wire traffic of an attestation of a
    // *compromised* VM, then replays those datagrams during a later
    // attestation, hoping to substitute the old (or any) report.
    SecurityFixture f;
    f.cloud.serverHosting(f.vid)->guestOs(f.vid).injectHiddenMalware(
        "rootkit");

    std::vector<Envelope> recording;
    f.cloud.network().setAdversary([&](const Envelope &env) {
        recording.push_back(env);
        return env;
    });
    auto bad = f.cloud.attestOnce(f.customer, f.vid,
                                  {SecurityProperty::RuntimeIntegrity});
    ASSERT_TRUE(bad.isOk());
    ASSERT_EQ(bad.value().report.results[0].status,
              HealthStatus::Compromised);

    // Second attestation: the attacker drops genuine data records and
    // replays the recorded ones instead.
    f.cloud.network().setAdversary([&](const Envelope &env)
                                       -> std::optional<Envelope> {
        if (env.channel.rfind("data", 0) == 0) {
            for (const Envelope &old : recording) {
                if (old.src == env.src && old.dst == env.dst)
                    f.cloud.network().inject(old);
            }
            return std::nullopt;
        }
        return env;
    });

    const std::uint64_t before = f.customer.stats().reportsVerified;
    auto replayed = f.cloud.attestOnce(
        f.customer, f.vid, {SecurityProperty::RuntimeIntegrity},
        seconds(30));
    EXPECT_FALSE(replayed.isOk());
    EXPECT_EQ(f.customer.stats().reportsVerified, before)
        << "replayed reports must not verify";
}

TEST(SecurityTest, DroppedMessagesMeanSilenceNotForgery)
{
    SecurityFixture f;
    f.cloud.network().setAdversary([](const Envelope &env)
                                       -> std::optional<Envelope> {
        if (env.channel.rfind("data", 0) == 0)
            return std::nullopt;
        return env;
    });
    auto report = f.cloud.attestOnce(
        f.customer, f.vid, {SecurityProperty::RuntimeIntegrity},
        seconds(30));
    EXPECT_FALSE(report.isOk());
    EXPECT_EQ(f.customer.stats().reportsVerified, 0u);
}

TEST(SecurityTest, CompromisedReportCannotBeLaunderedToHealthy)
{
    // The attacker tampers selectively with the AS->controller hop
    // hoping to flip a compromised report to healthy; the controller
    // rejects the modified record at the channel layer, so the
    // customer never sees a healthy report for an infected VM.
    SecurityFixture f;
    f.cloud.serverHosting(f.vid)->guestOs(f.vid).injectHiddenMalware(
        "rootkit");
    f.cloud.network().setAdversary([](const Envelope &env) {
        Envelope out = env;
        if (out.src == "attestation-server" &&
            out.dst == "cloud-controller" &&
            out.channel.rfind("data", 0) == 0 && !out.payload.empty()) {
            out.payload[0] ^= 0x01;
        }
        return std::optional<Envelope>{out};
    });

    auto report = f.cloud.attestOnce(
        f.customer, f.vid, {SecurityProperty::RuntimeIntegrity},
        seconds(30));
    if (report.isOk()) {
        // Nothing was delivered, or only the honest report could be.
        EXPECT_EQ(report.value().report.results[0].status,
                  HealthStatus::Compromised);
    }
    // In no case does a healthy report exist for the infected VM.
    for (const VerifiedReport &vr : f.customer.reports()) {
        const auto *pr =
            vr.report.find(SecurityProperty::RuntimeIntegrity);
        if (pr) {
            EXPECT_NE(pr->status, HealthStatus::Healthy);
        }
    }
}

TEST(SecurityTest, AttestationServerCountsVerificationFailures)
{
    SecurityFixture f;
    // Tamper only with server -> AS traffic (the measurement hop).
    f.cloud.network().setAdversary([](const Envelope &env) {
        Envelope out = env;
        if (out.dst == "attestation-server" &&
            out.channel.rfind("data", 0) == 0 && !out.payload.empty()) {
            out.payload[out.payload.size() - 1] ^= 0x80;
        }
        return std::optional<Envelope>{out};
    });
    auto report = f.cloud.attestOnce(
        f.customer, f.vid, {SecurityProperty::RuntimeIntegrity},
        seconds(30));
    EXPECT_FALSE(report.isOk());
    const auto &endpointStats = f.cloud.attestationServer().stats();
    (void)endpointStats;
    // The channel layer rejects the record before protocol
    // verification, so the failure shows up as rejected records at
    // the endpoint (counted by the network as modified datagrams).
    EXPECT_GT(f.cloud.network().stats().modifiedByAdversary, 0u);
}

TEST(SecurityTest, HonestRunHasZeroRejections)
{
    SecurityFixture f;
    auto report = f.cloud.attestOnce(f.customer, f.vid,
                                     proto::allProperties());
    ASSERT_TRUE(report.isOk());
    EXPECT_EQ(f.customer.stats().reportsRejected, 0u);
    EXPECT_EQ(f.cloud.attestationServer().stats().verificationFailures,
              0u);
    EXPECT_EQ(f.cloud.controller().stats().reportVerificationFailures,
              0u);
    EXPECT_EQ(f.cloud.privacyCa().rejected(), 0u);
}

} // namespace
} // namespace monatt::core
