/**
 * @file
 * The durable control plane on a failing disk. Two scenarios:
 *
 *  - Corruption sweep: the controller and pCA power-cycle mid-workload
 *    while every durable frame bit-rots with 0–30% probability.
 *    Verifying replay must quarantine every rotted frame (never
 *    silently replay one), every attestation must still reach a
 *    terminal verdict, and the whole run must be bit-identical at
 *    MONATT_THREADS 1 and 8 — storage-fault verdicts are pure
 *    functions of (seed, node, LSN).
 *
 *  - Replica mirror self-heal: a follower restarts with its entire
 *    mirror rotted (frames and snapshot seal). Mirror verification
 *    truncates it to nothing, the leader re-streams through the
 *    normal replication path, and the healed follower must then be
 *    able to win an election and serve with zero lost VmRecords.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/cloud.h"
#include "crypto/sha256.h"

namespace monatt::core
{
namespace
{

void
absorbU64(crypto::Sha256 &digest, std::uint64_t v)
{
    Bytes b;
    for (int i = 0; i < 8; ++i)
        b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    digest.update(b);
}

struct StorageChaosTrace
{
    std::string digest;
    std::size_t okCount = 0;
    std::size_t settled = 0;
    std::size_t eventsExecuted = 0;
    SimTime endTime = 0;
    std::uint64_t rotted = 0;      //!< Frames the outages corrupted.
    std::uint64_t quarantined = 0; //!< Frames replay refused to serve.
    std::uint64_t truncated = 0;
    std::uint64_t corruptRecoveries = 0;
};

StorageChaosTrace
runCorruptionSweep(std::size_t computeThreads, double rot)
{
    CloudConfig cfg;
    cfg.numServers = 4;
    cfg.numAttestationServers = 2;
    cfg.seed = 92001;
    cfg.computeThreads = computeThreads;
    cfg.cryptoBatchWindow = usec(200);
    // Tight checkpoint cadence: rot lands on both journal frames and
    // sealed snapshots.
    cfg.checkpointPolicy.everyRecords = 32;
    Cloud cloud(cfg);
    Customer &customer = cloud.addCustomer("alice");

    std::vector<std::string> vids;
    for (int i = 0; i < 4; ++i) {
        auto vid = cloud.launchVm(customer, "vm-" + std::to_string(i),
                                  "cirros", "small",
                                  proto::allProperties());
        EXPECT_TRUE(vid.isOk()) << vid.errorMessage();
        if (vid.isOk())
            vids.push_back(vid.take());
    }

    // Controller and pCA power-cycle mid-fan-out; the disk-failure
    // axes decide what survives on their platters.
    sim::FaultPlanConfig plan;
    plan.seed = 0xD15C;
    plan.storage.bitRotProbability = rot;
    plan.storage.snapshotRotProbability = rot * 0.5;
    plan.storage.tornTailPersistProbability = 0.5;
    plan.storage.halfWriteProbability = 0.5;
    plan.storage.reorderPersistProbability = 0.2;
    const SimTime now = cloud.events().now();
    plan.crashes.push_back(sim::CrashEvent{
        "cloud-controller", now + msec(300), now + seconds(3)});
    plan.crashes.push_back(sim::CrashEvent{
        "privacy-ca", now + msec(500), now + seconds(2)});
    cloud.installFaultPlan(plan);

    std::vector<std::string> many;
    for (int i = 0; i < 16; ++i)
        many.push_back(vids[static_cast<std::size_t>(i) % vids.size()]);
    auto results = cloud.attestMany(customer, many,
                                    proto::allProperties(), seconds(600));

    StorageChaosTrace trace;
    crypto::Sha256 digest;
    for (const auto &r : results) {
        if (r.isOk()) {
            ++trace.okCount;
            ++trace.settled;
            digest.update(r.value().report.encode());
            absorbU64(digest,
                      static_cast<std::uint64_t>(r.value().receivedAt));
        } else {
            trace.settled += r.errorMessage() != "attestation timed out";
            digest.update(toBytes(r.errorMessage()));
        }
    }

    // Fold every durable image into the trace digest: divergent
    // corruption across pool widths shows up even when the verdicts
    // happen to agree.
    const sim::StableStore &ccStore = cloud.controller().stableStore();
    const sim::StableStore &pcaStore = cloud.privacyCa().stableStore();
    for (const sim::StableStore *store : {&ccStore, &pcaStore}) {
        absorbU64(digest, store->digest());
        const sim::StableStoreStats &s = store->stats();
        trace.rotted += s.recordsRotted;
        trace.quarantined += s.recordsQuarantined;
        trace.truncated += s.recordsTruncated;
        // No silent replay: every frame rot corrupted while it sat in
        // a durable journal was still there at the next replay (rot
        // is applied at the crash, replay runs at the restart), so it
        // must have been caught.
        EXPECT_LE(s.snapshotsQuarantined, s.snapshotsRotted);
        if (s.recordsRotted > 0) {
            EXPECT_GE(s.recordsQuarantined + s.recordsTruncated, 1u)
                << store->node() << " replayed rotted frames silently";
        }
    }
    trace.corruptRecoveries =
        cloud.controller().stats().corruptRecoveries +
        cloud.privacyCa().corruptRecoveries();
    trace.digest = toHex(digest.digest());
    trace.eventsExecuted = cloud.events().executed();
    trace.endTime = cloud.events().now();
    return trace;
}

TEST(StorageChaosTest, CorruptionSweepSettlesAndIsBitIdentical)
{
    for (const double rot : {0.0, 0.1, 0.3}) {
        const StorageChaosTrace serial = runCorruptionSweep(1, rot);
        const StorageChaosTrace wide = runCorruptionSweep(8, rot);

        for (const StorageChaosTrace *t : {&serial, &wide}) {
            EXPECT_EQ(t->settled, 16u)
                << "every request needs a terminal verdict, rot=" << rot;
            if (rot == 0.0) {
                // Clean disk: the outage loses nothing durable and
                // nothing is quarantined.
                EXPECT_EQ(t->okCount, 16u);
                EXPECT_EQ(t->rotted, 0u);
                EXPECT_EQ(t->quarantined, 0u);
                EXPECT_EQ(t->corruptRecoveries, 0u);
            }
        }
        if (rot == 0.3) {
            // The sweep's top end must actually exercise the fault
            // plane: frames rotted and recoveries had to heal.
            EXPECT_GE(serial.rotted, 1u);
            EXPECT_GE(serial.corruptRecoveries, 1u);
        }

        // Bit-identical across pool widths, per rot rate.
        EXPECT_EQ(serial.digest, wide.digest) << "rot=" << rot;
        EXPECT_EQ(serial.settled, wide.settled) << "rot=" << rot;
        EXPECT_EQ(serial.rotted, wide.rotted) << "rot=" << rot;
        EXPECT_EQ(serial.quarantined, wide.quarantined) << "rot=" << rot;
        EXPECT_EQ(serial.eventsExecuted, wide.eventsExecuted)
            << "rot=" << rot;
        EXPECT_EQ(serial.endTime, wide.endTime) << "rot=" << rot;
    }
}

TEST(StorageChaosTest, ReplicaMirrorSelfHealsFromLeaderStream)
{
    CloudConfig cfg;
    cfg.numServers = 4;
    cfg.numAttestationServers = 2;
    cfg.seed = 92002;
    cfg.computeThreads = 1;
    cfg.cryptoBatchWindow = usec(200);
    cfg.controllerShards = 1;
    cfg.controllerReplicas = 3;
    Cloud cloud(cfg);
    Customer &customer = cloud.addCustomer("alice");

    std::vector<std::string> vids;
    for (int i = 0; i < 4; ++i) {
        auto vid = cloud.launchVm(customer, "vm-" + std::to_string(i),
                                  "cirros", "small",
                                  proto::allProperties());
        ASSERT_TRUE(vid.isOk()) << vid.errorMessage();
        vids.push_back(vid.take());
    }

    // replica-1's outage rots its ENTIRE mirror (every frame and the
    // snapshot seal); verification on restart must scrap it and
    // re-sync from the group. The leader dies shortly after and stays
    // dead through the workload: quorum returns only once the healed
    // replica is back, and a follower must win and serve.
    sim::FaultPlanConfig plan;
    plan.seed = 0x5EAL;
    plan.storage.bitRotProbability = 1.0;
    plan.storage.snapshotRotProbability = 1.0;
    const SimTime now = cloud.events().now();
    plan.crashes.push_back(sim::CrashEvent{
        "cloud-controller-replica-1", now + msec(100), now + seconds(2)});
    plan.crashes.push_back(sim::CrashEvent{
        "cloud-controller", now + seconds(1), now + seconds(120)});
    cloud.installFaultPlan(plan);

    std::vector<std::string> many;
    for (int i = 0; i < 12; ++i)
        many.push_back(vids[static_cast<std::size_t>(i) % vids.size()]);
    auto results = cloud.attestMany(customer, many,
                                    proto::allProperties(), seconds(600));
    std::size_t settled = 0;
    for (const auto &r : results)
        settled += r.isOk() ||
                   r.errorMessage() != "attestation timed out";
    EXPECT_EQ(settled, many.size());

    auto &fab = cloud.controllerFabric();
    const controller::CloudController *replica1 =
        fab.shardById("cloud-controller-replica-1");
    ASSERT_NE(replica1, nullptr);
    // The rotted mirror was detected and healed, not replayed.
    EXPECT_GE(replica1->stats().corruptRecoveries, 1u);
    EXPECT_GE(replica1->stableStore().stats().recordsQuarantined +
                  replica1->stableStore().stats().recordsTruncated +
                  replica1->stableStore().stats().snapshotsQuarantined,
              1u);

    // A follower holds the reign now, and no VmRecord was lost: the
    // re-streamed journal covered everything.
    EXPECT_GE(fab.leaderOf(0).electionRound(), 2u);
    for (const std::string &vid : vids)
        EXPECT_NE(fab.ownerOf(vid).database().vm(vid), nullptr)
            << vid << " lost after mirror re-sync";
}

} // namespace
} // namespace monatt::core
