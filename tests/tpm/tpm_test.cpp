/**
 * @file
 * TPM emulator, certificates and the Trust Module: PCR extend
 * semantics, quotes, per-session attestation keys, Trust Evidence
 * Registers.
 */

#include <gtest/gtest.h>

#include "crypto/sha256.h"
#include "sim/worker_pool.h"
#include "tpm/certificate.h"
#include "tpm/tpm_emulator.h"
#include "tpm/trust_module.h"

namespace monatt::tpm
{
namespace
{

crypto::RsaKeyPair
makeKeys(std::uint64_t seed)
{
    Rng rng(seed);
    return crypto::rsaGenerateKeyPair(512, rng);
}

TEST(TpmEmulatorTest, PcrsStartZeroAndExtendDeterministically)
{
    TpmEmulator tpm(makeKeys(1));
    EXPECT_EQ(tpm.pcrRead(0), Bytes(32, 0x00));

    tpm.extend(0, toBytes("hypervisor"));
    const Bytes zero(32, 0x00);
    const Bytes digest = crypto::Sha256::hash(toBytes("hypervisor"));
    EXPECT_EQ(tpm.pcrRead(0),
              crypto::Sha256::hashConcat({&zero, &digest}));
    EXPECT_EQ(tpm.pcrRead(1), Bytes(32, 0x00)); // Others untouched.
}

TEST(TpmEmulatorTest, ExtendOrderMatters)
{
    TpmEmulator a(makeKeys(1)), b(makeKeys(1));
    a.extend(0, toBytes("x"));
    a.extend(0, toBytes("y"));
    b.extend(0, toBytes("y"));
    b.extend(0, toBytes("x"));
    EXPECT_NE(a.pcrRead(0), b.pcrRead(0));
}

TEST(TpmEmulatorTest, ResetClearsPcrs)
{
    TpmEmulator tpm(makeKeys(1));
    tpm.extend(3, toBytes("stuff"));
    tpm.reset();
    EXPECT_EQ(tpm.pcrRead(3), Bytes(32, 0x00));
}

TEST(TpmEmulatorTest, BadPcrIndexThrows)
{
    TpmEmulator tpm(makeKeys(1));
    EXPECT_THROW(tpm.extend(kNumPcrs, toBytes("x")), std::out_of_range);
    EXPECT_THROW(tpm.pcrRead(kNumPcrs), std::out_of_range);
}

TEST(TpmEmulatorTest, QuoteVerifies)
{
    TpmEmulator tpm(makeKeys(2));
    tpm.extend(0, toBytes("hv"));
    tpm.extend(1, toBytes("os"));
    const Bytes nonce = toBytes("fresh-nonce");
    const TpmQuote quote = tpm.quote({0, 1}, nonce);
    EXPECT_TRUE(TpmEmulator::verifyQuote(quote,
                                         tpm.endorsementPublic()));
    EXPECT_EQ(quote.pcrValues[0], tpm.pcrRead(0));
    EXPECT_EQ(quote.nonce, nonce);
}

TEST(TpmEmulatorTest, TamperedQuoteFailsVerification)
{
    TpmEmulator tpm(makeKeys(2));
    tpm.extend(0, toBytes("hv"));
    TpmQuote quote = tpm.quote({0}, toBytes("n"));
    quote.pcrValues[0][0] ^= 0x01;
    EXPECT_FALSE(TpmEmulator::verifyQuote(quote,
                                          tpm.endorsementPublic()));
}

TEST(TpmEmulatorTest, QuoteNonceSubstitutionFails)
{
    TpmEmulator tpm(makeKeys(2));
    TpmQuote quote = tpm.quote({0}, toBytes("original"));
    quote.nonce = toBytes("replayed");
    EXPECT_FALSE(TpmEmulator::verifyQuote(quote,
                                          tpm.endorsementPublic()));
}

TEST(TpmEmulatorTest, QuoteEncodeDecodeRoundTrip)
{
    TpmEmulator tpm(makeKeys(2));
    tpm.extend(0, toBytes("a"));
    const TpmQuote quote = tpm.quote({0, 5}, toBytes("n"));
    auto decoded = TpmQuote::decode(quote.encode());
    ASSERT_TRUE(decoded.isOk());
    EXPECT_TRUE(TpmEmulator::verifyQuote(decoded.value(),
                                         tpm.endorsementPublic()));
    EXPECT_FALSE(TpmQuote::decode(Bytes{0x01, 0x02}).isOk());
}

TEST(TpmEmulatorTest, NvramRoundTrip)
{
    TpmEmulator tpm(makeKeys(1));
    EXPECT_FALSE(tpm.nvRead(7).isOk());
    tpm.nvWrite(7, toBytes("sealed"));
    EXPECT_EQ(tpm.nvRead(7).value(), toBytes("sealed"));
}

TEST(CertificateTest, IssueVerifyRoundTrip)
{
    const auto issuerKeys = makeKeys(3);
    const auto subjectKeys = makeKeys(4);
    const Certificate cert = issueCertificate(
        "aik-session-1", subjectKeys.pub, "privacy-ca", 42,
        issuerKeys.priv);
    EXPECT_TRUE(cert.verify(issuerKeys.pub));
    EXPECT_EQ(cert.publicKey().value(), subjectKeys.pub);

    auto decoded = Certificate::decode(cert.encode());
    ASSERT_TRUE(decoded.isOk());
    EXPECT_TRUE(decoded.value().verify(issuerKeys.pub));
    EXPECT_EQ(decoded.value().subject, "aik-session-1");
    EXPECT_EQ(decoded.value().serial, 42u);
}

TEST(CertificateTest, TamperedFieldsFailVerification)
{
    const auto issuerKeys = makeKeys(3);
    const auto subjectKeys = makeKeys(4);
    Certificate cert = issueCertificate("subject", subjectKeys.pub,
                                        "ca", 1, issuerKeys.priv);
    Certificate bad = cert;
    bad.subject = "other-subject";
    EXPECT_FALSE(bad.verify(issuerKeys.pub));

    bad = cert;
    bad.serial = 2;
    EXPECT_FALSE(bad.verify(issuerKeys.pub));

    // Wrong issuer key.
    EXPECT_FALSE(cert.verify(subjectKeys.pub));
}

TEST(TrustModuleTest, TerBankLifecycle)
{
    TrustModule tm("server-1", makeKeys(5), toBytes("entropy"));
    EXPECT_FALSE(tm.hasBank("usage"));
    tm.defineBank("usage", 30);
    EXPECT_TRUE(tm.hasBank("usage"));
    EXPECT_EQ(tm.readBank("usage").size(), 30u);

    tm.writeRegister("usage", 4, 100); // The paper's (4,5] example.
    tm.incrementRegister("usage", 4);
    EXPECT_EQ(tm.readRegister("usage", 4), 101u);

    tm.clearBank("usage");
    EXPECT_EQ(tm.readRegister("usage", 4), 0u);
}

TEST(TrustModuleTest, TerBadAddressesThrow)
{
    TrustModule tm("server-1", makeKeys(5), toBytes("entropy"));
    tm.defineBank("b", 4);
    EXPECT_THROW(tm.writeRegister("b", 4, 1), std::out_of_range);
    EXPECT_THROW(tm.readRegister("nope", 0), std::out_of_range);
    EXPECT_THROW(tm.readBank("nope"), std::out_of_range);
    EXPECT_THROW(tm.clearBank("nope"), std::out_of_range);
}

TEST(TrustModuleTest, SessionKeysAreFreshAndCertifiable)
{
    TrustModule tm("server-1", makeKeys(6), toBytes("entropy"));
    const auto s1 = tm.beginSession();
    const auto s2 = tm.beginSession();
    EXPECT_NE(s1.handle, s2.handle);
    EXPECT_NE(s1.attestationKey.n, s2.attestationKey.n)
        << "AVKs must be session specific (anonymity, §3.4.2)";

    // The identity signature over AVKs verifies against VKs — what
    // the pCA checks before certifying.
    EXPECT_TRUE(crypto::rsaVerify(tm.identityPublic(),
                                  s1.attestationKey.encode(),
                                  s1.attestationKeySignature));
}

TEST(TrustModuleTest, BatchedSessionsMatchSequentialSessions)
{
    // beginSessions(n) fans the key generations out on the compute
    // plane but must reproduce the exact handles, keys and identity
    // signatures of n sequential beginSession() calls, at any pool
    // width.
    sim::WorkerPool::configureGlobal(4);
    TrustModule batched("server-1", makeKeys(6), toBytes("entropy"));
    TrustModule serial("server-1", makeKeys(6), toBytes("entropy"));

    const auto batch = batched.beginSessions(3);
    ASSERT_EQ(batch.size(), 3u);
    for (const auto &info : batch) {
        const auto ref = serial.beginSession();
        EXPECT_EQ(info.handle, ref.handle);
        EXPECT_EQ(info.attestationKey.n, ref.attestationKey.n);
        EXPECT_EQ(info.attestationKey.e, ref.attestationKey.e);
        EXPECT_EQ(info.attestationKeySignature,
                  ref.attestationKeySignature);
    }

    // Both modules end up with identical DRBG state: the next
    // sequential session still agrees.
    EXPECT_EQ(batched.beginSession().attestationKey.n,
              serial.beginSession().attestationKey.n);
    sim::WorkerPool::configureGlobal(1);
}

TEST(TrustModuleTest, SessionSigningAndTeardown)
{
    TrustModule tm("server-1", makeKeys(6), toBytes("entropy"));
    const auto session = tm.beginSession();
    const Bytes msg = toBytes("measurements");
    auto sig = tm.signWithSession(session.handle, msg);
    ASSERT_TRUE(sig.isOk());
    EXPECT_TRUE(crypto::rsaVerify(session.attestationKey, msg,
                                  sig.value()));

    tm.endSession(session.handle);
    EXPECT_FALSE(tm.signWithSession(session.handle, msg).isOk());
    EXPECT_EQ(tm.openSessions(), 0u);
}

TEST(TrustModuleTest, IdentityOperations)
{
    TrustModule tm("server-1", makeKeys(7), toBytes("entropy"));
    const Bytes msg = toBytes("hello");
    const Bytes sig = tm.signWithIdentity(msg);
    EXPECT_TRUE(crypto::rsaVerify(tm.identityPublic(), msg, sig));

    Rng rng(1);
    auto cipher = crypto::rsaEncrypt(tm.identityPublic(),
                                     toBytes("premaster"), rng);
    ASSERT_TRUE(cipher.isOk());
    EXPECT_EQ(tm.decryptWithIdentity(cipher.value()).value(),
              toBytes("premaster"));
}

TEST(TrustModuleTest, RngProducesFreshBytes)
{
    TrustModule tm("server-1", makeKeys(7), toBytes("entropy"));
    const Bytes a = tm.randomBytes(16);
    const Bytes b = tm.randomBytes(16);
    EXPECT_EQ(a.size(), 16u);
    EXPECT_NE(a, b);
}

} // namespace
} // namespace monatt::tpm
