/**
 * @file
 * Symbolic protocol verification: the term algebra, the Dolev-Yao
 * deduction engine, and the §7.2.2 queries — including negative
 * validation (deliberately leaked secrets must break the matching
 * properties, proving the checker is not vacuous).
 */

#include <gtest/gtest.h>

#include "verif/deduction.h"
#include "verif/protocol_model.h"
#include "verif/term.h"

namespace monatt::verif
{
namespace
{

TEST(TermTest, StructuralEquality)
{
    const TermPtr a = Term::name("k");
    const TermPtr b = Term::name("k");
    EXPECT_TRUE(a->equals(*b));
    EXPECT_FALSE(a->equals(*Term::name("j")));
    EXPECT_TRUE(Term::pair(a, b)->equals(*Term::pair(b, a)));
    EXPECT_FALSE(Term::senc(a, b)->equals(*Term::aenc(a, b)));
}

TEST(TermTest, TupleNestsRight)
{
    const TermPtr t = Term::tuple(
        {Term::name("a"), Term::name("b"), Term::name("c")});
    ASSERT_EQ(t->kind(), TermKind::Pair);
    EXPECT_EQ(t->children()[0]->atom(), "a");
    EXPECT_EQ(t->children()[1]->kind(), TermKind::Pair);
}

TEST(DeductionTest, PairsDecompose)
{
    KnowledgeBase kb;
    kb.observe(Term::pair(Term::name("a"), Term::name("b")));
    kb.saturate();
    EXPECT_TRUE(kb.canDerive(Term::name("a")));
    EXPECT_TRUE(kb.canDerive(Term::name("b")));
}

TEST(DeductionTest, SymmetricEncryptionHidesWithoutKey)
{
    KnowledgeBase kb;
    kb.observe(Term::senc(Term::name("k"), Term::name("secret")));
    kb.saturate();
    EXPECT_FALSE(kb.canDerive(Term::name("secret")));

    KnowledgeBase kb2;
    kb2.observe(Term::senc(Term::name("k"), Term::name("secret")));
    kb2.observe(Term::name("k"));
    kb2.saturate();
    EXPECT_TRUE(kb2.canDerive(Term::name("secret")));
}

TEST(DeductionTest, AsymmetricEncryptionNeedsPrivateKey)
{
    const TermPtr sk = Term::name("sk");
    KnowledgeBase kb;
    kb.observe(Term::aenc(Term::pub(sk), Term::name("pm")));
    kb.saturate();
    EXPECT_FALSE(kb.canDerive(Term::name("pm")));
    // Public keys are derivable, so the attacker CAN encrypt his own
    // payloads to anyone.
    EXPECT_TRUE(kb.canDerive(Term::pub(sk)));

    KnowledgeBase kb2;
    kb2.observe(Term::aenc(Term::pub(sk), Term::name("pm")));
    kb2.observe(sk);
    kb2.saturate();
    EXPECT_TRUE(kb2.canDerive(Term::name("pm")));
}

TEST(DeductionTest, SignaturesRevealButCannotBeForged)
{
    const TermPtr sk = Term::name("sk");
    KnowledgeBase kb;
    kb.observe(Term::sign(sk, Term::name("msg")));
    kb.makePublic(Term::name("other"));
    kb.saturate();
    // The signed message leaks (signing is not encryption)...
    EXPECT_TRUE(kb.canDerive(Term::name("msg")));
    // ...and the observed signature itself is replayable...
    EXPECT_TRUE(kb.canDerive(Term::sign(sk, Term::name("msg"))));
    // ...but a signature over new content is not forgeable.
    EXPECT_FALSE(kb.canDerive(Term::sign(sk, Term::name("other"))));
}

TEST(DeductionTest, HashesAreOneWay)
{
    KnowledgeBase kb;
    kb.observe(Term::hash(Term::name("x")));
    kb.saturate();
    EXPECT_FALSE(kb.canDerive(Term::name("x")));
    // But hashing known material is synthesis.
    kb.observe(Term::name("y"));
    EXPECT_TRUE(kb.canDerive(Term::hash(Term::name("y"))));
}

TEST(DeductionTest, KeyDerivedFromHashUnlocksDecryption)
{
    // senc(h(pm), secret): leaking pm must reveal the secret through
    // the synthesized key — exercising synthesis-in-key-position.
    const TermPtr key = Term::hash(Term::name("pm"));
    KnowledgeBase kb;
    kb.observe(Term::senc(key, Term::name("secret")));
    kb.observe(Term::name("pm"));
    kb.saturate();
    EXPECT_TRUE(kb.canDerive(Term::name("secret")));
}

TEST(ProtocolModelTest, AllPropertiesHoldHonestly)
{
    ProtocolModel model;
    const auto outcomes = model.verifyAll();
    EXPECT_EQ(outcomes.size(), 8u + 3u + 3u + 3u);
    for (const auto &o : outcomes)
        EXPECT_TRUE(o.holds) << o.property << ": " << o.detail;
}

TEST(ProtocolModelTest, LeakedSessionKeyBreaksThatHopOnly)
{
    ProtocolModel model({LeakableSecret::SessionKeyKz});
    bool kzBroken = false, kxHolds = false, mLeaked = false;
    for (const auto &o : model.verifyAll()) {
        if (o.property == "secrecy: Kz")
            kzBroken = !o.holds;
        if (o.property == "secrecy: Kx")
            kxHolds = o.holds;
        if (o.property == "secrecy: M (measurements)")
            mLeaked = !o.holds;
    }
    EXPECT_TRUE(kzBroken);
    EXPECT_TRUE(kxHolds);
    // M travels under Kz, so it leaks too.
    EXPECT_TRUE(mLeaked);
}

TEST(ProtocolModelTest, LeakedServerIdentityKeyBreaksKzViaHandshake)
{
    ProtocolModel model({LeakableSecret::ServerIdentityKey});
    for (const auto &o : model.verifyAll()) {
        if (o.property == "secrecy: Kz") {
            EXPECT_FALSE(o.holds) << o.detail;
        }
        if (o.property == "secrecy: M (measurements)") {
            EXPECT_FALSE(o.holds) << o.detail;
        }
        // Other hops stay secure.
        if (o.property == "secrecy: Ky") {
            EXPECT_TRUE(o.holds) << o.detail;
        }
    }
}

TEST(ProtocolModelTest, LeakedAttestorKeyBreaksReportIntegrity)
{
    ProtocolModel model({LeakableSecret::AttestorIdentityKey});
    for (const auto &o : model.verifyAll()) {
        if (o.property == "integrity: R at controller (forge [*]SKa)") {
            EXPECT_FALSE(o.holds);
        }
        if (o.property == "integrity: R at customer (forge [*]SKc)") {
            EXPECT_TRUE(o.holds);
        }
    }
}

TEST(ProtocolModelTest, LeakedSessionSigningKeyBreaksMeasurements)
{
    ProtocolModel model({LeakableSecret::SessionSigningKey});
    for (const auto &o : model.verifyAll()) {
        if (o.property == "integrity: M (forge [*]ASKs)") {
            EXPECT_FALSE(o.holds);
        }
    }
}

TEST(ProtocolModelTest, LeakedControllerKeyBreaksCustomerHop)
{
    ProtocolModel model({LeakableSecret::ControllerIdentityKey});
    bool sawAuthBreak = false;
    for (const auto &o : model.verifyAll()) {
        if (o.property.find("inject under Kx") != std::string::npos)
            sawAuthBreak = !o.holds;
    }
    EXPECT_TRUE(sawAuthBreak);
}

} // namespace
} // namespace monatt::verif
