/**
 * @file
 * Wire-codec conformance: frozen golden byte vectors for the tagged
 * encoding of every message type (field renumbering fails loudly
 * here), schema-registry invariants, frame self-description, legacy ↔
 * tagged equivalence for fully populated messages, and the v1 ↔ v2
 * mixed-version contract (unknown-field skip + missing-field default)
 * in both directions.
 */

#include <gtest/gtest.h>

#include <set>

#include "proto/messages.h"

namespace monatt::proto
{
namespace
{

const WireContext kV1{WireFormat::Tagged, kWireV1};
const WireContext kV2{WireFormat::Tagged, kWireV2};
const WireContext kV3{WireFormat::Tagged, kWireV3};

// --- Fixed sample messages (every field away from its default) -------

AttestRequest
sampleAttestRequest()
{
    AttestRequest m;
    m.requestId = 7;
    m.vid = "vm-42";
    m.properties = {SecurityProperty::RuntimeIntegrity,
                    SecurityProperty::CpuAvailability};
    m.nonce1 = {0x01, 0x02, 0x03, 0x04};
    m.mode = AttestMode::RuntimePeriodic;
    m.period = seconds(10);
    m.senderBuild = 3;
    return m;
}

AttestForward
sampleAttestForward()
{
    AttestForward m;
    m.requestId = 9;
    m.vid = "vm-1";
    m.serverId = "server-2";
    m.properties = {SecurityProperty::StartupIntegrity};
    m.nonce2 = {0x09, 0x09};
    m.mode = AttestMode::StartupOneTime;
    m.period = seconds(1);
    m.senderBuild = 3;
    return m;
}

MeasureRequest
sampleMeasureRequest()
{
    MeasureRequest m;
    m.requestId = 11;
    m.vid = "vm-m";
    m.rm = {MeasurementType::PlatformPcrs, MeasurementType::CpuMeasure};
    m.nonce3 = {0x0a, 0x0b};
    m.window = seconds(2);
    m.senderBuild = 3;
    return m;
}

MeasureResponse
sampleMeasureResponse()
{
    MeasureResponse m;
    m.requestId = 12;
    m.vid = "vm-m";
    m.rm = {MeasurementType::VmImageDigest};
    Measurement meas;
    meas.type = MeasurementType::VmImageDigest;
    meas.digest = {0xde, 0xad};
    m.m.items.push_back(meas);
    m.nonce3 = {0x0c};
    m.quote3 = {0x0d};
    m.signature = {0x0e, 0x0f};
    m.certificate = {0x10};
    m.senderBuild = 3;
    return m;
}

AttestationReport
sampleReport()
{
    AttestationReport rep;
    rep.vid = "vm-r";
    PropertyResult pr;
    pr.property = SecurityProperty::RuntimeIntegrity;
    pr.status = HealthStatus::Healthy;
    pr.detail = "ok";
    rep.results.push_back(pr);
    rep.issuedAt = seconds(5);
    return rep;
}

ReportToController
sampleReportToController()
{
    ReportToController m;
    m.requestId = 13;
    m.vid = "vm-r";
    m.serverId = "server-1";
    m.properties = {SecurityProperty::RuntimeIntegrity};
    m.report = sampleReport();
    m.nonce2 = {0x11};
    m.quote2 = {0x12};
    m.signature = {0x13, 0x14};
    m.senderBuild = 3;
    return m;
}

ReportToCustomer
sampleReportToCustomer()
{
    ReportToCustomer m;
    m.requestId = 14;
    m.vid = "vm-r";
    m.properties = {SecurityProperty::RuntimeIntegrity};
    m.report = sampleReport();
    m.nonce1 = {0x15};
    m.quote1 = {0x16};
    m.signature = {0x17};
    m.finalPeriodic = true;
    m.senderBuild = 3;
    return m;
}

AttestFailure
sampleAttestFailure()
{
    AttestFailure m;
    m.requestId = 15;
    m.vid = "vm-f";
    m.outcome = FailureOutcome::Unreachable;
    m.reason = "no attestor";
    return m;
}

CertRequest
sampleCertRequest()
{
    CertRequest m;
    m.serverId = "server-3";
    m.sessionLabel = "sess-9";
    m.avk = {0x21, 0x22};
    m.avkSignature = {0x23};
    return m;
}

CertResponse
sampleCertResponse()
{
    CertResponse m;
    m.sessionLabel = "sess-9";
    m.ok = true;
    m.error = "e";
    m.certificate = {0x24, 0x25};
    return m;
}

LaunchVm
sampleLaunchVm()
{
    LaunchVm m;
    m.vid = "vm-l";
    m.name = "web";
    m.numVcpus = 2;
    m.ramMb = 1024;
    m.diskGb = 4;
    m.imageSizeMb = 100;
    m.image = {0x30, 0x31};
    m.weight = 512;
    return m;
}

LaunchVmAck
sampleLaunchVmAck()
{
    LaunchVmAck m;
    m.vid = "vm-l";
    m.ok = true;
    m.error = "x";
    m.imageDigest = {0x32};
    return m;
}

VmCommand
sampleVmCommand()
{
    VmCommand m;
    m.vid = "vm-c";
    return m;
}

VmCommandAck
sampleVmCommandAck()
{
    VmCommandAck m;
    m.vid = "vm-c";
    m.ok = true;
    m.error = "y";
    return m;
}

LaunchRequest
sampleLaunchRequest()
{
    LaunchRequest m;
    m.requestId = 16;
    m.name = "web";
    m.imageName = "ubuntu";
    m.flavorName = "m1.small";
    m.properties = {SecurityProperty::CovertChannelFreedom};
    m.image = {0x33};
    m.imageSizeMb = 50;
    return m;
}

LaunchResponse
sampleLaunchResponse()
{
    LaunchResponse m;
    m.requestId = 17;
    m.vid = "vm-n";
    m.ok = true;
    m.error = "z";
    return m;
}

ReplicateEntries
sampleReplicateEntries()
{
    ReplicateEntries m;
    m.round = 2;
    m.leaderId = "ctrl-a";
    m.prevLsn = 4;
    ReplicatedRecord rec;
    rec.lsn = 5;
    rec.type = 0x103; // a tagged journal record in flight
    rec.payload = {0x41, 0x42};
    m.records.push_back(rec);
    m.commitLsn = 5;
    m.hasSnapshot = true;
    m.snapshot = {0x43};
    m.snapshotLsn = 3;
    return m;
}

ReplicateAck
sampleReplicateAck()
{
    ReplicateAck m;
    m.round = 2;
    m.lastLsn = 5;
    return m;
}

VoteRequest
sampleVoteRequest()
{
    VoteRequest m;
    m.round = 3;
    m.lastLogRound = 2;
    m.lastLsn = 9;
    m.prevote = true;
    return m;
}

VoteGrant
sampleVoteGrant()
{
    VoteGrant m;
    m.round = 3;
    m.prevote = true;
    return m;
}

NotLeader
sampleNotLeader()
{
    NotLeader m;
    m.requestId = 18;
    m.isLaunch = true;
    m.leaderId = "ctrl-b";
    m.round = 3;
    return m;
}

MigrateOut
sampleMigrateOut()
{
    MigrateOut m;
    m.vid = "vm-g";
    m.targetServer = "server-4";
    return m;
}

MigrateIn
sampleMigrateIn()
{
    MigrateIn m;
    m.vid = "vm-g";
    m.name = "web";
    m.numVcpus = 2;
    m.ramMb = 768;
    m.diskGb = 2;
    m.imageSizeMb = 60;
    m.image = {0x50};
    m.weight = 128;
    m.guestTasks = {"init", "sshd"};
    m.hiddenTasks = {"rk"};
    m.auditEntries = {"a1"};
    return m;
}

// --- Golden byte vectors ---------------------------------------------

/**
 * The frozen tagged encodings (kWireV2) of the samples above. These
 * hex strings are the released wire layout: a mismatch means a field
 * was renumbered, retyped or reordered — which breaks rolling
 * upgrades — and must be a new field number instead.
 */
struct GoldenCase
{
    const char *name;
    Bytes actual;
    const char *expected;
};

std::vector<GoldenCase>
goldenCases()
{
    return {
        {"AttestRequest", sampleAttestRequest().encodeTagged(kV2),
         "08071205766d2d34321a02020422040102030428023080dac4097803"},
        {"AttestForward", sampleAttestForward().encodeTagged(kV2),
         "08091204766d2d311a087365727665722d322201012a020909300038"
         "80897a7803"},
        {"MeasureRequest", sampleMeasureRequest().encodeTagged(kV2),
         "080b1204766d2d6d1a02010622020a0b288092f4017803"},
        {"MeasureResponse", sampleMeasureResponse().encodeTagged(kV2),
         "080c1204766d2d6d1a010222080a0608022202dead2a010c32010d3a"
         "020e0f4201107803"},
        {"ReportToController", sampleReportToController().encodeTagged(kV2),
         "080d1204766d2d721a087365727665722d312201022a150a04766d2d"
         "721208080210001a026f6b1880ade2043201113a0112420213147803"},
        {"ReportToCustomer", sampleReportToCustomer().encodeTagged(kV2),
         "080e1204766d2d721a010222150a04766d2d721208080210001a026f"
         "6b1880ade2042a01153201163a011740017803"},
        {"AttestFailure", sampleAttestFailure().encodeTagged(kV2),
         "080f1204766d2d661801220b6e6f206174746573746f72"},
        {"CertRequest", sampleCertRequest().encodeTagged(kV2),
         "0a087365727665722d331206736573732d391a022122220123"},
        {"CertResponse", sampleCertResponse().encodeTagged(kV2),
         "0a06736573732d3910011a016522022425"},
        {"LaunchVm", sampleLaunchVm().encodeTagged(kV2),
         "0a04766d2d6c12037765621802208008280430643a023031408008"},
        {"LaunchVmAck", sampleLaunchVmAck().encodeTagged(kV2),
         "0a04766d2d6c10011a0178220132"},
        {"VmCommand", sampleVmCommand().encodeTagged(kV2),
         "0a04766d2d63"},
        {"VmCommandAck", sampleVmCommandAck().encodeTagged(kV2),
         "0a04766d2d6310011a0179"},
        {"LaunchRequest", sampleLaunchRequest().encodeTagged(kV2),
         "081012037765621a067562756e747522086d312e736d616c6c2a0103"
         "3201333832"},
        {"LaunchResponse", sampleLaunchResponse().encodeTagged(kV2),
         "08111204766d2d6e180122017a"},
        {"ReplicateEntries", sampleReplicateEntries().encodeTagged(kV2),
         "080212066374726c2d611804220908051083021a024142280530013a"
         "01434003"},
        {"ReplicateAck", sampleReplicateAck().encodeTagged(kV2),
         "08021005"},
        {"VoteRequest", sampleVoteRequest().encodeTagged(kV2),
         "0803100218092001"},
        {"VoteGrant", sampleVoteGrant().encodeTagged(kV2),
         "08031001"},
        {"NotLeader", sampleNotLeader().encodeTagged(kV2),
         "081210011a066374726c2d622003"},
        {"MigrateOut", sampleMigrateOut().encodeTagged(kV2),
         "0a04766d2d6712087365727665722d34"},
        {"MigrateIn", sampleMigrateIn().encodeTagged(kV2),
         "0a04766d2d67120377656218022080062802303c3a01504080024a04"
         "696e69744a04737368645202726b5a026131"},
    };
}

TEST(WireConformanceTest, GoldenByteVectors)
{
    for (const GoldenCase &c : goldenCases())
        EXPECT_EQ(toHex(c.actual), c.expected) << c.name;
}

// --- Frame self-description ------------------------------------------

TEST(WireConformanceTest, FramesSelfDescribe)
{
    const Bytes body = toBytes("body");
    const Bytes legacy = packMessage(MessageKind::AttestRequest, body);
    const Bytes tagged =
        packMessageTagged(MessageKind::AttestRequest, body);

    // Frozen frame headers: kind u8 || u32 len (legacy) vs
    // 0xC1 || kind u8 || varint len (tagged).
    EXPECT_EQ(legacy[0], 0x01);
    EXPECT_EQ(tagged[0], kTaggedFrameMarker);
    EXPECT_EQ(tagged[1], 0x01);

    auto l = unpackMessage(legacy);
    ASSERT_TRUE(l.isOk());
    EXPECT_EQ(l.value().format, WireFormat::Legacy);
    EXPECT_EQ(l.value().kind, MessageKind::AttestRequest);
    EXPECT_EQ(l.value().body, body);

    auto t = unpackMessage(tagged);
    ASSERT_TRUE(t.isOk());
    EXPECT_EQ(t.value().format, WireFormat::Tagged);
    EXPECT_EQ(t.value().kind, MessageKind::AttestRequest);
    EXPECT_EQ(t.value().body, body);

    // Truncated / corrupt tagged frames are errors.
    EXPECT_FALSE(unpackMessage(Bytes{kTaggedFrameMarker}).isOk());
    EXPECT_FALSE(unpackMessage(Bytes{kTaggedFrameMarker, 0x01}).isOk());
    Bytes overlong{kTaggedFrameMarker, 0x01, 0x7f};
    EXPECT_FALSE(unpackMessage(overlong).isOk());
}

// --- Schema-registry invariants --------------------------------------

TEST(WireConformanceTest, SchemaRegistryInvariants)
{
    const auto &schemas = wireSchemas();
    ASSERT_FALSE(schemas.empty());
    std::set<std::uint8_t> kinds;
    for (const MessageSchema &s : schemas) {
        EXPECT_NE(s.name, nullptr);
        EXPECT_TRUE(kinds.insert(s.kind).second)
            << "duplicate kind " << unsigned(s.kind);
        std::set<std::uint32_t> numbers;
        for (const FieldSpec &f : s.fields) {
            EXPECT_NE(f.number, 0u) << s.name;
            EXPECT_TRUE(numbers.insert(f.number).second)
                << s.name << " reuses field " << f.number;
            EXPECT_GE(f.since, kWireV1) << s.name;
            EXPECT_LE(f.since, kWireVersionLatest) << s.name;
            EXPECT_NE(f.name, nullptr) << s.name;
        }
        EXPECT_EQ(schemaFor(s.kind), &s);
    }
    EXPECT_EQ(schemaFor(0xff), nullptr);

    // senderBuild always sits at the reserved number with since=v2.
    for (const MessageSchema &s : schemas) {
        for (const FieldSpec &f : s.fields) {
            if (std::string(f.name) == "senderBuild") {
                EXPECT_EQ(f.number, kSenderBuildField) << s.name;
                EXPECT_EQ(f.since, kWireV2) << s.name;
            }
        }
    }
}

// --- Legacy ↔ tagged equivalence -------------------------------------

/** Legacy re-encode of a tagged round trip must be byte-identical. */
template <typename M>
void
expectTaggedMatchesLegacy(const M &msg)
{
    auto viaTagged = M::decodeTagged(msg.encodeTagged(kV2));
    ASSERT_TRUE(viaTagged.isOk()) << viaTagged.errorMessage();
    EXPECT_EQ(viaTagged.value().encode(), msg.encode());
}

TEST(WireConformanceTest, TaggedRoundTripMatchesLegacyEncoding)
{
    expectTaggedMatchesLegacy(sampleAttestRequest());
    expectTaggedMatchesLegacy(sampleAttestForward());
    expectTaggedMatchesLegacy(sampleMeasureRequest());
    expectTaggedMatchesLegacy(sampleMeasureResponse());
    expectTaggedMatchesLegacy(sampleReport());
    expectTaggedMatchesLegacy(sampleReportToController());
    expectTaggedMatchesLegacy(sampleReportToCustomer());
    expectTaggedMatchesLegacy(sampleAttestFailure());
    expectTaggedMatchesLegacy(sampleCertRequest());
    expectTaggedMatchesLegacy(sampleCertResponse());
    expectTaggedMatchesLegacy(sampleLaunchVm());
    expectTaggedMatchesLegacy(sampleLaunchVmAck());
    expectTaggedMatchesLegacy(sampleVmCommand());
    expectTaggedMatchesLegacy(sampleVmCommandAck());
    expectTaggedMatchesLegacy(sampleLaunchRequest());
    expectTaggedMatchesLegacy(sampleLaunchResponse());
    expectTaggedMatchesLegacy(sampleReplicateEntries());
    expectTaggedMatchesLegacy(sampleReplicateAck());
    expectTaggedMatchesLegacy(sampleVoteRequest());
    expectTaggedMatchesLegacy(sampleVoteGrant());
    expectTaggedMatchesLegacy(sampleNotLeader());
    expectTaggedMatchesLegacy(sampleMigrateOut());
    expectTaggedMatchesLegacy(sampleMigrateIn());
}

TEST(WireConformanceTest, DefaultMessagesEncodeEmptyAndDecode)
{
    // A default-constructed message encodes to nothing (omit-default)
    // and nothing decodes back to a default-constructed message.
    EXPECT_TRUE(AttestRequest{}.encodeTagged(kV1).empty());
    EXPECT_TRUE(VmCommandAck{}.encodeTagged(kV1).empty());
    EXPECT_TRUE(ReplicateAck{}.encodeTagged(kV1).empty());
    auto d = AttestRequest::decodeTagged(Bytes{});
    ASSERT_TRUE(d.isOk());
    EXPECT_EQ(d.value().encode(), AttestRequest{}.encode());
}

// --- Mixed-version contract (v1 ↔ v2, both directions) ---------------

TEST(WireConformanceTest, V1EncoderOmitsV2Fields)
{
    // Old encoder → new decoder: senderBuild never on the wire at v1,
    // so the v2 decoder keeps its default (0 = pre-v2 peer).
    AttestRequest m = sampleAttestRequest();
    const Bytes v1Bytes = m.encodeTagged(kV1);
    const Bytes v2Bytes = m.encodeTagged(kV2);
    EXPECT_LT(v1Bytes.size(), v2Bytes.size());

    auto d = AttestRequest::decodeTagged(v1Bytes);
    ASSERT_TRUE(d.isOk());
    EXPECT_EQ(d.value().senderBuild, 0u);
    EXPECT_EQ(d.value().vid, m.vid);
}

TEST(WireConformanceTest, V2FieldsSurviveToV2Decoder)
{
    auto d = AttestRequest::decodeTagged(
        sampleAttestRequest().encodeTagged(kV2));
    ASSERT_TRUE(d.isOk());
    EXPECT_EQ(d.value().senderBuild, 3u);
}

TEST(WireConformanceTest, UnknownFutureFieldsAreSkipped)
{
    // New encoder → old decoder: splice a hypothetical v3 field (a
    // LEN at an unreleased number and a VARINT at another) into a v2
    // message; today's decoder must skip both and decode the rest.
    Bytes bytes = sampleAttestRequest().encodeTagged(kV2);
    wire::WireWriter extra;
    extra.putString(1000, "from-the-future");
    extra.putVarint(999, 0xbeef);
    Bytes future = extra.take();
    bytes.insert(bytes.end(), future.begin(), future.end());

    auto d = AttestRequest::decodeTagged(bytes);
    ASSERT_TRUE(d.isOk()) << d.errorMessage();
    EXPECT_EQ(d.value().encode(), sampleAttestRequest().encode());
}

TEST(WireConformanceTest, WrongWireTypeOnKnownFieldIsSkipped)
{
    // A future schema may retype-by-renumber; a known number arriving
    // with an unexpected wire type is skipped, not an error.
    wire::WireWriter w;
    w.putString(1, "not-a-varint"); // field 1 is requestId: VARINT
    w.putString(2, "vm-ok");
    auto d = AttestRequest::decodeTagged(w.take());
    ASSERT_TRUE(d.isOk()) << d.errorMessage();
    EXPECT_EQ(d.value().requestId, 0u);
    EXPECT_EQ(d.value().vid, "vm-ok");
}

// --- v3: the TCB-version axis (field 9 on quote/report paths) --------

MeasureResponse
sampleMeasureResponseV3()
{
    MeasureResponse m = sampleMeasureResponse();
    m.tcbVersion = 7;
    return m;
}

ReportToController
sampleReportToControllerV3()
{
    ReportToController m = sampleReportToController();
    m.tcbVersion = 7;
    return m;
}

ReportToCustomer
sampleReportToCustomerV3()
{
    ReportToCustomer m = sampleReportToCustomer();
    m.tcbVersion = 7;
    return m;
}

TEST(WireConformanceTest, GoldenByteVectorsV3)
{
    // Frozen v3 encodings: tcbVersion rides field 9 (tag 0x48) on the
    // three quote/report messages. A mismatch means the released TCB
    // field moved — use a new number instead.
    const std::vector<GoldenCase> cases = {
        {"MeasureResponse", sampleMeasureResponseV3().encodeTagged(kV3),
         "080c1204766d2d6d1a010222080a0608022202dead2a010c32010d3a"
         "020e0f42011048077803"},
        {"ReportToController",
         sampleReportToControllerV3().encodeTagged(kV3),
         "080d1204766d2d721a087365727665722d312201022a150a04766d2d"
         "721208080210001a026f6b1880ade2043201113a011242021314480778"
         "03"},
        {"ReportToCustomer", sampleReportToCustomerV3().encodeTagged(kV3),
         "080e1204766d2d721a010222150a04766d2d721208080210001a026f"
         "6b1880ade2042a01153201163a0117400148077803"},
    };
    for (const GoldenCase &c : cases)
        EXPECT_EQ(toHex(c.actual), c.expected) << c.name;
}

TEST(WireConformanceTest, V2EncoderOmitsTcbVersion)
{
    // Old (v2) encoder → new decoder: the field is version-gated, so
    // a v2 peer never puts it on the wire even when the member is set;
    // the v3 decoder keeps the default 0 — which the AS minimum-TCB
    // floor deliberately treats as below-minimum (a host that strips
    // the measurement must not out-trust one reporting an old build).
    EXPECT_EQ(toHex(sampleMeasureResponseV3().encodeTagged(kV2)),
              toHex(sampleMeasureResponse().encodeTagged(kV2)));
    auto d = MeasureResponse::decodeTagged(
        sampleMeasureResponseV3().encodeTagged(kV2));
    ASSERT_TRUE(d.isOk());
    EXPECT_EQ(d.value().tcbVersion, 0u);
}

TEST(WireConformanceTest, TcbVersionDefaultIsOmittedAtV3)
{
    // Omit-default: a v3 encoder with the TCB axis disarmed (version
    // 0) emits bytes identical to v2 — upgrading the fleet without
    // arming the policy changes nothing on the wire.
    EXPECT_EQ(toHex(sampleMeasureResponse().encodeTagged(kV3)),
              toHex(sampleMeasureResponse().encodeTagged(kV2)));
    EXPECT_EQ(toHex(sampleReportToController().encodeTagged(kV3)),
              toHex(sampleReportToController().encodeTagged(kV2)));
    EXPECT_EQ(toHex(sampleReportToCustomer().encodeTagged(kV3)),
              toHex(sampleReportToCustomer().encodeTagged(kV2)));
}

TEST(WireConformanceTest, TcbVersionSurvivesV3RoundTrip)
{
    auto mr = MeasureResponse::decodeTagged(
        sampleMeasureResponseV3().encodeTagged(kV3));
    ASSERT_TRUE(mr.isOk());
    EXPECT_EQ(mr.value().tcbVersion, 7u);
    auto rc = ReportToController::decodeTagged(
        sampleReportToControllerV3().encodeTagged(kV3));
    ASSERT_TRUE(rc.isOk());
    EXPECT_EQ(rc.value().tcbVersion, 7u);
    auto ru = ReportToCustomer::decodeTagged(
        sampleReportToCustomerV3().encodeTagged(kV3));
    ASSERT_TRUE(ru.isOk());
    EXPECT_EQ(ru.value().tcbVersion, 7u);
}

TEST(WireConformanceTest, TcbSchemaRowsAreV3)
{
    EXPECT_EQ(kWireVersionLatest, kWireV3);
    std::size_t rows = 0;
    for (const MessageSchema &s : wireSchemas()) {
        const std::string name = s.name;
        const bool carrier = name == "MeasureResponse" ||
                             name == "ReportToController" ||
                             name == "ReportToCustomer";
        for (const FieldSpec &f : s.fields) {
            if (std::string(f.name) != "tcbVersion")
                continue;
            ++rows;
            EXPECT_TRUE(carrier) << name << " must not carry tcbVersion";
            EXPECT_EQ(f.number, 9u) << name;
            EXPECT_EQ(f.since, kWireV3) << name;
        }
    }
    EXPECT_EQ(rows, 3u) << "tcbVersion rides exactly the quote/report "
                           "messages";
}

TEST(WireConformanceTest, TaggedJournalBitClearsToLegacyTypeRange)
{
    // The journal-type bit must sit above every released record type
    // byte so masking it recovers the original enum value.
    EXPECT_EQ(kTaggedJournalBit, 0x100);
    for (std::uint16_t t = 1; t <= 0xff; ++t) {
        EXPECT_EQ((t | kTaggedJournalBit) & ~kTaggedJournalBit, t);
        EXPECT_NE(t | kTaggedJournalBit, t);
    }
}

} // namespace
} // namespace monatt::proto
