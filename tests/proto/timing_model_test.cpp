/**
 * @file
 * Timing model: monotonicity and calibration sanity for the cost
 * functions behind Figures 9 and 11.
 */

#include <gtest/gtest.h>

#include "proto/timing_model.h"
#include "server/catalog.h"

namespace monatt::proto
{
namespace
{

TEST(TimingModelTest, SpawnGrowsWithImageAndRam)
{
    const TimingModel t;
    EXPECT_LT(t.spawnTime(25, 512), t.spawnTime(700, 512));
    EXPECT_LT(t.spawnTime(25, 512), t.spawnTime(25, 2048));
    EXPECT_GT(t.spawnTime(0, 0), 0);
}

TEST(TimingModelTest, MappingGrowsWithDisk)
{
    const TimingModel t;
    EXPECT_LT(t.mappingTime(10), t.mappingTime(40));
}

TEST(TimingModelTest, ResponseCostsOrdered)
{
    // For every flavor, termination < suspension; suspension grows
    // with RAM (state save), resume is cheaper than suspend (higher
    // load rate).
    const TimingModel t;
    for (const server::VmFlavor &f : server::flavorCatalog()) {
        EXPECT_LT(t.terminateTime(f.ramMb), t.suspendTime(f.ramMb))
            << f.name;
        EXPECT_LT(t.resumeTime(f.ramMb), t.suspendTime(f.ramMb))
            << f.name;
    }
    EXPECT_LT(t.suspendTime(512), t.suspendTime(2048));
}

TEST(TimingModelTest, CalibrationLandsInPaperRanges)
{
    // Figure 9: totals 2-6 s. Stage sums (excluding protocol time,
    // which adds ~0.5 s) must leave room for that.
    const TimingModel t;
    for (const server::VmImage &img : server::imageCatalog()) {
        for (const server::VmFlavor &f : server::flavorCatalog()) {
            const SimTime stages = t.schedulingBase + t.networking +
                                   t.mappingTime(f.diskGb) +
                                   t.spawnTime(img.sizeMb, f.ramMb);
            EXPECT_GT(toSeconds(stages), 1.5)
                << img.name << "-" << f.name;
            EXPECT_LT(toSeconds(stages), 6.0)
                << img.name << "-" << f.name;
        }
    }
    // Figure 11: suspension seconds-scale.
    EXPECT_GT(toSeconds(t.suspendTime(2048)), 3.0);
    EXPECT_LT(toSeconds(t.suspendTime(2048)), 8.0);
}

// --- Adaptive retry budgets (RFC 6298-shaped estimator) ----------------

TEST(RttEstimatorTest, FirstSampleSeedsSrttAndVariance)
{
    RttEstimator est;
    EXPECT_EQ(est.samples, 0u);
    est.addSample(msec(100));
    EXPECT_EQ(est.samples, 1u);
    EXPECT_EQ(est.srtt, msec(100));
    EXPECT_EQ(est.rttvar, msec(50));
}

TEST(RttEstimatorTest, EwmaConvergesOnSteadyRtt)
{
    RttEstimator est;
    for (int i = 0; i < 64; ++i)
        est.addSample(msec(80));
    EXPECT_EQ(est.srtt, msec(80));
    // Constant RTT: the variance EWMA decays toward zero.
    EXPECT_LT(est.rttvar, msec(1));
}

TEST(RttEstimatorTest, TracksRttShifts)
{
    RttEstimator est;
    for (int i = 0; i < 32; ++i)
        est.addSample(msec(10));
    const SimTime fastSrtt = est.srtt;
    for (int i = 0; i < 64; ++i)
        est.addSample(msec(200));
    EXPECT_GT(est.srtt, fastSrtt);
    EXPECT_GT(est.srtt, msec(150));
}

TEST(RttEstimatorTest, NegativeSamplesIgnored)
{
    RttEstimator est;
    est.addSample(-msec(5));
    EXPECT_EQ(est.samples, 0u);
}

TEST(ReliabilityModelTest, RtoFallsBackToFixedKnob)
{
    ReliabilityModel model;
    const RttEstimator cold; // No samples yet.
    EXPECT_EQ(model.rto(seconds(6), cold), seconds(6));

    RttEstimator warm;
    warm.addSample(msec(100));
    model.adaptiveRto = false;
    EXPECT_EQ(model.rto(seconds(6), warm), seconds(6));
}

TEST(ReliabilityModelTest, AdaptiveRtoTracksObservedRtt)
{
    ReliabilityModel model;
    RttEstimator est;
    for (int i = 0; i < 64; ++i)
        est.addSample(msec(500));
    // 2·SRTT + 4·RTTVAR with rttvar ~0: about one second, far below
    // the 6 s fixed forward RTO — a fast deployment detects loss
    // sooner.
    const SimTime adaptive = model.rto(seconds(6), est);
    EXPECT_LT(adaptive, seconds(2));
    EXPECT_GE(adaptive, 2 * est.srtt);
}

TEST(ReliabilityModelTest, AdaptiveRtoIsClamped)
{
    ReliabilityModel model;
    RttEstimator tiny;
    tiny.addSample(usec(10));
    EXPECT_EQ(model.rto(seconds(6), tiny), model.minRto);

    RttEstimator huge;
    huge.addSample(seconds(100));
    EXPECT_EQ(model.rto(seconds(6), huge), model.maxRto);
}

TEST(CatalogTest, FlavorsAndImages)
{
    ASSERT_EQ(server::flavorCatalog().size(), 3u);
    ASSERT_EQ(server::imageCatalog().size(), 3u);
    EXPECT_LT(server::flavor("small").ramMb,
              server::flavor("large").ramMb);
    EXPECT_LT(server::image("cirros").sizeMb,
              server::image("ubuntu").sizeMb);
    EXPECT_THROW(server::flavor("xl"), std::out_of_range);
    EXPECT_THROW(server::image("arch"), std::out_of_range);
    // Image contents are distinct (distinct digests matter for the
    // appraiser database).
    EXPECT_NE(server::image("cirros").content,
              server::image("fedora").content);
}

} // namespace
} // namespace monatt::proto
