/**
 * @file
 * Protocol message encodings: round trips for every message type,
 * strict rejection of malformed frames, and the binding property of
 * the quotes (any field change changes the quote).
 */

#include <gtest/gtest.h>

#include "proto/messages.h"

namespace monatt::proto
{
namespace
{

TEST(ProtoTest, PackUnpackRoundTrip)
{
    const Bytes framed = packMessage(MessageKind::AttestRequest,
                                     toBytes("body"));
    auto unpacked = unpackMessage(framed);
    ASSERT_TRUE(unpacked.isOk());
    EXPECT_EQ(unpacked.value().kind, MessageKind::AttestRequest);
    EXPECT_EQ(unpacked.value().body, toBytes("body"));
    EXPECT_FALSE(unpackMessage(Bytes{0x01}).isOk());
}

TEST(ProtoTest, AttestRequestRoundTrip)
{
    AttestRequest m;
    m.requestId = 7;
    m.vid = "vm-42";
    m.properties = {SecurityProperty::RuntimeIntegrity,
                    SecurityProperty::CpuAvailability};
    m.nonce1 = {1, 2, 3, 4};
    m.mode = AttestMode::RuntimePeriodic;
    m.period = seconds(10);

    auto d = AttestRequest::decode(m.encode());
    ASSERT_TRUE(d.isOk());
    EXPECT_EQ(d.value().requestId, 7u);
    EXPECT_EQ(d.value().vid, "vm-42");
    EXPECT_EQ(d.value().properties, m.properties);
    EXPECT_EQ(d.value().nonce1, m.nonce1);
    EXPECT_EQ(d.value().mode, AttestMode::RuntimePeriodic);
    EXPECT_EQ(d.value().period, seconds(10));
}

TEST(ProtoTest, AttestForwardRoundTrip)
{
    AttestForward m;
    m.requestId = 9;
    m.vid = "vm-1";
    m.serverId = "server-2";
    m.properties = {SecurityProperty::StartupIntegrity};
    m.nonce2 = {9, 9};
    auto d = AttestForward::decode(m.encode());
    ASSERT_TRUE(d.isOk());
    EXPECT_EQ(d.value().serverId, "server-2");
}

TEST(ProtoTest, MeasureRequestRoundTrip)
{
    MeasureRequest m;
    m.requestId = 3;
    m.vid = "vm-1";
    m.rm = {MeasurementType::PlatformPcrs,
            MeasurementType::UsageIntervalHistogram};
    m.nonce3 = {5, 5, 5};
    m.window = seconds(2);
    auto d = MeasureRequest::decode(m.encode());
    ASSERT_TRUE(d.isOk());
    EXPECT_EQ(d.value().rm, m.rm);
    EXPECT_EQ(d.value().window, seconds(2));
}

MeasurementSet
sampleMeasurements()
{
    MeasurementSet set;
    Measurement tasks;
    tasks.type = MeasurementType::TaskListVmi;
    tasks.strings = {"init", "sshd", "rootkit"};
    set.items.push_back(tasks);
    Measurement hist;
    hist.type = MeasurementType::UsageIntervalHistogram;
    hist.values.assign(30, 7);
    hist.windowLength = seconds(2);
    set.items.push_back(hist);
    return set;
}

TEST(ProtoTest, MeasurementSetRoundTripAndFind)
{
    const MeasurementSet set = sampleMeasurements();
    auto d = MeasurementSet::decode(set.encode());
    ASSERT_TRUE(d.isOk());
    EXPECT_EQ(d.value(), set);
    EXPECT_NE(d.value().find(MeasurementType::TaskListVmi), nullptr);
    EXPECT_EQ(d.value().find(MeasurementType::CpuMeasure), nullptr);
}

TEST(ProtoTest, MeasureResponseRoundTrip)
{
    MeasureResponse m;
    m.requestId = 11;
    m.vid = "vm-1";
    m.rm = {MeasurementType::TaskListVmi};
    m.m = sampleMeasurements();
    m.nonce3 = {1};
    m.quote3 = MeasureResponse::quoteInput(m.vid, m.rm, m.m, m.nonce3);
    m.signature = {2, 2};
    m.certificate = {3, 3, 3};
    auto d = MeasureResponse::decode(m.encode());
    ASSERT_TRUE(d.isOk());
    EXPECT_EQ(d.value().m, m.m);
    EXPECT_EQ(d.value().quote3, m.quote3);
    EXPECT_EQ(d.value().signedPortion(), m.signedPortion());
}

TEST(ProtoTest, QuoteQ3BindsEveryField)
{
    const MeasurementSet m = sampleMeasurements();
    const MeasurementRequestList rm = {MeasurementType::TaskListVmi};
    const Bytes n3 = {7, 7};
    const Bytes base = MeasureResponse::quoteInput("vm-1", rm, m, n3);

    EXPECT_NE(base, MeasureResponse::quoteInput("vm-2", rm, m, n3));
    EXPECT_NE(base,
              MeasureResponse::quoteInput(
                  "vm-1", {MeasurementType::TaskListGuest}, m, n3));
    MeasurementSet m2 = m;
    m2.items[0].strings.push_back("extra");
    EXPECT_NE(base, MeasureResponse::quoteInput("vm-1", rm, m2, n3));
    EXPECT_NE(base, MeasureResponse::quoteInput("vm-1", rm, m,
                                                Bytes{8, 8}));
}

AttestationReport
sampleReport()
{
    AttestationReport r;
    r.vid = "vm-1";
    PropertyResult pr;
    pr.property = SecurityProperty::RuntimeIntegrity;
    pr.status = HealthStatus::Compromised;
    pr.detail = "hidden process";
    r.results.push_back(pr);
    r.issuedAt = seconds(12);
    return r;
}

TEST(ProtoTest, AttestationReportRoundTripAndQueries)
{
    const AttestationReport r = sampleReport();
    auto d = AttestationReport::decode(r.encode());
    ASSERT_TRUE(d.isOk());
    EXPECT_EQ(d.value(), r);
    EXPECT_FALSE(d.value().allHealthy());
    EXPECT_NE(d.value().find(SecurityProperty::RuntimeIntegrity),
              nullptr);
    EXPECT_EQ(d.value().find(SecurityProperty::CpuAvailability),
              nullptr);

    AttestationReport healthy = r;
    healthy.results[0].status = HealthStatus::Healthy;
    EXPECT_TRUE(healthy.allHealthy());
    AttestationReport empty;
    EXPECT_FALSE(empty.allHealthy()) << "no results is not healthy";
}

TEST(ProtoTest, ReportToControllerRoundTripAndQuoteBinding)
{
    ReportToController m;
    m.requestId = 4;
    m.vid = "vm-1";
    m.serverId = "server-1";
    m.properties = {SecurityProperty::RuntimeIntegrity};
    m.report = sampleReport();
    m.nonce2 = {4, 4};
    m.quote2 = ReportToController::quoteInput(
        m.vid, m.serverId, m.properties, m.report, m.nonce2);
    m.signature = {1};
    auto d = ReportToController::decode(m.encode());
    ASSERT_TRUE(d.isOk());
    EXPECT_EQ(d.value().report, m.report);

    // Q2 binds the server identity I.
    EXPECT_NE(m.quote2,
              ReportToController::quoteInput("vm-1", "server-2",
                                             m.properties, m.report,
                                             m.nonce2));
}

TEST(ProtoTest, ReportToCustomerRoundTripAndQuoteBinding)
{
    ReportToCustomer m;
    m.requestId = 5;
    m.vid = "vm-1";
    m.properties = {SecurityProperty::RuntimeIntegrity};
    m.report = sampleReport();
    m.nonce1 = {6};
    m.quote1 = ReportToCustomer::quoteInput(m.vid, m.properties,
                                            m.report, m.nonce1);
    m.signature = {9};
    m.finalPeriodic = true;
    auto d = ReportToCustomer::decode(m.encode());
    ASSERT_TRUE(d.isOk());
    EXPECT_TRUE(d.value().finalPeriodic);

    AttestationReport other = m.report;
    other.results[0].status = HealthStatus::Healthy;
    EXPECT_NE(m.quote1,
              ReportToCustomer::quoteInput(m.vid, m.properties, other,
                                           m.nonce1))
        << "Q1 must bind the report contents";
}

TEST(ProtoTest, CertMessagesRoundTrip)
{
    CertRequest req;
    req.serverId = "server-1";
    req.sessionLabel = "aik-1";
    req.avk = {1, 2};
    req.avkSignature = {3};
    auto dr = CertRequest::decode(req.encode());
    ASSERT_TRUE(dr.isOk());
    EXPECT_EQ(dr.value().sessionLabel, "aik-1");

    CertResponse resp;
    resp.sessionLabel = "aik-1";
    resp.ok = true;
    resp.certificate = {8, 8};
    auto dresp = CertResponse::decode(resp.encode());
    ASSERT_TRUE(dresp.isOk());
    EXPECT_TRUE(dresp.value().ok);
}

TEST(ProtoTest, ManagementMessagesRoundTrip)
{
    LaunchVm launch;
    launch.vid = "vm-1";
    launch.name = "web";
    launch.numVcpus = 2;
    launch.ramMb = 1024;
    launch.diskGb = 20;
    launch.imageSizeMb = 230;
    launch.image = toBytes("fedora-image");
    launch.weight = 512;
    auto dl = LaunchVm::decode(launch.encode());
    ASSERT_TRUE(dl.isOk());
    EXPECT_EQ(dl.value().ramMb, 1024u);
    EXPECT_EQ(dl.value().weight, 512);

    VmCommand cmd;
    cmd.vid = "vm-1";
    EXPECT_EQ(VmCommand::decode(cmd.encode()).value().vid, "vm-1");

    VmCommandAck ack;
    ack.vid = "vm-1";
    ack.ok = false;
    ack.error = "nope";
    auto da = VmCommandAck::decode(ack.encode());
    ASSERT_TRUE(da.isOk());
    EXPECT_EQ(da.value().error, "nope");

    MigrateOut mo;
    mo.vid = "vm-1";
    mo.targetServer = "server-2";
    EXPECT_EQ(MigrateOut::decode(mo.encode()).value().targetServer,
              "server-2");

    MigrateIn mi;
    mi.vid = "vm-1";
    mi.name = "web";
    mi.guestTasks = {"init", "sshd"};
    auto dmi = MigrateIn::decode(mi.encode());
    ASSERT_TRUE(dmi.isOk());
    EXPECT_EQ(dmi.value().guestTasks, mi.guestTasks);

    LaunchRequest lr;
    lr.requestId = 1;
    lr.name = "web";
    lr.imageName = "fedora";
    lr.flavorName = "small";
    lr.properties = {SecurityProperty::StartupIntegrity};
    lr.image = toBytes("img");
    lr.imageSizeMb = 230;
    auto dlr = LaunchRequest::decode(lr.encode());
    ASSERT_TRUE(dlr.isOk());
    EXPECT_EQ(dlr.value().flavorName, "small");

    LaunchResponse resp;
    resp.requestId = 1;
    resp.vid = "vm-9";
    resp.ok = true;
    EXPECT_EQ(LaunchResponse::decode(resp.encode()).value().vid, "vm-9");
}

TEST(ProtoTest, DecodersRejectTruncation)
{
    AttestRequest m;
    m.vid = "vm-1";
    m.nonce1 = {1, 2, 3};
    Bytes enc = m.encode();
    for (std::size_t cut : {1u, 5u, 10u}) {
        if (cut < enc.size()) {
            const Bytes truncated(enc.begin(), enc.end() - cut);
            EXPECT_FALSE(AttestRequest::decode(truncated).isOk());
        }
    }
    enc.push_back(0x00);
    EXPECT_FALSE(AttestRequest::decode(enc).isOk());
}

TEST(ProtoTest, PropertyNamesRoundTrip)
{
    for (SecurityProperty p : allProperties())
        EXPECT_EQ(propertyFromName(propertyName(p)), p);
    EXPECT_THROW(propertyFromName("no-such-property"),
                 std::invalid_argument);
}

TEST(ProtoTest, MeasurementsForPropertyCoverAllProperties)
{
    for (SecurityProperty p : allProperties())
        EXPECT_FALSE(measurementsForProperty(p).empty())
            << propertyName(p);
}

} // namespace
} // namespace monatt::proto
