/**
 * @file
 * Controller internals: the cloud database and the Policy Validation
 * Module (resource + property_filter placement of §3.2.2/§6.1).
 */

#include <gtest/gtest.h>

#include <set>

#include "controller/cloud_controller.h"
#include "controller/database.h"
#include "controller/policy.h"

namespace monatt::controller
{
namespace
{

using proto::SecurityProperty;

ServerRecord
makeServer(const std::string &id, std::uint64_t ramMb,
           std::set<SecurityProperty> caps)
{
    ServerRecord rec;
    rec.id = id;
    rec.capabilities = std::move(caps);
    rec.totalRamMb = ramMb;
    rec.totalDiskGb = 100;
    return rec;
}

std::set<SecurityProperty>
allCaps()
{
    std::set<SecurityProperty> caps;
    for (SecurityProperty p : proto::allProperties())
        caps.insert(p);
    return caps;
}

TEST(DatabaseTest, ServerAndVmCrud)
{
    CloudDatabase db;
    db.addServer(makeServer("s1", 1024, allCaps()));
    ASSERT_NE(db.server("s1"), nullptr);
    EXPECT_EQ(db.server("nope"), nullptr);
    EXPECT_EQ(db.serverIds().size(), 1u);

    VmRecord vm;
    vm.vid = "vm-1";
    vm.serverId = "s1";
    db.addVm(vm);
    ASSERT_NE(db.vm("vm-1"), nullptr);
    EXPECT_EQ(db.vmIds().size(), 1u);
    db.removeVm("vm-1");
    EXPECT_EQ(db.vm("vm-1"), nullptr);
}

TEST(DatabaseTest, AllocationAccounting)
{
    CloudDatabase db;
    db.addServer(makeServer("s1", 1000, allCaps()));
    db.allocate("s1", 400, 10);
    EXPECT_EQ(db.server("s1")->freeRamMb(), 600u);
    EXPECT_EQ(db.server("s1")->freeDiskGb(), 90u);
    db.release("s1", 400, 10);
    EXPECT_EQ(db.server("s1")->freeRamMb(), 1000u);
    // Over-release clamps instead of underflowing.
    db.release("s1", 5000, 5000);
    EXPECT_EQ(db.server("s1")->freeRamMb(), 1000u);
    EXPECT_THROW(db.allocate("nope", 1, 1), std::out_of_range);
}

TEST(DatabaseTest, VmRecordJournalRoundTrip)
{
    VmRecord rec;
    rec.vid = "vm-42";
    rec.name = "web";
    rec.customer = "alice";
    rec.imageName = "cirros";
    rec.flavorName = "small";
    rec.imageSizeMb = 25;
    rec.image = toBytes("image-bytes");
    rec.vcpus = 2;
    rec.ramMb = 512;
    rec.diskGb = 10;
    rec.properties = proto::allProperties();
    rec.serverId = "server-1";
    rec.status = VmStatus::Attesting;
    rec.launchTimer.record("scheduling", 100, 250);
    rec.launchTimer.beginStage("attestation", 400);
    rec.launchAttempts = 2;
    rec.launchedAt = 99;

    auto decoded = decodeVmRecord(encodeVmRecord(rec));
    ASSERT_TRUE(decoded.isOk()) << decoded.errorMessage();
    const VmRecord out = decoded.take();
    EXPECT_EQ(out.vid, rec.vid);
    EXPECT_EQ(out.customer, rec.customer);
    EXPECT_EQ(out.image, rec.image);
    EXPECT_EQ(out.properties, rec.properties);
    EXPECT_EQ(out.serverId, rec.serverId);
    EXPECT_EQ(out.status, rec.status);
    EXPECT_EQ(out.launchAttempts, rec.launchAttempts);
    EXPECT_EQ(out.launchedAt, rec.launchedAt);
    ASSERT_EQ(out.launchTimer.stages().size(), 1u);
    EXPECT_EQ(out.launchTimer.stages()[0].name, "scheduling");
    ASSERT_TRUE(out.launchTimer.hasOpenStage());
    EXPECT_EQ(out.launchTimer.openStageName(), "attestation");
    EXPECT_EQ(out.launchTimer.openStageStart(), 400);

    // Strict decode: any trailing garbage is an error.
    Bytes tampered = encodeVmRecord(rec);
    tampered.push_back(0xff);
    EXPECT_FALSE(decodeVmRecord(tampered).isOk());
    EXPECT_FALSE(decodeVmRecord(toBytes("short")).isOk());
}

TEST(DatabaseTest, ServerRecordJournalRoundTrip)
{
    ServerRecord rec = makeServer("s9", 4096, allCaps());
    rec.totalDiskGb = 250;
    rec.allocatedRamMb = 1024;
    rec.allocatedDiskGb = 30;

    auto decoded = decodeServerRecord(encodeServerRecord(rec));
    ASSERT_TRUE(decoded.isOk()) << decoded.errorMessage();
    const ServerRecord out = decoded.take();
    EXPECT_EQ(out.id, rec.id);
    EXPECT_EQ(out.capabilities, rec.capabilities);
    EXPECT_EQ(out.totalRamMb, rec.totalRamMb);
    EXPECT_EQ(out.allocatedRamMb, rec.allocatedRamMb);
    EXPECT_EQ(out.freeDiskGb(), rec.freeDiskGb());

    Bytes truncated = encodeServerRecord(rec);
    truncated.pop_back();
    EXPECT_FALSE(decodeServerRecord(truncated).isOk());
}

TEST(PolicyTest, ResourceFilter)
{
    CloudDatabase db;
    db.addServer(makeServer("small", 512, allCaps()));
    db.addServer(makeServer("big", 4096, allCaps()));

    PlacementRequirements req;
    req.ramMb = 1024;
    req.diskGb = 10;
    const auto out = PolicyValidationModule::qualifiedServers(db, req);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], "big");
}

TEST(PolicyTest, PropertyFilter)
{
    // §6.1: "we add a new filter: property_filter, to select qualified
    // cloud servers to host VMs based on their customers' security
    // properties".
    CloudDatabase db;
    db.addServer(makeServer("plain", 4096, {}));
    db.addServer(makeServer(
        "integrity-only", 4096,
        {SecurityProperty::StartupIntegrity}));
    db.addServer(makeServer("secure", 4096, allCaps()));

    PlacementRequirements req;
    req.ramMb = 512;
    req.properties = {SecurityProperty::StartupIntegrity,
                      SecurityProperty::CovertChannelFreedom};
    const auto out = PolicyValidationModule::qualifiedServers(db, req);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], "secure");
}

TEST(PolicyTest, NoPropertiesMeansAnyServer)
{
    CloudDatabase db;
    db.addServer(makeServer("plain", 4096, {}));
    PlacementRequirements req;
    req.ramMb = 512;
    EXPECT_EQ(PolicyValidationModule::qualifiedServers(db, req).size(),
              1u);
}

TEST(PolicyTest, RanksByFreeRamThenId)
{
    CloudDatabase db;
    db.addServer(makeServer("a", 2048, allCaps()));
    db.addServer(makeServer("b", 4096, allCaps()));
    db.addServer(makeServer("c", 4096, allCaps()));
    db.allocate("b", 1024, 0); // b now has less free than c.

    PlacementRequirements req;
    req.ramMb = 512;
    const auto out = PolicyValidationModule::qualifiedServers(db, req);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0], "c"); // Most free RAM.
    EXPECT_EQ(out[1], "b");
    EXPECT_EQ(out[2], "a");
}

TEST(PolicyTest, ExclusionRespected)
{
    CloudDatabase db;
    db.addServer(makeServer("a", 4096, allCaps()));
    db.addServer(makeServer("b", 4096, allCaps()));
    PlacementRequirements req;
    req.ramMb = 512;
    const auto out =
        PolicyValidationModule::qualifiedServers(db, req, {"a"});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], "b");
}

TEST(PolicyTest, QualifiesChecksEverything)
{
    const ServerRecord rec = makeServer(
        "s", 1024, {SecurityProperty::StartupIntegrity});
    PlacementRequirements ok;
    ok.ramMb = 512;
    ok.diskGb = 50;
    ok.properties = {SecurityProperty::StartupIntegrity};
    EXPECT_TRUE(PolicyValidationModule::qualifies(rec, ok));

    PlacementRequirements tooBig = ok;
    tooBig.ramMb = 2048;
    EXPECT_FALSE(PolicyValidationModule::qualifies(rec, tooBig));

    PlacementRequirements tooSecure = ok;
    tooSecure.properties.push_back(
        SecurityProperty::CovertChannelFreedom);
    EXPECT_FALSE(PolicyValidationModule::qualifies(rec, tooSecure));
}

TEST(StatusNamesTest, AllDistinct)
{
    std::set<std::string> names;
    for (VmStatus s :
         {VmStatus::Scheduling, VmStatus::Networking, VmStatus::Mapping,
          VmStatus::Spawning, VmStatus::Attesting, VmStatus::Running,
          VmStatus::Suspended, VmStatus::Migrating, VmStatus::Terminated,
          VmStatus::Failed}) {
        names.insert(vmStatusName(s));
    }
    EXPECT_EQ(names.size(), 10u);

    std::set<std::string> policies;
    for (ResponsePolicy p :
         {ResponsePolicy::None, ResponsePolicy::Terminate,
          ResponsePolicy::Suspend, ResponsePolicy::Migrate}) {
        policies.insert(responsePolicyName(p));
    }
    EXPECT_EQ(policies.size(), 4u);
}

} // namespace
} // namespace monatt::controller
