/**
 * @file
 * Unit coverage for the controller replica-group machinery: the
 * majority commit rule (ReplicaLedger), the deterministic election
 * state machine (ElectionState), replica id formatting, and the
 * ring/replica separation — replicas never sit on the ownership ring,
 * so replica membership changes cause zero VM remapping.
 */

#include <gtest/gtest.h>

#include "controller/election.h"
#include "controller/hash_ring.h"
#include "controller/replica_group.h"
#include "core/cloud.h"

namespace monatt::controller
{
namespace
{

// --- ReplicaLedger: majority commit rule ------------------------------

TEST(ReplicaLedgerTest, CommitNeedsAMajorityOfDurableCopies)
{
    ReplicaLedger ledger({"f1", "f2"});

    // Leader alone holds LSN 10: 1 of 3 copies, no majority.
    EXPECT_EQ(ledger.commitLsn(10, 3), 0u);

    // One follower at 7: {10, 7, 0} — the 2nd largest is 7.
    ledger.recordAck("f1", 7);
    EXPECT_EQ(ledger.commitLsn(10, 3), 7u);

    // Both followers caught up: commit rides the leader's cursor.
    ledger.recordAck("f2", 10);
    EXPECT_EQ(ledger.commitLsn(10, 3), 10u);
}

TEST(ReplicaLedgerTest, TwoOfThreeReplicasDownStallsTheCursor)
{
    // The satellite property: with two of three replicas down the
    // durable set can never reach a majority, so the cursor refuses
    // to advance no matter how far the leader's own journal runs.
    ReplicaLedger ledger({"f1", "f2"});
    for (std::uint64_t lsn = 1; lsn <= 100; ++lsn)
        EXPECT_EQ(ledger.commitLsn(lsn, 3), 0u) << "lsn=" << lsn;

    // A single follower ack (the other stays dark) restores majority.
    ledger.recordAck("f1", 42);
    EXPECT_EQ(ledger.commitLsn(100, 3), 42u);
}

TEST(ReplicaLedgerTest, AcksAreCumulativeAndNeverMoveBackwards)
{
    ReplicaLedger ledger({"f1"});
    ledger.recordAck("f1", 9);
    ledger.recordAck("f1", 4); // stale duplicate from the network
    EXPECT_EQ(ledger.ackOf("f1"), 9u);
    EXPECT_EQ(ledger.commitLsn(12, 2), 9u);

    ledger.reset({"f1"});
    EXPECT_EQ(ledger.ackOf("f1"), 0u)
        << "leadership change must forget follower progress";
}

TEST(ReplicaLedgerTest, UnreplicatedGroupCommitsImmediately)
{
    ReplicaLedger ledger(std::vector<std::string>{});
    EXPECT_EQ(ledger.commitLsn(5, 1), 5u);
}

// --- ElectionState: deterministic rounds and votes --------------------

TEST(ElectionTest, TimeoutIsDeterministicAndBounded)
{
    const ElectionTuning tuning;
    const std::vector<std::string> group{"a", "b", "c"};
    ElectionState a("a", group, tuning);
    ElectionState a2("a", group, tuning);
    ElectionState b("b", group, tuning);

    // Pure function of (id, round): re-evaluation never drifts, so a
    // fixed seed elects the same leader on every run.
    EXPECT_EQ(a.electionTimeout(), a2.electionTimeout());
    EXPECT_GE(a.electionTimeout(), tuning.electionTimeoutMin);
    EXPECT_LT(a.electionTimeout(), tuning.electionTimeoutMax);

    // Distinct replicas draw distinct jitter (for these ids), which is
    // what breaks symmetry without any randomness.
    EXPECT_NE(a.electionTimeout(), b.electionTimeout());
}

TEST(ElectionTest, MajorityOfVotesPromotes)
{
    ElectionState cand("b", {"a", "b", "c"}, {});
    EXPECT_EQ(cand.role(), ReplicaRole::Follower);
    cand.startCandidacy();
    EXPECT_EQ(cand.role(), ReplicaRole::PotentialLeader);
    EXPECT_EQ(cand.round(), 1u);

    // Own vote + one grant = 2 of 3.
    EXPECT_TRUE(cand.recordVote("a", 1));
    EXPECT_EQ(cand.role(), ReplicaRole::Leader);
    // A late grant for the same round must not re-promote.
    EXPECT_FALSE(cand.recordVote("c", 1));
}

TEST(ElectionTest, VotesAreSingleUsePerRound)
{
    ElectionState voter("c", {"a", "b", "c"}, {});
    EXPECT_TRUE(voter.considerVote(1, 0, 0, 0, 0));
    // Second candidate in the same round: already spent.
    EXPECT_FALSE(voter.considerVote(1, 0, 0, 0, 0));
    // Higher round: fresh vote.
    EXPECT_TRUE(voter.considerVote(2, 0, 0, 0, 0));
}

TEST(ElectionTest, StaleLogsAreRefusedVotes)
{
    ElectionState voter("c", {"a", "b", "c"}, {});
    // Candidate's mirror is behind ours: refuse, but adopt the round
    // so our own next candidacy outbids it.
    EXPECT_FALSE(voter.considerVote(3, /*candLastLogRound=*/1,
                                    /*candLastLsn=*/5,
                                    /*ownLastLogRound=*/2,
                                    /*ownLastLsn=*/3));
    EXPECT_EQ(voter.round(), 3u);
    // Same log round, shorter log: refused too.
    EXPECT_FALSE(voter.considerVote(4, 2, 2, 2, 3));
    // Same log round, at least as long: granted.
    EXPECT_TRUE(voter.considerVote(5, 2, 3, 2, 3));
}

TEST(ElectionTest, ObservingAHigherRoundLeaderDemotes)
{
    ElectionState node("a", {"a", "b", "c"}, {});
    node.bootstrapLeader();
    ASSERT_EQ(node.role(), ReplicaRole::Leader);
    EXPECT_TRUE(node.observeLeader("b", 2));
    EXPECT_EQ(node.role(), ReplicaRole::Follower);
    EXPECT_EQ(node.round(), 2u);
    // A deposed-round leader cannot reclaim the group.
    EXPECT_FALSE(node.observeLeader("c", 1));
    EXPECT_EQ(node.round(), 2u);
}

TEST(ElectionTest, ReplicaIdFormatting)
{
    EXPECT_EQ(replicaId("cloud-controller", 0), "cloud-controller");
    EXPECT_EQ(replicaId("controller-shard-2", 1),
              "controller-shard-2-replica-1");
    EXPECT_EQ(replicaId("controller-shard-2", 2),
              "controller-shard-2-replica-2");
}

// --- Ring / replica separation ----------------------------------------

TEST(ReplicaRingTest, ReplicasNeverJoinTheOwnershipRing)
{
    core::CloudConfig cfg;
    cfg.numServers = 2;
    cfg.computeThreads = 1;
    cfg.controllerShards = 2;
    cfg.controllerReplicas = 3;
    core::Cloud cloud(cfg);

    const HashRing &ring = cloud.controllerFabric().ring();
    EXPECT_EQ(ring.nodes().size(), 2u)
        << "only base shard ids may sit on the ring";
    EXPECT_TRUE(ring.contains("cloud-controller"));
    EXPECT_TRUE(ring.contains("controller-shard-1"));
    EXPECT_FALSE(ring.contains("cloud-controller-replica-1"));
    EXPECT_FALSE(ring.contains("controller-shard-1-replica-2"));
}

TEST(ReplicaRingTest, ReplicaCrashCausesZeroVidRemap)
{
    core::CloudConfig cfg;
    cfg.numServers = 2;
    cfg.computeThreads = 1;
    cfg.controllerShards = 2;
    cfg.controllerReplicas = 3;
    core::Cloud cloud(cfg);

    const HashRing &ring = cloud.controllerFabric().ring();
    std::vector<std::string> owners;
    for (int i = 0; i < 200; ++i)
        owners.push_back(ring.owner("vm-" + std::to_string(i)));

    // A replica leaving (crash) is a membership change in its group,
    // not on the ring: every vid keeps its owner. Contrast with a
    // *shard* leaving, which legitimately remaps its arc.
    ASSERT_TRUE(cloud.crashNode("cloud-controller-replica-1").isOk());
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(ring.owner("vm-" + std::to_string(i)),
                  owners[static_cast<std::size_t>(i)]);
    ASSERT_TRUE(cloud.restartNode("cloud-controller-replica-1").isOk());
}

TEST(ReplicaRingTest, CrashNodeDiagnosesUnknownReplicaIds)
{
    core::CloudConfig cfg;
    cfg.numServers = 2;
    cfg.computeThreads = 1;
    cfg.controllerShards = 2;
    cfg.controllerReplicas = 2;
    core::Cloud cloud(cfg);

    // Real replica ids resolve...
    EXPECT_TRUE(cloud.crashNode("controller-shard-1-replica-1").isOk());
    EXPECT_TRUE(
        cloud.restartNode("controller-shard-1-replica-1").isOk());

    // ...and out-of-range ones are named in the diagnostic instead of
    // silently turning a chaos plan into a clean-wire run.
    const Status st = cloud.crashNode("controller-shard-2-replica-1");
    EXPECT_FALSE(st.isOk());
    EXPECT_NE(st.errorMessage().find("controller-shard-2-replica-1"),
              std::string::npos);
    EXPECT_NE(st.errorMessage().find("replica"), std::string::npos)
        << "diagnostic should mention replicas: "
        << st.errorMessage();

    const Status r = cloud.restartNode("cloud-controller-replica-9");
    EXPECT_FALSE(r.isOk());
    EXPECT_NE(r.errorMessage().find("cloud-controller-replica-9"),
              std::string::npos);
}

} // namespace
} // namespace monatt::controller
