/**
 * @file
 * Property tests for the consistent-hash ring behind the sharded
 * control plane: balance within ±20% of fair share across a large key
 * population, minimal remapping (~1/N of keys) when one shard joins or
 * leaves, and deterministic insertion-order independence.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "controller/hash_ring.h"

namespace monatt::controller
{
namespace
{

std::vector<std::string>
vidPopulation(std::size_t count)
{
    std::vector<std::string> vids;
    vids.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        vids.push_back("vm-" + std::to_string(i));
    return vids;
}

HashRing
ringOf(int shards)
{
    HashRing ring;
    for (int k = 0; k < shards; ++k)
        ring.addNode("shard-" + std::to_string(k));
    return ring;
}

TEST(HashRingTest, EmptyRingOwnsNothing)
{
    HashRing ring;
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.owner("vm-1"), "");
    EXPECT_FALSE(ring.contains("shard-0"));
}

TEST(HashRingTest, SingleNodeOwnsEverything)
{
    HashRing ring;
    ring.addNode("only");
    for (const std::string &vid : vidPopulation(500))
        EXPECT_EQ(ring.owner(vid), "only");
}

TEST(HashRingTest, OwnershipIsDeterministic)
{
    const HashRing a = ringOf(8);
    // Same nodes, reverse insertion order: placement depends only on
    // the node set, never on construction history.
    HashRing b;
    for (int k = 7; k >= 0; --k)
        b.addNode("shard-" + std::to_string(k));

    for (const std::string &vid : vidPopulation(2000))
        EXPECT_EQ(a.owner(vid), b.owner(vid)) << vid;
}

TEST(HashRingTest, BalanceWithinTwentyPercentAcrossTenThousandVids)
{
    const int kShards = 8;
    const std::size_t kVids = 10000;
    const HashRing ring = ringOf(kShards);

    std::map<std::string, std::size_t> load;
    for (const std::string &vid : vidPopulation(kVids))
        ++load[ring.owner(vid)];

    ASSERT_EQ(load.size(), static_cast<std::size_t>(kShards))
        << "some shard owns no keys at all";

    const double fair = static_cast<double>(kVids) / kShards;
    for (const auto &[shard, count] : load) {
        EXPECT_GE(count, fair * 0.8)
            << shard << " underloaded: " << count << " of fair " << fair;
        EXPECT_LE(count, fair * 1.2)
            << shard << " overloaded: " << count << " of fair " << fair;
    }
}

TEST(HashRingTest, AddingOneShardRemapsAboutOneOverN)
{
    const std::size_t kVids = 10000;
    const std::vector<std::string> vids = vidPopulation(kVids);

    for (int n : {2, 4, 8}) {
        const HashRing before = ringOf(n);
        HashRing after = ringOf(n);
        after.addNode("shard-" + std::to_string(n));

        std::size_t moved = 0;
        for (const std::string &vid : vids) {
            if (before.owner(vid) != after.owner(vid)) {
                ++moved;
                // Keys only ever move TO the new shard, never between
                // the old ones — the defining consistent-hash property.
                EXPECT_EQ(after.owner(vid),
                          "shard-" + std::to_string(n));
            }
        }

        // Expected fraction is 1/(n+1); allow a 2x band for hash noise.
        const double expected =
            static_cast<double>(kVids) / static_cast<double>(n + 1);
        EXPECT_GE(moved, static_cast<std::size_t>(expected * 0.5))
            << "n=" << n;
        EXPECT_LE(moved, static_cast<std::size_t>(expected * 2.0))
            << "n=" << n;
    }
}

TEST(HashRingTest, RemovingOneShardRemapsOnlyItsKeys)
{
    const std::size_t kVids = 10000;
    const std::vector<std::string> vids = vidPopulation(kVids);

    const int n = 8;
    const HashRing before = ringOf(n);
    HashRing after = ringOf(n);
    after.removeNode("shard-3");
    EXPECT_FALSE(after.contains("shard-3"));
    EXPECT_EQ(after.size(), static_cast<std::size_t>(n - 1));

    std::size_t moved = 0;
    for (const std::string &vid : vids) {
        const std::string &oldOwner = before.owner(vid);
        if (oldOwner == "shard-3") {
            ++moved;
            EXPECT_NE(after.owner(vid), "shard-3");
        } else {
            // Survivors keep every key they already owned.
            EXPECT_EQ(after.owner(vid), oldOwner) << vid;
        }
    }

    const double expected = static_cast<double>(kVids) / n;
    EXPECT_GE(moved, static_cast<std::size_t>(expected * 0.5));
    EXPECT_LE(moved, static_cast<std::size_t>(expected * 2.0));
}

TEST(HashRingTest, NodesAreSortedAndSized)
{
    const HashRing ring = ringOf(3);
    const std::vector<std::string> expect = {"shard-0", "shard-1",
                                             "shard-2"};
    EXPECT_EQ(ring.nodes(), expect);
    EXPECT_EQ(ring.size(), 3u);
}

} // namespace
} // namespace monatt::controller
