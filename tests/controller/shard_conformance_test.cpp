/**
 * @file
 * Cross-shard conformance suite for the sharded control plane.
 *
 * Two guarantees are pinned here:
 *
 *  1. Keystone equivalence — a 1-shard fabric is byte-identical to the
 *     pre-sharding single controller. The golden digest below was
 *     captured from the repo immediately before the fabric landed, on
 *     the exact scenario replayed by goldenScenarioDigest(); any drift
 *     in message bytes, timings or event counts changes it.
 *
 *  2. Shard-count transparency — replaying one end-to-end scenario at
 *     1, 2, 4 and 8 shards yields identical per-VM attestation
 *     verdicts and report content (properties, health statuses,
 *     verified/degraded outcome), keyed by VM *name*: vids and
 *     absolute timings legitimately differ across shard counts (vid
 *     spaces are partitioned by ring ownership and shards serve
 *     queues independently), the security semantics must not.
 *
 * Also covers the fault-plan diagnosability fix: Cloud::crashNode /
 * restartNode now return a Status naming unknown nodes instead of
 * silently ignoring them, and resolve controller shards by id.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/cloud.h"
#include "crypto/sha256.h"

namespace monatt::core
{
namespace
{

// Digest of the sequential clean-wire scenario captured from the
// single-controller tree (pre-fabric), computeThreads=1 and 8 agree.
constexpr const char *kGoldenSingleControllerDigest =
    "5b85c2d3f59abb589968e1623fb926df793850d7a9c5295ab5421c2792e3f7b6";

void
absorbU64(crypto::Sha256 &digest, std::uint64_t v)
{
    Bytes b;
    for (int i = 0; i < 8; ++i)
        b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    digest.update(b);
}

/**
 * The exact scenario the golden digest was captured on: 4 servers, 2
 * attestation clusters, 3 launches, then two strictly sequential
 * rounds of one-shot attestations (never more than one request in
 * flight, so the run exercises no controller queueing).
 */
std::string
goldenScenarioDigest(int shards, std::size_t computeThreads)
{
    CloudConfig cfg;
    cfg.numServers = 4;
    cfg.numAttestationServers = 2;
    cfg.seed = 777001;
    cfg.computeThreads = computeThreads;
    cfg.cryptoBatchWindow = usec(200);
    cfg.controllerShards = shards;
    Cloud cloud(cfg);
    Customer &customer = cloud.addCustomer("alice");

    std::vector<std::string> vids;
    for (int i = 0; i < 3; ++i) {
        auto vid = cloud.launchVm(customer, "web-" + std::to_string(i),
                                  "cirros", "small",
                                  proto::allProperties());
        if (!vid.isOk())
            ADD_FAILURE() << "launch failed: " << vid.errorMessage();
        vids.push_back(vid.take());
    }

    for (int round = 0; round < 2; ++round) {
        for (const std::string &vid : vids) {
            auto r =
                cloud.attestOnce(customer, vid, proto::allProperties());
            if (!r.isOk())
                ADD_FAILURE() << "attest failed: " << r.errorMessage();
        }
    }

    crypto::Sha256 digest;
    for (const std::string &vid : vids)
        digest.update(toBytes(vid));
    for (const VerifiedReport &r : customer.reports()) {
        digest.update(r.report.encode());
        absorbU64(digest, static_cast<std::uint64_t>(r.receivedAt));
    }
    absorbU64(digest, static_cast<std::uint64_t>(cloud.events().now()));
    absorbU64(digest, cloud.events().executed());
    return toHex(digest.digest());
}

TEST(ShardConformanceTest, OneShardMatchesGoldenSingleController)
{
    EXPECT_EQ(goldenScenarioDigest(1, 1), kGoldenSingleControllerDigest)
        << "a 1-shard fabric must be byte-identical to the pre-fabric "
           "single controller on a clean sequential run";
}

TEST(ShardConformanceTest, GoldenDigestIsThreadWidthIndependent)
{
    EXPECT_EQ(goldenScenarioDigest(1, 8), kGoldenSingleControllerDigest);
}

TEST(ShardConformanceTest, MultiShardDigestIsThreadWidthIndependent)
{
    // Fixed seed + shard count must be byte-identical at any compute
    // width; absolute bytes differ from the 1-shard golden (different
    // vid spaces, parallel service queues), so compare 1 vs 8 threads
    // at the same shard count instead of against the golden.
    EXPECT_EQ(goldenScenarioDigest(4, 1), goldenScenarioDigest(4, 8));
}

/** Semantic, name-keyed summary of one VM's end-to-end history. */
struct VmSummary
{
    bool launched = false;
    // One entry per attestation round: outcome state, then the
    // sorted (property, status) pairs of the verified report.
    std::vector<std::string> rounds;

    bool operator==(const VmSummary &o) const
    {
        return launched == o.launched && rounds == o.rounds;
    }
};

std::string
describeRound(const Result<VerifiedReport> &r)
{
    if (!r.isOk())
        return "error:" + r.errorMessage();
    std::string out = "verified";
    std::map<int, int> byProperty;
    for (const proto::PropertyResult &pr : r.value().report.results)
        byProperty[static_cast<int>(pr.property)] =
            static_cast<int>(pr.status);
    for (const auto &[prop, status] : byProperty) {
        out += ";" + std::to_string(prop) + "=" +
               std::to_string(status);
    }
    out += r.value().report.allHealthy() ? ";healthy" : ";unhealthy";
    return out;
}

/**
 * The conformance scenario: 8 VMs launched sequentially, then two
 * concurrent attestation fan-outs over all of them (the fan-outs do
 * exercise per-shard queueing). Returns the per-name summary.
 */
std::map<std::string, VmSummary>
conformanceScenario(int shards)
{
    CloudConfig cfg;
    cfg.numServers = 4;
    cfg.numAttestationServers = 2;
    cfg.seed = 424242;
    cfg.computeThreads = 1;
    cfg.cryptoBatchWindow = usec(200);
    cfg.controllerShards = shards;
    Cloud cloud(cfg);
    Customer &customer = cloud.addCustomer("carol");

    std::map<std::string, VmSummary> byName;
    std::vector<std::string> names;
    std::vector<std::string> vids;
    for (int i = 0; i < 8; ++i) {
        const std::string name = "app-" + std::to_string(i);
        names.push_back(name);
        auto vid = cloud.launchVm(customer, name, "cirros", "small",
                                  proto::allProperties());
        byName[name].launched = vid.isOk();
        vids.push_back(vid.isOk() ? vid.take() : "");
    }

    for (int round = 0; round < 2; ++round) {
        auto results =
            cloud.attestMany(customer, vids, proto::allProperties());
        for (std::size_t i = 0; i < names.size(); ++i)
            byName[names[i]].rounds.push_back(describeRound(results[i]));
    }
    return byName;
}

TEST(ShardConformanceTest, VerdictsIdenticalAcrossShardCounts)
{
    const std::map<std::string, VmSummary> base = conformanceScenario(1);
    ASSERT_EQ(base.size(), 8u);
    for (const auto &[name, summary] : base) {
        EXPECT_TRUE(summary.launched) << name;
        ASSERT_EQ(summary.rounds.size(), 2u) << name;
        for (const std::string &round : summary.rounds)
            EXPECT_EQ(round.substr(0, 8), "verified") << name;
    }

    for (int shards : {2, 4, 8}) {
        const std::map<std::string, VmSummary> got =
            conformanceScenario(shards);
        ASSERT_EQ(got.size(), base.size()) << "shards=" << shards;
        for (const auto &[name, summary] : base) {
            const auto it = got.find(name);
            ASSERT_NE(it, got.end())
                << "shards=" << shards << " lost " << name;
            EXPECT_EQ(it->second.rounds, summary.rounds)
                << "shards=" << shards << " vm=" << name;
            EXPECT_EQ(it->second.launched, summary.launched)
                << "shards=" << shards << " vm=" << name;
        }
    }
}

TEST(ShardConformanceTest, ShardsPartitionTheVidSpace)
{
    CloudConfig cfg;
    cfg.numServers = 4;
    cfg.seed = 99;
    cfg.computeThreads = 1;
    cfg.controllerShards = 4;
    Cloud cloud(cfg);
    Customer &customer = cloud.addCustomer("dave");

    const controller::HashRing &ring = cloud.controllerFabric().ring();
    for (int i = 0; i < 12; ++i) {
        auto vid = cloud.launchVm(customer, "p-" + std::to_string(i),
                                  "cirros", "small",
                                  proto::allProperties());
        ASSERT_TRUE(vid.isOk()) << vid.errorMessage();
        const std::string v = vid.take();
        // The shard that allocated the vid must be the ring owner —
        // the invariant the client-side router depends on.
        EXPECT_NE(
            cloud.controllerFabric().ownerOf(v).database().vm(v),
            nullptr)
            << v << " not on its owning shard " << ring.owner(v);
    }
}

TEST(ShardConformanceTest, CrashNodeDiagnosesUnknownNodes)
{
    CloudConfig cfg;
    cfg.numServers = 2;
    cfg.computeThreads = 1;
    cfg.controllerShards = 2;
    Cloud cloud(cfg);

    const Status crash = cloud.crashNode("no-such-node");
    EXPECT_FALSE(crash.isOk());
    EXPECT_NE(crash.errorMessage().find("no-such-node"),
              std::string::npos)
        << "diagnostic must name the offending node";

    const Status restart = cloud.restartNode("also-missing");
    EXPECT_FALSE(restart.isOk());
    EXPECT_NE(restart.errorMessage().find("also-missing"),
              std::string::npos);

    // Shards resolve by id, including the non-legacy ones.
    EXPECT_TRUE(cloud.crashNode("controller-shard-1").isOk());
    EXPECT_FALSE(cloud.controllerFabric().shard(1).isUp());
    EXPECT_TRUE(cloud.restartNode("controller-shard-1").isOk());
    EXPECT_TRUE(cloud.controllerFabric().shard(1).isUp());

    EXPECT_TRUE(cloud.crashNode("cloud-controller").isOk());
    EXPECT_TRUE(cloud.restartNode("cloud-controller").isOk());
    EXPECT_TRUE(cloud.crashNode("server-1").isOk());
    EXPECT_TRUE(cloud.restartNode("server-1").isOk());
}

} // namespace
} // namespace monatt::core
